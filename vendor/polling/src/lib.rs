//! Offline shim of the `polling` crate: a minimal, API-compatible subset
//! providing one-shot readiness notification over OS primitives, written
//! directly against the standard library plus a handful of `extern "C"`
//! declarations (the symbols come from the libc the Rust standard library
//! already links — no registry crate needed).
//!
//! Backends:
//! - **Linux**: `epoll` (`epoll_create1` / `epoll_ctl` / `epoll_wait`) with
//!   `EPOLLONESHOT`, the same one-shot contract as the real crate — after
//!   an event is delivered for a key, that source stays disarmed until
//!   [`Poller::modify`] re-arms it.
//! - **Other Unix**: `poll(2)` over a registration table, with one-shot
//!   semantics emulated by clearing interest on delivery.
//!
//! Cross-thread wakeups ([`Poller::notify`]) use a self-connected UDP
//! socket rather than an eventfd/pipe so the wake channel itself needs no
//! extra FFI. Subset only — `Poller::new/add/modify/delete/wait/notify` and
//! `Event` — which is all `snb-net`'s readiness loop uses.

#![cfg(unix)]

use std::io;
use std::net::UdpSocket;
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Interest in (or delivery of) readiness for one registered source.
/// `key` is caller-chosen and returned verbatim with each delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub key: usize,
    pub readable: bool,
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event { key, readable: false, writable: true }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event { key, readable: true, writable: true }
    }

    /// No interest: keeps the registration but delivers nothing until a
    /// `modify` re-arms it (the state every source enters after a one-shot
    /// delivery).
    pub fn none(key: usize) -> Event {
        Event { key, readable: false, writable: false }
    }
}

/// Key reserved for the internal notify channel; user keys must differ.
const NOTIFY_KEY: usize = usize::MAX;

/// Waits for readiness events on registered sources. All methods take
/// `&self` and the poller is `Sync`: one thread may `wait` while others
/// `add`/`modify`/`delete`/`notify`.
pub struct Poller {
    backend: backend::Backend,
    /// Self-connected UDP socket; a 1-byte send wakes `wait`.
    notify_rx: UdpSocket,
    notify_tx: UdpSocket,
}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let notify_rx = UdpSocket::bind("127.0.0.1:0")?;
        notify_rx.set_nonblocking(true)?;
        let notify_tx = UdpSocket::bind("127.0.0.1:0")?;
        notify_tx.set_nonblocking(true)?;
        notify_tx.connect(notify_rx.local_addr()?)?;
        let backend = backend::Backend::new()?;
        backend.add(notify_rx.as_raw_fd(), Event::readable(NOTIFY_KEY))?;
        Ok(Poller { backend, notify_rx, notify_tx })
    }

    /// Register a source with an initial one-shot interest.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "key reserved"));
        }
        self.backend.add(source.as_raw_fd(), interest)
    }

    /// Re-arm (or change) a registered source's one-shot interest.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "key reserved"));
        }
        self.backend.modify(source.as_raw_fd(), interest)
    }

    /// Remove a source. Always call before closing the fd.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.backend.delete(source.as_raw_fd())
    }

    /// Block until at least one source is ready, `notify` is called, or
    /// `timeout` elapses (`None` = wait forever). Delivered events are
    /// appended to `events`; each delivered source is disarmed until
    /// re-armed with [`Poller::modify`]. Returns the number appended.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let before = events.len();
        self.backend.wait(events, timeout)?;
        // Filter the notify channel out of the caller's view and drain +
        // re-arm it so the next notify still wakes us.
        let mut notified = false;
        events.retain(|e| {
            if e.key == NOTIFY_KEY {
                notified = true;
                false
            } else {
                true
            }
        });
        if notified {
            let mut sink = [0u8; 16];
            while self.notify_rx.recv(&mut sink).is_ok() {}
            self.backend.modify(self.notify_rx.as_raw_fd(), Event::readable(NOTIFY_KEY))?;
        }
        Ok(events.len() - before)
    }

    /// Wake a concurrent (or the next) `wait` call. Coalesces: many
    /// notifies before a wait produce one wakeup.
    pub fn notify(&self) -> io::Result<()> {
        match self.notify_tx.send(&[1u8]) {
            Ok(_) => Ok(()),
            // A full socket buffer means wakeups are already pending.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(target_os = "linux")]
mod backend {
    //! epoll, via `extern "C"` declarations resolved by the libc that the
    //! Rust standard library links on Linux.

    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;

    // The kernel ABI packs epoll_event on x86-64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Event) -> u32 {
        let mut m = EPOLLONESHOT | EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    pub(super) struct Backend {
        epfd: RawFd,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Backend { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
            let mut ev = interest
                .map(|i| EpollEvent { events: mask(i), data: i.key as u64 })
                .unwrap_or(EpollEvent { events: 0, data: 0 });
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some(interest))
        }

        pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some(interest))
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let timeout_ms: c_int = match timeout {
                None => -1,
                // Round up so a nonzero timeout never busy-spins as 0.
                Some(t) => {
                    t.as_millis().min(i32::MAX as u128).max(u128::from(!t.is_zero())) as c_int
                }
            };
            let n = loop {
                match cvt(unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                // Copy out of the (possibly packed) struct before use.
                let (events, data) = (ev.events, ev.data);
                // Error/hangup surface as readiness so the owner reads the
                // EOF/error off the socket and closes it.
                let gone = events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                out.push(Event {
                    key: data as usize,
                    readable: events & EPOLLIN != 0 || gone,
                    writable: events & EPOLLOUT != 0 || gone,
                });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod backend {
    //! Portable fallback: `poll(2)` over a registration table, one-shot
    //! semantics emulated by clearing interest after delivery.

    use super::Event;
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short, c_uint};
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    pub(super) struct Backend {
        registered: Mutex<HashMap<RawFd, Event>>,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            Ok(Backend { registered: Mutex::new(HashMap::new()) })
        }

        pub(super) fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.registered.lock().unwrap().insert(fd, interest);
            Ok(())
        }

        pub(super) fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            match self.registered.lock().unwrap().get_mut(&fd) {
                Some(slot) => {
                    *slot = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut fds: Vec<PollFd> = Vec::new();
            let mut keys: Vec<(RawFd, Event)> = Vec::new();
            for (&fd, &interest) in self.registered.lock().unwrap().iter() {
                let mut events = 0;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                fds.push(PollFd { fd, events, revents: 0 });
                keys.push((fd, interest));
            }
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(t) => {
                    t.as_millis().min(i32::MAX as u128).max(u128::from(!t.is_zero())) as c_int
                }
            };
            let n = loop {
                match unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms) } {
                    n if n >= 0 => break n,
                    _ => {
                        let e = io::Error::last_os_error();
                        if e.kind() != io::ErrorKind::Interrupted {
                            return Err(e);
                        }
                    }
                }
            };
            if n == 0 {
                return Ok(());
            }
            let mut registered = self.registered.lock().unwrap();
            for (slot, (fd, interest)) in fds.iter().zip(keys) {
                if slot.revents == 0 {
                    continue;
                }
                let gone = slot.revents & (POLLERR | POLLHUP) != 0;
                out.push(Event {
                    key: interest.key,
                    readable: slot.revents & POLLIN != 0 || gone,
                    writable: slot.revents & POLLOUT != 0 || gone,
                });
                // One-shot: disarm until the owner re-arms via modify.
                if let Some(reg) = registered.get_mut(&fd) {
                    *reg = Event::none(interest.key);
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn delivers_read_readiness_once_until_rearmed() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.add(&server, Event::readable(7)).unwrap();

        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 7 && e.readable), "{events:?}");

        // One-shot: without a re-arm, nothing further is delivered even
        // though the byte is still unread.
        events.clear();
        poller.wait(&mut events, Some(Duration::from_millis(50))).unwrap();
        assert!(events.is_empty(), "{events:?}");

        // Re-armed: the same readiness is delivered again.
        poller.modify(&server, Event::readable(7)).unwrap();
        events.clear();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 7 && e.readable), "{events:?}");

        let mut byte = [0u8; 1];
        let mut server = server;
        server.read_exact(&mut byte).unwrap();
        poller.delete(&server).unwrap();
    }

    #[test]
    fn notify_wakes_wait_from_another_thread() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.notify().unwrap();
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(start.elapsed() < Duration::from_secs(5), "notify did not wake wait");
        assert!(events.is_empty(), "notify must not surface as a user event: {events:?}");
        t.join().unwrap();

        // Coalesced notifies still wake exactly one wait, and the channel
        // re-arms: a second notify wakes a second wait.
        poller.notify().unwrap();
        poller.notify().unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        poller.notify().unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn write_readiness_for_connected_socket() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();
        poller.add(&client, Event::all(3)).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.key == 3 && e.writable), "{events:?}");
        poller.delete(&client).unwrap();
    }
}
