//! API-compatible subset of `parking_lot`, implemented over `std::sync`.
//!
//! This workspace builds in fully offline environments (no registry
//! access), so the external crates it uses are vendored as minimal shims
//! under `vendor/` (see `vendor/README.md`). Only the surface the
//! workspace actually uses is provided: non-poisoning `Mutex` and `RwLock`
//! with guard types named like parking_lot's.
//!
//! Poisoning is handled the way parking_lot does semantically: a panic
//! while holding a lock does not poison it for later users — we recover
//! the inner value from std's `PoisonError`.

use std::sync::{self, LockResult, PoisonError};

/// Unwrap a std lock result, ignoring poison (parking_lot semantics).
fn unpoison<T>(r: LockResult<T>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// A mutual-exclusion lock (non-poisoning facade over [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A reader-writer lock (non-poisoning facade over [`std::sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Mutex::new(0);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("boom");
        }));
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
