//! API-compatible subset of `criterion`, implemented for offline builds.
//!
//! This workspace builds in fully offline environments (no registry
//! access), so external crates are vendored as minimal shims under
//! `vendor/` (see `vendor/README.md`). The subset covers what the
//! workspace's benches use: [`Criterion::bench_function`], benchmark
//! groups with `sample_size` / `bench_with_input`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], plus the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of statistical sampling, each benchmark runs `sample_size`
//! iterations (default 10) and reports min / mean over them. Bench
//! binaries are `harness = false`, so `cargo test` also executes them;
//! when any test-harness-style flag is present in argv the run is
//! shortened to a single iteration per benchmark so the test suite stays
//! fast.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized in [`Bencher::iter_batched`]. The shim
/// runs one routine call per batch, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Measures and reports timings for one benchmark.
pub struct Bencher {
    iters: u64,
    /// Total measured time and iteration count, collected by `iter*`.
    elapsed: Duration,
    done: u64,
}

impl Bencher {
    /// Time `routine` for the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.done = self.iters;
    }

    /// Time `routine` over fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.done = self.iters;
    }

    /// Like [`Bencher::iter_batched`]; the shim does not reuse inputs by
    /// reference, so the routine gets a fresh input each iteration.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.done = self.iters;
    }
}

fn fmt_time(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// The benchmark manager handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: u64,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` (or any harness-style invocation) run each
        // benchmark once so test runs stay fast; plain `cargo bench`
        // argv carries `--bench`.
        let quick = std::env::args().any(|a| a == "--test" || a == "--list" || a == "--quick");
        Criterion { sample_size: 10, quick }
    }
}

impl Criterion {
    fn iters(&self) -> u64 {
        if self.quick {
            1
        } else {
            self.sample_size
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { iters: self.iters(), elapsed: Duration::ZERO, done: 0 };
        f(&mut b);
        if b.done == 0 {
            println!("bench {id:<48} (no measurement)");
        } else {
            let mean = b.elapsed / b.done as u32;
            println!("bench {id:<48} {:>12}/iter ({} iters)", fmt_time(mean), b.done);
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.parent.sample_size = n.max(1) as u64;
        self
    }

    /// Run a benchmark named `{group}/{id}`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.parent.run_one(&full, f);
        self
    }

    /// Run a parameterised benchmark; the input is passed to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.parent.run_one(&full, |b| f(b, input));
        self
    }

    /// Finish the group (reporting is already done incrementally).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running each group built by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { sample_size: 3, quick: false };
        let mut calls = 0u64;
        c.bench_function("unit/add", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 3);
    }

    #[test]
    fn groups_run_batched_and_with_input() {
        let mut c = Criterion { sample_size: 4, quick: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut setups = 0u64;
        let mut runs = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!((setups, runs), (2, 2));
        let mut seen = 0u64;
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &p| b.iter(|| seen = p));
        assert_eq!(seen, 7);
        group.finish();
    }

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion { sample_size: 50, quick: true };
        let mut calls = 0u64;
        c.bench_function("unit/quick", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }
}
