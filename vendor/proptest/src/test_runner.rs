//! Test-runner configuration and the `proptest!` / `prop_assert!` macros.

/// Runner configuration. Only the subset the workspace uses is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Declare property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn holds(x in 0u64..100, v in proptest::collection::vec(0i32..5, 0..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
///
/// Each property runs `cases` times over a fixed-seed deterministic RNG.
/// On failure the generated inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Stable per-test seed: derived from the test name so adding
                // tests does not perturb sibling tests' cases.
                let seed = {
                    let name = concat!(module_path!(), "::", stringify!($name));
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x0000_0100_0000_01b3);
                    }
                    h
                };
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                    let inputs = ( $( $crate::strategy::Strategy::sample(&($strat), &mut rng), )+ );
                    let desc = format!("{:?}", inputs);
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        let ( $($arg,)+ ) = inputs;
                        $body
                    }));
                    if let Err(cause) = outcome {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed; inputs: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            desc
                        );
                        ::std::panic::resume_unwind(cause);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property; prints the condition on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}
