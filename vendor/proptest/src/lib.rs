//! API-compatible subset of `proptest`, implemented for offline builds.
//!
//! This workspace builds in fully offline environments (no registry
//! access), so external crates are vendored as minimal shims under
//! `vendor/` (see `vendor/README.md`). The subset covers what the
//! workspace's property tests use:
//!
//! - [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `boxed`
//! - integer, float and boolean strategies: ranges, [`arbitrary::any`],
//!   [`strategy::Just`], tuples up to arity 6, [`collection::vec`]
//! - the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_oneof!`]
//!
//! Differences from real proptest: cases are drawn from a fixed-seed
//! deterministic RNG (reproducible across runs and platforms), there is no
//! shrinking (the failing inputs are printed verbatim instead), and
//! `.proptest-regressions` persistence files are ignored.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Deterministic SplitMix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10i64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (5u8..=9).sample(&mut rng);
            assert!((5..=9).contains(&w));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(2);
        let s = (0u64..10).prop_map(|x| x * 2).prop_flat_map(|x| x..x + 5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v < 25);
        }
        let v = collection::vec((0i32..3, any::<bool>()), 2..6).sample(&mut rng);
        assert!((2..6).contains(&v.len()));
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), 3u8..=3];
        let mut rng = TestRng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, config, and assertions.
        #[test]
        fn macro_binds_and_asserts(x in 0u64..100, ys in collection::vec(0i32..5, 0..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(ys.iter().filter(|&&y| y >= 5).count(), 0);
        }
    }
}
