//! The [`Strategy`] trait and combinators.

use crate::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn sample(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the given arms; at least one is required.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

/// Uniform choice among strategy alternatives, e.g.
/// `prop_oneof![Just(A), (0u64..9).prop_map(B)]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($arm) as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Spans here always fit u64 (the widest primitive we draw).
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (*self.start() as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
