//! Collection strategies: `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// `Vec<T>` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
