//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draw a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The whole-domain strategy for `T`: `any::<u64>()`, `any::<bool>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: tests expect arithmetic to stay meaningful.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32((rng.below(0xD7FF) + 1) as u32).unwrap_or('a')
    }
}
