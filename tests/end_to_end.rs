//! End-to-end integration: generate → bulk-load → replay updates → query,
//! plus WAL crash recovery, across the whole workspace.

use ldbc_snb::core::update::UpdateOp;
use ldbc_snb::core::{PersonId, SimTime};
use ldbc_snb::datagen::{generate, Dataset, GeneratorConfig};
use ldbc_snb::queries::{complex, Engine};
use ldbc_snb::store::Store;
use std::sync::OnceLock;

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        generate(GeneratorConfig::with_persons(400).activity(0.4).threads(4).seed(3)).unwrap()
    })
}

#[test]
fn bulk_plus_updates_equals_full_load() {
    let ds = dataset();
    // Store A: bulk load then replay every update.
    let a = Store::new();
    a.bulk_load(ds);
    for u in ds.update_stream() {
        a.apply(&u.op).unwrap();
    }
    // Store B: load everything directly.
    let b = Store::new();
    b.load_full(ds);

    let sa = a.snapshot();
    let sb = b.snapshot();
    assert_eq!(sa.person_slots(), sb.person_slots());
    assert_eq!(sa.message_slots(), sb.message_slots());
    for i in 0..ds.persons.len() as u64 {
        let p = PersonId(i);
        assert_eq!(sa.friends(p), sb.friends(p), "friend list of {p}");
        assert_eq!(sa.messages_of(p), sb.messages_of(p), "messages of {p}");
        assert_eq!(sa.likes_by(p), sb.likes_by(p), "likes by {p}");
    }
}

#[test]
fn all_queries_agree_across_engines_after_replay() {
    let ds = dataset();
    let store = Store::new();
    store.bulk_load(ds);
    for u in ds.update_stream() {
        store.apply(&u.op).unwrap();
    }
    let bindings = ldbc_snb::params::curated_bindings(ds, 3);
    let snap = store.pinned();
    for q in 1..=14 {
        for binding in bindings.all(q) {
            let a = complex::run_complex(&snap, Engine::Intended, binding);
            let b = complex::run_complex(&snap, Engine::Naive, binding);
            assert_eq!(a, b, "engines disagree on Q{q} ({binding:?})");
        }
    }
}

#[test]
fn wal_recovery_restores_exact_state() {
    let ds = dataset();
    let wal_path = std::env::temp_dir().join(format!("snb-e2e-wal-{}", std::process::id()));
    // "Crash" after applying half the update stream.
    let stream = ds.update_stream();
    let half = stream.len() / 2;
    {
        let store = Store::with_wal(&wal_path).unwrap();
        store.bulk_load(ds);
        for u in &stream[..half] {
            store.apply(&u.op).unwrap();
        }
        store.flush_wal().unwrap();
        // store dropped here = crash after flush
    }
    let (recovered, report) = Store::recover(ds, &wal_path).unwrap();
    assert_eq!(report.replayed as usize, half);
    assert_eq!(report.truncated_bytes, 0, "clean shutdown must lose nothing");

    // The recovered store answers queries identically to a store that never
    // crashed.
    let reference = Store::new();
    reference.bulk_load(ds);
    for u in &stream[..half] {
        reference.apply(&u.op).unwrap();
    }
    let sr = recovered.snapshot();
    let sf = reference.snapshot();
    for i in (0..ds.persons.len() as u64).step_by(7) {
        let p = PersonId(i);
        assert_eq!(sr.friends(p), sf.friends(p));
        assert_eq!(sr.messages_of(p), sf.messages_of(p));
    }
    // And it keeps accepting the remaining updates.
    for u in &stream[half..] {
        recovered.apply(&u.op).unwrap();
    }
    std::fs::remove_file(&wal_path).unwrap();
}

#[test]
fn parallel_bulk_load_answers_queries_identically_to_serial() {
    // Determinism contract of the parallel sorted loader: on a fixed seed,
    // every complex read (Q1-Q14, all curated bindings) returns
    // byte-identical results whether the store was loaded with 1 thread or
    // 4.
    let ds = dataset();
    let serial = Store::new();
    serial.bulk_load_until_threads(ds, ds.config.end, 1);
    let parallel = Store::new();
    parallel.bulk_load_until_threads(ds, ds.config.end, 4);

    let ss = serial.pinned();
    let sp = parallel.pinned();
    assert_eq!(ss.person_slots(), sp.person_slots());
    assert_eq!(ss.forum_slots(), sp.forum_slots());
    assert_eq!(ss.message_slots(), sp.message_slots());

    let bindings = ldbc_snb::params::curated_bindings(ds, 3);
    for q in 1..=14 {
        for binding in bindings.all(q) {
            let a = complex::run_complex(&ss, Engine::Intended, binding);
            let b = complex::run_complex(&sp, Engine::Intended, binding);
            assert_eq!(a, b, "Q{q} diverges under parallel load ({binding:?})");
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "Q{q} results must be byte-identical ({binding:?})"
            );
        }
    }
}

#[test]
fn snapshots_isolate_concurrent_update_batches() {
    let ds = dataset();
    let store = Store::new();
    store.bulk_load(ds);
    let stream = ds.update_stream();

    // Interleave: snapshot, apply a batch, verify the old snapshot still
    // sees the old counts while a new snapshot sees more.
    let count_visible = |snap: &ldbc_snb::store::Snapshot<'_>| {
        (0..snap.message_slots() as u64)
            .filter(|&m| snap.message_meta(ldbc_snb::core::MessageId(m)).is_some())
            .count()
    };
    let before = store.snapshot();
    let n_before = count_visible(&before);
    let batch: Vec<_> = stream
        .iter()
        .filter(|u| {
            matches!(u.op, UpdateOp::AddPerson(_) | UpdateOp::AddForum(_) | UpdateOp::AddPost(_))
        })
        .take(200)
        .collect();
    for u in &batch {
        store.apply(&u.op).unwrap();
    }
    assert_eq!(count_visible(&before), n_before, "old snapshot changed");
    let after = store.snapshot();
    assert!(count_visible(&after) > n_before, "new snapshot missing inserts");
}

#[test]
fn csv_export_round_trips_row_counts() {
    let ds = dataset();
    let dir = std::env::temp_dir().join(format!("snb-e2e-csv-{}", std::process::id()));
    let rows = ldbc_snb::datagen::serializer::write_csv(ds, &dir).unwrap();
    let bulk_messages = ds
        .posts
        .iter()
        .map(|p| p.creation_date)
        .chain(ds.comments.iter().map(|c| c.creation_date))
        .filter(|&t| t <= ds.config.update_split)
        .count();
    let posts_csv = std::fs::read_to_string(dir.join("post.csv")).unwrap().lines().count() - 1;
    let comments_csv =
        std::fs::read_to_string(dir.join("comment.csv")).unwrap().lines().count() - 1;
    assert_eq!(posts_csv + comments_csv, bulk_messages);
    assert!(rows as usize > bulk_messages);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn simulation_window_holds_for_all_entities() {
    let ds = dataset();
    for p in &ds.persons {
        assert!(p.creation_date >= SimTime::SIM_START && p.creation_date < SimTime::SIM_END);
    }
    for m in &ds.posts {
        assert!(m.creation_date < SimTime::SIM_END);
    }
    for l in &ds.likes {
        assert!(l.creation_date < SimTime::SIM_END);
    }
}
