//! Driver correctness under parallel execution: dependency ordering is
//! never violated, whatever the partitioning or execution mode.

use ldbc_snb::core::update::UpdateOp;
use ldbc_snb::core::{SimTime, SnbResult};
use ldbc_snb::datagen::{generate, Dataset, GeneratorConfig};
use ldbc_snb::driver::connector::{OpOutcome, Operation};
use ldbc_snb::driver::{mix, run, Connector, DriverConfig, ExecutionMode};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::OnceLock;

fn dataset() -> &'static Dataset {
    static DS: OnceLock<Dataset> = OnceLock::new();
    DS.get_or_init(|| {
        generate(GeneratorConfig::with_persons(500).activity(0.4).threads(4).seed(9)).unwrap()
    })
}

/// A connector that verifies, at execution time, that every referenced
/// person and forum from the update stream was inserted first — the
/// observable definition of "dependencies are not violated during
/// execution" (§4.2).
#[derive(Default)]
struct OrderValidatingConnector {
    persons: Mutex<HashSet<u64>>,
    forums: Mutex<HashSet<u64>>,
    bulk_split: SimTime,
    violations: Mutex<Vec<String>>,
}

impl OrderValidatingConnector {
    fn new(ds: &Dataset) -> Self {
        // Bulk entities are pre-existing.
        let persons = ds
            .persons
            .iter()
            .filter(|p| p.creation_date <= ds.config.update_split)
            .map(|p| p.id.raw())
            .collect();
        let forums = ds
            .forums
            .iter()
            .filter(|f| f.creation_date <= ds.config.update_split)
            .map(|f| f.id.raw())
            .collect();
        OrderValidatingConnector {
            persons: Mutex::new(persons),
            forums: Mutex::new(forums),
            bulk_split: ds.config.update_split,
            violations: Mutex::new(Vec::new()),
        }
    }

    fn check_person(&self, id: u64, what: &str) {
        if !self.persons.lock().contains(&id) {
            self.violations.lock().push(format!("{what}: person {id} missing"));
        }
    }

    fn check_forum(&self, id: u64, what: &str) {
        if !self.forums.lock().contains(&id) {
            self.violations.lock().push(format!("{what}: forum {id} missing"));
        }
    }
}

impl Connector for OrderValidatingConnector {
    fn execute(&self, op: &Operation) -> SnbResult<OpOutcome> {
        let Operation::Update(u) = op else {
            return Ok(OpOutcome::default());
        };
        match u {
            UpdateOp::AddPerson(p) => {
                self.persons.lock().insert(p.id.raw());
            }
            UpdateOp::AddFriendship(k) => {
                self.check_person(k.a.raw(), "addFriendship");
                self.check_person(k.b.raw(), "addFriendship");
            }
            UpdateOp::AddForum(f) => {
                self.check_person(f.moderator.raw(), "addForum");
                self.forums.lock().insert(f.id.raw());
            }
            UpdateOp::AddMembership(m) => {
                self.check_person(m.person.raw(), "addMembership");
                self.check_forum(m.forum.raw(), "addMembership");
            }
            UpdateOp::AddPost(p) => {
                self.check_person(p.author.raw(), "addPost");
                self.check_forum(p.forum.raw(), "addPost");
            }
            UpdateOp::AddComment(c) => {
                self.check_person(c.author.raw(), "addComment");
                self.check_forum(c.forum.raw(), "addComment");
            }
            UpdateOp::AddPostLike(l) | UpdateOp::AddCommentLike(l) => {
                self.check_person(l.person.raw(), "addLike");
            }
        }
        let _ = self.bulk_split;
        Ok(OpOutcome { rows: 1, ..Default::default() })
    }
}

#[test]
fn parallel_mode_never_violates_dependencies() {
    let ds = dataset();
    let items = mix::updates_only(ds);
    for partitions in [1, 3, 6, 12] {
        let conn = OrderValidatingConnector::new(ds);
        let config = DriverConfig { partitions, ..DriverConfig::default() };
        run(&items, &conn, &config).unwrap();
        let violations = conn.violations.into_inner();
        assert!(
            violations.is_empty(),
            "partitions={partitions}: {} violations, first: {}",
            violations.len(),
            violations[0]
        );
    }
}

#[test]
fn windowed_mode_never_violates_dependencies() {
    let ds = dataset();
    let items = mix::updates_only(ds);
    for window in [ds.config.t_safe_millis, ds.config.t_safe_millis / 4] {
        let conn = OrderValidatingConnector::new(ds);
        let config = DriverConfig {
            partitions: 6,
            mode: ExecutionMode::Windowed { window_millis: window },
            ..DriverConfig::default()
        };
        run(&items, &conn, &config).unwrap();
        let violations = conn.violations.into_inner();
        assert!(violations.is_empty(), "window={window}: {violations:?}");
    }
}

#[test]
fn intra_forum_causality_holds_per_partition() {
    // Comments must execute after their parent within the same forum
    // stream; verify with a connector that tracks message insertion order.
    let ds = dataset();
    let items = mix::updates_only(ds);

    #[derive(Default)]
    struct ForumOrderConnector {
        messages: Mutex<HashSet<u64>>,
        bulk: HashSet<u64>,
        violations: Mutex<usize>,
    }
    impl Connector for ForumOrderConnector {
        fn execute(&self, op: &Operation) -> SnbResult<OpOutcome> {
            if let Operation::Update(u) = op {
                match u {
                    UpdateOp::AddPost(p) => {
                        self.messages.lock().insert(p.id.raw());
                    }
                    UpdateOp::AddComment(c) => {
                        let seen = self.messages.lock();
                        if !seen.contains(&c.reply_to.raw())
                            && !self.bulk.contains(&c.reply_to.raw())
                        {
                            *self.violations.lock() += 1;
                        }
                        drop(seen);
                        self.messages.lock().insert(c.id.raw());
                    }
                    _ => {}
                }
            }
            Ok(OpOutcome::default())
        }
    }

    let bulk: HashSet<u64> = ds
        .posts
        .iter()
        .map(|p| (p.id.raw(), p.creation_date))
        .chain(ds.comments.iter().map(|c| (c.id.raw(), c.creation_date)))
        .filter(|&(_, t)| t <= ds.config.update_split)
        .map(|(id, _)| id)
        .collect();
    let conn = ForumOrderConnector { bulk, ..Default::default() };
    let config = DriverConfig { partitions: 8, ..DriverConfig::default() };
    run(&items, &conn, &config).unwrap();
    assert_eq!(*conn.violations.lock(), 0, "comment executed before its parent");
}

#[test]
fn throughput_scales_and_latency_is_recorded() {
    let ds = dataset();
    let items: Vec<_> = mix::updates_only(ds).into_iter().take(4_000).collect();
    let conn = ldbc_snb::driver::SleepConnector::new(std::time::Duration::from_micros(100));
    let r1 =
        run(&items, &conn, &DriverConfig { partitions: 1, ..DriverConfig::default() }).unwrap();
    let r8 =
        run(&items, &conn, &DriverConfig { partitions: 8, ..DriverConfig::default() }).unwrap();
    assert!(
        r8.ops_per_second > 2.0 * r1.ops_per_second,
        "1p {:.0} ops/s vs 8p {:.0} ops/s",
        r1.ops_per_second,
        r8.ops_per_second
    );
    assert_eq!(r1.total_ops, items.len());
    assert!(!r1.metrics.kinds().is_empty());
}
