#!/usr/bin/env python3
"""Guard the claims in BENCH_concurrent_load.json (stdlib only).

Three checks, run by the CI perf-smoke job after `ext_concurrent_load`:

1. Zero errors: every level of every mix must report `errors == 0`. The
   sweep uses only valid dataset ids and independent updates, so a single
   error means the server dropped, corrupted, or mis-correlated a request.

2. Leak guard: after a level's clients hang up, the server must have
   reaped every connection it accepted — `accepted - closed` may not
   drift past the connections still live when the counters were read
   (`open_conns`, which is 0 for this bench: it holds no idle
   connections). Drift here is exactly the churn leak this PR fixes.

3. Concurrency does not collapse throughput — and, where the hardware can
   show it, actually scales. On a host with at least SCALING_HW_THREADS
   hardware threads, read-heavy QPS at COMPARE_CONNS connections must be
   at least SCALING_QPS_RATIO of QPS at 1 connection: the readiness loop
   feeds a worker pool, so independent reads on independent connections
   must run concurrently, not merely avoid collapse. On smaller hosts
   (single-core CI runners) real scaling is physically impossible and the
   floor falls back to MIN_QPS_RATIO — multiplexing must still not
   serialize or thrash.

Exit code 0 = all claims hold; 1 = a guard tripped.

Usage: python3 ci/check_concurrent_load.py BENCH_concurrent_load.json
"""

import json
import sys

COMPARE_CONNS = 16
MIN_QPS_RATIO = 0.9
SCALING_HW_THREADS = 4
SCALING_QPS_RATIO = 1.25


def main(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "ext_concurrent_load":
        print(f"FAIL: {path} is not an ext_concurrent_load report")
        return 1

    failures = []
    levels_checked = 0

    for mix in doc["mixes"]:
        name = mix["mix"]
        for level in mix["levels"]:
            levels_checked += 1
            conns = level["conns"]
            if level["errors"] != 0:
                failures.append(
                    f"{name} conns={conns}: {level['errors']} errors "
                    f"({level['error_rate']:.2%} of {level['total_ops']} ops)"
                )
            drift = level["accepted"] - level["closed"]
            if drift > level["open_conns"]:
                failures.append(
                    f"{name} conns={conns}: accepted-closed drift {drift} exceeds "
                    f"live connections {level['open_conns']} — connection leak"
                )

    read_heavy = next((m for m in doc["mixes"] if m["mix"] == "read_heavy"), None)
    if read_heavy is None:
        failures.append("read_heavy mix missing from report")
    else:
        by_conns = {lvl["conns"]: lvl for lvl in read_heavy["levels"]}
        if 1 not in by_conns or COMPARE_CONNS not in by_conns:
            failures.append(
                f"read_heavy sweep lacks the 1 and {COMPARE_CONNS} connection "
                f"levels needed for the throughput guard"
            )
        else:
            hw_threads = doc.get("hw_threads", 1)
            if hw_threads >= SCALING_HW_THREADS:
                floor, regime = SCALING_QPS_RATIO, f"{hw_threads} hw threads: scaling floor"
            else:
                floor, regime = MIN_QPS_RATIO, f"{hw_threads} hw thread(s): no-collapse floor"
            qps_1 = by_conns[1]["qps"]
            qps_n = by_conns[COMPARE_CONNS]["qps"]
            if qps_n < floor * qps_1:
                failures.append(
                    f"read_heavy QPS under concurrency: "
                    f"{qps_n:.0f} at {COMPARE_CONNS} conns vs {qps_1:.0f} at 1 "
                    f"({regime} {floor:.0%})"
                )
            else:
                print(
                    f"OK: read_heavy QPS {qps_n:.0f} at {COMPARE_CONNS} conns vs "
                    f"{qps_1:.0f} at 1 ({regime} {floor:.0%})"
                )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: {levels_checked} levels, zero errors, no connection leaks")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
