#!/usr/bin/env python3
"""Guard the claims in BENCH_storage_footprint.json (stdlib only).

Two checks, run by the CI perf-smoke job after `ext_storage_footprint`:

1. Compression floor: the store-wide index compression ratio
   (uncompressed 24-byte run entries over compact run bytes) must stay at
   or above MIN_COMPRESSION_RATIO at every measured scale. The PR that
   introduced the compact run format measured >= 2x; 1.5x is the
   regression floor, leaving headroom for dataset-shape drift at the tiny
   CI scales.

2. Read-path floor: the complex read-only mix (Q2/Q6/Q9 intended plans)
   over compact runs must reach at least MIN_OPS_RATIO of the same mix
   over the in-bin uncompressed oracle replica. The bench asserts
   row-identical results before timing, so this ratio isolates the decode
   cost of the compact format.

Exit code 0 = all claims hold; 1 = a guard tripped.

Usage: python3 ci/check_storage_footprint.py BENCH_storage_footprint.json
"""

import json
import sys

MIN_COMPRESSION_RATIO = 1.5
MIN_OPS_RATIO = 0.9


def main(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "ext_storage_footprint":
        print(f"FAIL: {path} is not an ext_storage_footprint report")
        return 1

    failures = []
    for scale in doc["scales"]:
        persons = scale["persons"]
        ratio = scale["compression_ratio"]
        ops_ratio = scale["ops_ratio"]
        if ratio < MIN_COMPRESSION_RATIO:
            failures.append(
                f"persons={persons}: compression ratio {ratio:.2f}x "
                f"below floor {MIN_COMPRESSION_RATIO}x"
            )
        if ops_ratio < MIN_OPS_RATIO:
            failures.append(
                f"persons={persons}: complex-mix ops ratio {ops_ratio:.2f} "
                f"below floor {MIN_OPS_RATIO} (compact read path regressed "
                f"vs the uncompressed oracle)"
            )
        print(
            f"scale persons={persons}: compression {ratio:.2f}x, "
            f"complex-mix ops ratio {ops_ratio:.2f}, "
            f"{scale['run_bytes']} run bytes vs {scale['oracle_run_bytes']} raw"
        )

    # The per-scale loop and the bench's own min must agree — a drifting
    # summary field would make the EXPERIMENTS.md numbers unverifiable.
    mins = (doc["min_compression_ratio"], doc["min_ops_ratio"])
    recomputed = (
        min(s["compression_ratio"] for s in doc["scales"]),
        min(s["ops_ratio"] for s in doc["scales"]),
    )
    for name, reported, computed in zip(
        ("min_compression_ratio", "min_ops_ratio"), mins, recomputed
    ):
        if abs(reported - computed) > 1e-9:
            failures.append(f"{name}={reported} but per-scale values imply {computed}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: {len(doc['scales'])} scales, compression >= {MIN_COMPRESSION_RATIO}x, "
        f"complex-mix ops ratio >= {MIN_OPS_RATIO}"
    )
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
