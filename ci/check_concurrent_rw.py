#!/usr/bin/env python3
"""Guard the claims in BENCH_concurrent_rw.json (stdlib only).

Two checks, run by the CI perf-smoke job after `ext_concurrent_rw`:

1. Scaling-claim validity: every config must carry `scaling_valid` equal
   to `hw_threads >= writers`. A "scaling" figure measured with fewer
   hardware threads than writers is a Linux scheduler-share artifact, not
   parallelism, and must be flagged so nobody reads the JSON as a
   multi-core result (this exact misread happened with the PR 5 numbers).

2. publish_wait budget: on a host with `hw_threads >= 4`, the
   out-of-order publication rework (PR 7) must keep `publish_wait` at or
   below MAX_PUBLISH_WAIT_SHARE of summed pipeline time at 4 writers.
   Regressing this means head-of-line blocking is back. The
   `validate_failed` split is excluded: it belongs to rejected
   transactions, which never tile a committed apply.

Exit code 0 = all claims hold; 1 = a guard tripped.

Usage: python3 ci/check_concurrent_rw.py BENCH_concurrent_rw.json
"""

import json
import sys

MAX_PUBLISH_WAIT_SHARE = 0.20
GUARDED_WRITERS = 4

# Committed-path pipeline stages (see StageHistograms::named in
# crates/store/src/counters.rs); validate_failed is deliberately absent.
PIPELINE_PREFIX = "store.stage."
EXCLUDED = {"store.stage.validate_failed_nanos"}


def pipeline_sum(stages):
    return sum(
        h["sum"]
        for name, h in stages.items()
        if name.startswith(PIPELINE_PREFIX) and name not in EXCLUDED
    )


def main(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "ext_concurrent_rw":
        print(f"FAIL: {path} is not an ext_concurrent_rw report")
        return 1

    hw_threads = doc["hw_threads"]
    failures = []
    checked_publish_wait = False

    for config in doc["configs"]:
        writers = config["writers"]
        expected_valid = hw_threads >= writers
        if config.get("scaling_valid") != expected_valid:
            failures.append(
                f"writers={writers}: scaling_valid={config.get('scaling_valid')!r} "
                f"but hw_threads={hw_threads} implies {expected_valid}"
            )

        if writers == GUARDED_WRITERS and hw_threads >= GUARDED_WRITERS:
            checked_publish_wait = True
            stages = config["stages"]
            total = pipeline_sum(stages)
            publish = stages.get("store.stage.publish_wait_nanos", {"sum": 0})["sum"]
            share = publish / total if total else 0.0
            if share > MAX_PUBLISH_WAIT_SHARE:
                failures.append(
                    f"writers={writers}: publish_wait is {share:.1%} of pipeline time "
                    f"(limit {MAX_PUBLISH_WAIT_SHARE:.0%}) — head-of-line blocking is back"
                )
            else:
                print(
                    f"OK: publish_wait {share:.1%} of pipeline at {writers} writers "
                    f"(limit {MAX_PUBLISH_WAIT_SHARE:.0%}, hw_threads={hw_threads})"
                )

    if not checked_publish_wait:
        print(
            f"NOTE: publish_wait budget not enforced "
            f"(hw_threads={hw_threads} < {GUARDED_WRITERS}); "
            f"scaling rows beyond {hw_threads} writers are marked invalid instead"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: {len(doc['configs'])} configs, scaling_valid flags consistent")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
