#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by `snb run --trace`.

Checks, with stdlib only (CI has no pip):
  1. the file parses as JSON and has a non-empty `traceEvents` array;
  2. every complete ("X") event carries ts/dur/pid/tid and span ids in args;
  3. causal nesting holds: every span whose parent is present lies inside
     its parent's [start, end] interval (ring-evicted parents are skipped);
  4. with --require-server, both the driver (pid 1) and server (pid 2)
     process lanes are present and at least one server span is parented to
     a driver span in the same trace — i.e. the wire stitching worked.

Usage: validate_trace.py TRACE.json [--require-server]
"""

import json
import sys


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: validate_trace.py TRACE.json [--require-server]")
    path = sys.argv[1]
    require_server = "--require-server" in sys.argv[2:]

    with open(path) as f:
        doc = json.load(f)

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    spans = []
    for e in events:
        ph = e.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            fail(f"unexpected event phase {ph!r}: {e}")
        for key in ("name", "ts", "dur", "pid", "tid"):
            if key not in e:
                fail(f"complete event missing {key!r}: {e}")
        args = e.get("args", {})
        for key in ("trace_id", "span_id", "parent_id"):
            if key not in args:
                fail(f"event args missing {key!r}: {e}")
        spans.append(e)
    if not spans:
        fail("no complete (X) spans in trace")

    # Span ids are only meaningful within a trace: the driver and the server
    # allocate from independent counters, so a bare span_id join would pair
    # spans from unrelated traces. Key by (trace_id, span_id).
    by_id = {(s["args"]["trace_id"], s["args"]["span_id"]): s for s in spans}
    checked = orphans = 0
    for s in spans:
        parent_id = s["args"]["parent_id"]
        if parent_id == 0:
            continue
        parent = by_id.get((s["args"]["trace_id"], parent_id))
        if parent is None:
            orphans += 1  # parent evicted by the ring; not an error
            continue
        ps, pe = parent["ts"], parent["ts"] + parent["dur"]
        cs, ce = s["ts"], s["ts"] + s["dur"]
        if cs < ps or ce > pe:
            fail(
                f"span {s['args']['span_id']} {s['name']!r} [{cs}, {ce}] "
                f"escapes parent {parent_id} {parent['name']!r} [{ps}, {pe}]"
            )
        checked += 1
    if checked == 0:
        fail("no parent/child link could be verified")

    pids = {s["pid"] for s in spans}
    stitched = 0
    if require_server:
        if 2 not in pids:
            fail("--require-server: no server (pid 2) spans in trace")
        for s in spans:
            if s["pid"] != 2:
                continue
            parent = by_id.get((s["args"]["trace_id"], s["args"]["parent_id"]))
            if parent is not None and parent["pid"] == 1:
                stitched += 1
        if stitched == 0:
            fail("--require-server: no server span is parented to a driver span")

    print(
        f"OK: {len(spans)} spans, {checked} nested links verified, "
        f"{orphans} orphans skipped, pids={sorted(pids)}, "
        f"{stitched} client->server stitches"
    )


if __name__ == "__main__":
    main()
