#!/usr/bin/env python3
"""Guard the claims in BENCH_sharded.json (stdlib only).

Run by the CI perf-smoke job after `ext_sharded`, which sweeps the same
read slice over 1, 2, and 4 shard servers behind the ShardedConnector:

1. Zero errors: every level of every mix must report `errors == 0`. The
   router verifies shard identity at connect and correlation ids on every
   reply, so a single error means a request was dropped, misrouted, or
   mis-correlated.

2. Leak guard, per shard: after the windows finish, each shard server's
   `accepted - closed` may not drift past the connections the router
   still holds open on it. Drift means the shard leaked churned
   connections.

3. Every shard serves work: a level's per-shard request counts must all
   be positive — point ops spread over shards by id range, scatters hit
   every shard, so a silent shard means routing is broken.

4. The router is near-free on routed point reads. In the `routed_reads`
   mix every op crosses the wire exactly once regardless of shard count,
   so 2-shard aggregate QPS must hold at least MIN_ROUTER_RATIO of
   single-shard QPS even on a one-core host. The ratio is taken from the
   best *matched round*: the bench interleaves the levels' timed windows
   round-robin, so comparing round r of each level cancels the
   background-load drift a cross-time ratio would absorb.

5. Real scaling where the hardware can show it: on a host with at least
   SCALING_HW_THREADS hardware threads, `routed_reads` 2-shard QPS must
   reach SCALING_RATIO of single-shard — N shards put N event loops and
   worker pools behind the same workload. On smaller hosts the levels
   are published with `scaling_valid: false` and only the no-collapse
   floor (4) applies; `scatter_heavy` documents the ~N-fold fan-out cost
   of scattered reads and is never held to a scaling floor, only to
   checks 1-3.

Exit code 0 = all claims hold; 1 = a guard tripped.

Usage: python3 ci/check_sharded.py BENCH_sharded.json
"""

import json
import sys

MIN_ROUTER_RATIO = 0.9
SCALING_HW_THREADS = 4
SCALING_RATIO = 1.2


def best_matched_ratio(base_level, level):
    """Best over rounds of level-qps / base-qps, rounds running back to back."""
    pairs = list(zip(base_level["round_qps"], level["round_qps"]))
    if not pairs:
        return None
    return max(n / b for b, n in pairs if b > 0)


def main(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("bench") != "ext_sharded":
        print(f"FAIL: {path} is not an ext_sharded report")
        return 1

    failures = []
    levels_checked = 0

    for mix in doc["mixes"]:
        name = mix["mix"]
        for level in mix["levels"]:
            levels_checked += 1
            shards = level["shards"]
            where = f"{name} shards={shards}"
            if level["errors"] != 0:
                failures.append(
                    f"{where}: {level['errors']} errors across {level['total_ops']} ops"
                )
            if len(level["per_shard"]) != shards:
                failures.append(
                    f"{where}: disclosure covers {len(level['per_shard'])} shards"
                )
            for s in level["per_shard"]:
                drift = s["accepted"] - s["closed"]
                if drift > s["open_conns"]:
                    failures.append(
                        f"{where} shard {s['shard']}: accepted-closed drift {drift} "
                        f"exceeds live connections {s['open_conns']} — connection leak"
                    )
                if s["requests"] == 0:
                    failures.append(
                        f"{where} shard {s['shard']}: served zero requests — "
                        f"routing never reached it"
                    )

    routed = next((m for m in doc["mixes"] if m["mix"] == "routed_reads"), None)
    if routed is None:
        failures.append("routed_reads mix missing from report")
    else:
        by_shards = {lvl["shards"]: lvl for lvl in routed["levels"]}
        if 1 not in by_shards or 2 not in by_shards:
            failures.append(
                "routed_reads sweep lacks the 1 and 2 shard levels needed "
                "for the router-overhead guard"
            )
        else:
            hw_threads = doc.get("hw_threads", 1)
            if hw_threads >= SCALING_HW_THREADS:
                floor, regime = SCALING_RATIO, f"{hw_threads} hw threads: scaling floor"
            else:
                floor, regime = MIN_ROUTER_RATIO, (
                    f"{hw_threads} hw thread(s): router-overhead floor"
                )
            ratio = best_matched_ratio(by_shards[1], by_shards[2])
            if ratio is None:
                failures.append("routed_reads levels carry no matched rounds")
            elif ratio < floor:
                failures.append(
                    f"routed_reads 2-shard QPS fell to {ratio:.2f}x of "
                    f"single-shard ({regime} {floor:.0%})"
                )
            else:
                print(
                    f"OK: routed_reads 2-shard QPS {ratio:.2f}x of single-shard "
                    f"({regime} {floor:.0%})"
                )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: {levels_checked} levels, zero errors, no leaks, every shard served")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
