//! Compressed sparse-row snapshot of the `knows` graph.
//!
//! The SNB-Algorithms workload (§1) runs "a handful of often-used graph
//! analysis algorithms" over the same dataset as the Interactive workload;
//! they are read-only and scan-heavy, so they operate on an immutable CSR
//! extraction rather than the transactional store.

use snb_core::schema::Knows;
use snb_core::PersonId;

/// Immutable undirected graph in CSR form.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated, sorted adjacency lists.
    neighbors: Vec<u32>,
}

impl CsrGraph {
    /// Build from an edge list over `n` vertices. Parallel edges are
    /// deduplicated; self-loops dropped.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> CsrGraph {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (a, b) in edges {
            if a == b {
                continue;
            }
            adj[a as usize].push(b);
            adj[b as usize].push(a);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            neighbors.extend_from_slice(list);
            offsets.push(neighbors.len() as u32);
        }
        CsrGraph { offsets, neighbors }
    }

    /// Build from a generated dataset's friendship edges.
    pub fn from_dataset(ds: &snb_datagen::Dataset) -> CsrGraph {
        CsrGraph::from_edges(
            ds.persons.len(),
            ds.knows.iter().map(|k: &Knows| (k.a.raw() as u32, k.b.raw() as u32)),
        )
    }

    /// Vertex count.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Undirected edge count.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Total adjacency-entry count (2 × edges); the `2m` of modularity.
    #[inline]
    pub fn neighbors_len(&self) -> usize {
        self.neighbors.len()
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// Whether `a` and `b` are adjacent (binary search on the sorted list).
    #[inline]
    pub fn has_edge(&self, a: u32, b: u32) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Person id of vertex `v` (vertices are dense person indices).
    pub fn person(&self, v: u32) -> PersonId {
        PersonId(v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1-2 triangle, 2-3 tail, 4 isolated.
        CsrGraph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn csr_layout_is_correct() {
        let g = triangle_plus_tail();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(4), &[] as &[u32]);
        assert_eq!(g.degree(2), 3);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle_plus_tail();
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(4, 0));
    }

    #[test]
    fn duplicates_and_self_loops_are_dropped() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 0), (0, 0), (0, 1)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn dataset_extraction_matches_knows() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(150).activity(0.3))
                .unwrap();
        let g = CsrGraph::from_dataset(&ds);
        assert_eq!(g.vertex_count(), 150);
        assert_eq!(g.edge_count(), ds.knows.len());
        for k in &ds.knows {
            assert!(g.has_edge(k.a.raw() as u32, k.b.raw() as u32));
        }
    }
}
