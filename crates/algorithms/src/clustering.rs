//! Clustering coefficients — the "Clustering" entry of the planned
//! SNB-Algorithms workload, and the structural property (together with
//! communities) that §1 says DATAGEN is tuned to make realistic.

use crate::graph::CsrGraph;

/// Local clustering coefficient of `v`: the fraction of its neighbor pairs
/// that are themselves connected. 0 for degree < 2.
pub fn local_clustering(g: &CsrGraph, v: u32) -> f64 {
    let neigh = g.neighbors(v);
    let d = neigh.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in neigh.iter().enumerate() {
        for &b in &neigh[i + 1..] {
            if g.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Average local clustering coefficient over all vertices with degree ≥ 2.
pub fn average_clustering(g: &CsrGraph) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in 0..g.vertex_count() as u32 {
        if g.degree(v) >= 2 {
            sum += local_clustering(g, v);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// Exact global triangle count (sum over ordered wedges / 3, implemented as
/// neighbor-intersection on the higher-id side to count each once).
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let mut triangles = 0u64;
    for v in 0..g.vertex_count() as u32 {
        let neigh = g.neighbors(v);
        for (i, &a) in neigh.iter().enumerate() {
            if a <= v {
                continue;
            }
            for &b in &neigh[i + 1..] {
                if b > a && g.has_edge(a, b) {
                    triangles += 1;
                }
            }
        }
    }
    triangles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_is_fully_clustered() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        for v in 0..3 {
            assert!((local_clustering(&g, v) - 1.0).abs() < 1e-9);
        }
        assert_eq!(triangle_count(&g), 1);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn star_has_zero_clustering() {
        let g = CsrGraph::from_edges(5, (1..5).map(|i| (0u32, i as u32)));
        assert_eq!(local_clustering(&g, 0), 0.0);
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn square_with_diagonal() {
        // 0-1-2-3-0 plus diagonal 0-2: two triangles.
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert_eq!(triangle_count(&g), 2);
        // Vertex 1 has neighbors {0,2} which are connected -> cc = 1.
        assert!((local_clustering(&g, 1) - 1.0).abs() < 1e-9);
        // Vertex 0 has neighbors {1,2,3}: pairs (1,2) and (2,3) closed -> 2/3.
        assert!((local_clustering(&g, 0) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn generated_graph_clusters_more_than_random() {
        // Homophily (§2.3) must produce clustering far above the
        // Erdős–Rényi expectation (which is mean_degree / n).
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(800).activity(0.2))
                .unwrap();
        let g = CsrGraph::from_dataset(&ds);
        let cc = average_clustering(&g);
        let mean_degree = 2.0 * g.edge_count() as f64 / g.vertex_count() as f64;
        let random_cc = mean_degree / g.vertex_count() as f64;
        assert!(cc > 5.0 * random_cc, "clustering {cc:.4} vs random expectation {random_cc:.4}");
        assert!(triangle_count(&g) > 0);
    }
}
