//! Community detection — the "Community Detection" entry of the planned
//! SNB-Algorithms workload. Two algorithms: label propagation (fast,
//! collapse-prone on dense graphs) and Louvain-style greedy modularity
//! local moving (robust), plus Newman modularity as the quality measure.
//! The paper's companion study (Prat & Domínguez-Sal, GRADES 2014, ref
//! \[13\]) evaluates exactly this: how community-like the generated graph is.

use crate::graph::CsrGraph;
use std::collections::HashMap;

/// Result of label propagation.
#[derive(Debug, Clone)]
pub struct Communities {
    /// Per-vertex community label (label values are arbitrary but stable).
    pub labels: Vec<u32>,
    /// Number of distinct communities.
    pub count: usize,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
}

/// Asynchronous label propagation with deterministic vertex order and
/// stabilizing tie-breaks: a vertex adopts the most frequent label among
/// its neighbors, keeping its current label when that label is among the
/// maxima (this damping prevents the label flooding that synchronous LPA
/// exhibits on dense graphs), smallest label otherwise. Capped at
/// `max_iterations` full sweeps.
pub fn label_propagation(g: &CsrGraph, max_iterations: usize) -> Communities {
    let n = g.vertex_count();
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        let mut changed = false;
        let mut freq: HashMap<u32, u32> = HashMap::new();
        for v in 0..n as u32 {
            let neigh = g.neighbors(v);
            if neigh.is_empty() {
                continue;
            }
            freq.clear();
            for &u in neigh {
                *freq.entry(labels[u as usize]).or_insert(0) += 1;
            }
            let max_count = *freq.values().max().unwrap();
            let current = labels[v as usize];
            if freq.get(&current) == Some(&max_count) {
                continue; // current label is already (co-)dominant
            }
            let best =
                freq.iter().filter(|&(_, &c)| c == max_count).map(|(&l, _)| l).min().unwrap();
            labels[v as usize] = best;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    let mut distinct: Vec<u32> = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    Communities { labels, count: distinct.len(), iterations }
}

/// Louvain-style greedy local moving (one level, no aggregation): sweep the
/// vertices, moving each to the neighboring community with the largest
/// modularity gain, until a sweep makes no move. Deterministic and
/// resistant to the label flooding LPA suffers on dense graphs.
pub fn louvain_communities(g: &CsrGraph, max_sweeps: usize) -> Communities {
    let n = g.vertex_count();
    let two_m = (2 * g.neighbors_len()) as f64;
    if two_m == 0.0 {
        return Communities { labels: (0..n as u32).collect(), count: n, iterations: 0 };
    }
    let mut labels: Vec<u32> = (0..n as u32).collect();
    // Total degree per community.
    let mut tot: Vec<f64> = (0..n as u32).map(|v| g.degree(v) as f64).collect();
    let mut iterations = 0;
    let mut k_in: HashMap<u32, f64> = HashMap::new();

    for _ in 0..max_sweeps {
        iterations += 1;
        let mut moved = false;
        for v in 0..n as u32 {
            let deg_v = g.degree(v) as f64;
            if deg_v == 0.0 {
                continue;
            }
            let cur = labels[v as usize];
            k_in.clear();
            for &u in g.neighbors(v) {
                *k_in.entry(labels[u as usize]).or_insert(0.0) += 1.0;
            }
            // Gain of placing v into community c (v temporarily removed
            // from its own): k_{v,c} - deg_v * tot_c / 2m.
            let gain = |c: u32| -> f64 {
                let k = k_in.get(&c).copied().unwrap_or(0.0);
                let t = if c == cur { tot[c as usize] - deg_v } else { tot[c as usize] };
                k - deg_v * t / two_m
            };
            let stay = gain(cur);
            let mut best = cur;
            let mut best_gain = stay;
            // Sorted candidate order: HashMap iteration is process-random,
            // and with strict improvement the first of equal gains wins, so
            // sorting makes ties resolve to the smallest label every run.
            let mut candidates: Vec<u32> = k_in.keys().copied().collect();
            candidates.sort_unstable();
            for c in candidates {
                let gc = gain(c);
                if gc > best_gain + 1e-12 {
                    best = c;
                    best_gain = gc;
                }
            }
            if best != cur {
                tot[cur as usize] -= deg_v;
                tot[best as usize] += deg_v;
                labels[v as usize] = best;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    let mut distinct: Vec<u32> = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    Communities { labels, count: distinct.len(), iterations }
}

/// Newman modularity of a labeling: `Q = Σ_c (e_c/m - (d_c/2m)^2)` where
/// `e_c` is the intra-community edge count and `d_c` the community degree
/// sum. Ranges in [-0.5, 1); random labelings score ≈ 0.
pub fn modularity(g: &CsrGraph, labels: &[u32]) -> f64 {
    let m = g.edge_count() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let mut intra: HashMap<u32, f64> = HashMap::new();
    let mut degree_sum: HashMap<u32, f64> = HashMap::new();
    for v in 0..g.vertex_count() as u32 {
        let lv = labels[v as usize];
        *degree_sum.entry(lv).or_insert(0.0) += g.degree(v) as f64;
        for &u in g.neighbors(v) {
            if u > v && labels[u as usize] == lv {
                *intra.entry(lv).or_insert(0.0) += 1.0;
            }
        }
    }
    degree_sum
        .iter()
        .map(|(c, &d)| {
            let e = intra.get(c).copied().unwrap_or(0.0);
            e / m - (d / (2.0 * m)).powi(2)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by a single bridge edge.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in a + 1..4 {
                edges.push((a, b));
                edges.push((a + 4, b + 4));
            }
        }
        edges.push((0, 4));
        CsrGraph::from_edges(8, edges)
    }

    #[test]
    fn cliques_become_separate_communities() {
        let g = two_cliques();
        let c = label_propagation(&g, 50);
        // Within-clique labels agree.
        assert_eq!(c.labels[1], c.labels[2]);
        assert_eq!(c.labels[2], c.labels[3]);
        assert_eq!(c.labels[5], c.labels[6]);
        assert_eq!(c.labels[6], c.labels[7]);
    }

    #[test]
    fn modularity_of_perfect_split_is_high() {
        let g = two_cliques();
        let split: Vec<u32> = (0..8).map(|v| if v < 4 { 0 } else { 1 }).collect();
        let q = modularity(&g, &split);
        assert!(q > 0.3, "q = {q}");
        // Everything in one community scores 0.
        let one = vec![0u32; 8];
        assert!(modularity(&g, &one).abs() < 1e-9);
    }

    #[test]
    fn propagation_converges_and_is_deterministic() {
        let g = two_cliques();
        let a = label_propagation(&g, 50);
        let b = label_propagation(&g, 50);
        assert_eq!(a.labels, b.labels);
        assert!(a.iterations <= 50);
    }

    #[test]
    fn generated_graph_is_community_like() {
        // The correlation dimensions of §2.3 should produce communities
        // with clearly positive modularity (paper ref [13] argues DATAGEN
        // graphs are community-like; this is the reproduction's check).
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(800).activity(0.2))
                .unwrap();
        let g = CsrGraph::from_dataset(&ds);
        let c = louvain_communities(&g, 30);
        let q = modularity(&g, &c.labels);
        assert!(q > 0.15, "modularity {q:.3} too low for a correlated graph");
        assert!(c.count > 1, "degenerate single community");
    }

    #[test]
    fn louvain_separates_cliques_perfectly() {
        let g = two_cliques();
        let c = louvain_communities(&g, 30);
        assert_eq!(c.labels[0], c.labels[1]);
        assert_eq!(c.labels[1], c.labels[2]);
        assert_eq!(c.labels[2], c.labels[3]);
        assert_eq!(c.labels[4], c.labels[5]);
        assert_ne!(c.labels[0], c.labels[4]);
        let q = modularity(&g, &c.labels);
        assert!(q > 0.3, "q = {q}");
    }

    #[test]
    fn louvain_beats_label_propagation_on_dense_graphs() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(500).activity(0.2))
                .unwrap();
        let g = CsrGraph::from_dataset(&ds);
        let lpa = label_propagation(&g, 30);
        let louvain = louvain_communities(&g, 30);
        assert!(modularity(&g, &louvain.labels) >= modularity(&g, &lpa.labels) - 1e-9);
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let g = CsrGraph::from_edges(3, [(0, 1)]);
        let c = label_propagation(&g, 10);
        assert_eq!(c.labels[2], 2);
    }
}

#[cfg(test)]
mod determinism_tests {
    use super::*;

    #[test]
    fn louvain_is_deterministic_on_generated_graphs() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(400).activity(0.2))
                .unwrap();
        let g = CsrGraph::from_dataset(&ds);
        let a = louvain_communities(&g, 20);
        let b = louvain_communities(&g, 20);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.count, b.count);
    }
}
