//! Breadth-first search — the Graph500-style kernel the paper names for
//! SNB-Algorithms (and compares to Graph-500 in related work).

use crate::graph::CsrGraph;
use std::collections::VecDeque;

/// Distance label for unreachable vertices.
pub const UNREACHED: u32 = u32::MAX;

/// BFS distances from `source`; `UNREACHED` where disconnected.
pub fn bfs_levels(g: &CsrGraph, source: u32) -> Vec<u32> {
    let mut dist = vec![UNREACHED; g.vertex_count()];
    if (source as usize) >= g.vertex_count() {
        return dist;
    }
    dist[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let d = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = d + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Summary of one BFS run (Graph500-style reporting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BfsStats {
    /// Vertices reached (including the source).
    pub reached: usize,
    /// Eccentricity of the source within its component.
    pub max_depth: u32,
    /// Mean distance over reached vertices (excluding the source).
    pub mean_depth: f64,
}

/// Run BFS and summarize.
pub fn bfs_stats(g: &CsrGraph, source: u32) -> BfsStats {
    let dist = bfs_levels(g, source);
    let reached: Vec<u32> = dist.iter().copied().filter(|&d| d != UNREACHED).collect();
    let max_depth = reached.iter().copied().max().unwrap_or(0);
    let nonzero: Vec<u32> = reached.iter().copied().filter(|&d| d > 0).collect();
    let mean_depth = if nonzero.is_empty() {
        0.0
    } else {
        nonzero.iter().map(|&d| d as f64).sum::<f64>() / nonzero.len() as f64
    };
    BfsStats { reached: reached.len(), max_depth, mean_depth }
}

/// Weakly-connected components via repeated BFS; returns per-vertex
/// component labels and the number of components.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    let n = g.vertex_count();
    let mut label = vec![UNREACHED; n];
    let mut components = 0;
    for start in 0..n as u32 {
        if label[start as usize] != UNREACHED {
            continue;
        }
        let id = components as u32;
        components += 1;
        label[start as usize] = id;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if label[v as usize] == UNREACHED {
                    label[v as usize] = id;
                    queue.push_back(v);
                }
            }
        }
    }
    (label, components)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_on_a_path() {
        let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_levels(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn unreachable_vertices_are_marked() {
        let g = CsrGraph::from_edges(4, [(0, 1)]);
        let d = bfs_levels(&g, 0);
        assert_eq!(d[2], UNREACHED);
        assert_eq!(d[3], UNREACHED);
    }

    #[test]
    fn stats_summarize_the_component() {
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3)]);
        let s = bfs_stats(&g, 0);
        assert_eq!(s.reached, 4);
        assert_eq!(s.max_depth, 3);
        assert!((s.mean_depth - 2.0).abs() < 1e-9);
    }

    #[test]
    fn components_partition_the_graph() {
        let g = CsrGraph::from_edges(7, [(0, 1), (1, 2), (3, 4), (5, 6)]);
        let (label, n) = connected_components(&g);
        assert_eq!(n, 3);
        assert_eq!(label[0], label[2]);
        assert_eq!(label[3], label[4]);
        assert_ne!(label[0], label[3]);
        assert_ne!(label[3], label[5]);
    }

    #[test]
    fn generated_graph_has_one_dominant_component() {
        // §2: "The dataset forms a graph that is a fully connected component
        // of persons" — our block-windowed generator approximates this: the
        // largest component should dominate.
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(600).activity(0.2))
                .unwrap();
        let g = CsrGraph::from_dataset(&ds);
        let (label, n) = connected_components(&g);
        let mut sizes = vec![0usize; n];
        for &l in &label {
            sizes[l as usize] += 1;
        }
        let largest = *sizes.iter().max().unwrap();
        assert!(
            largest as f64 > 0.85 * g.vertex_count() as f64,
            "largest component covers only {largest}/{}",
            g.vertex_count()
        );
    }
}
