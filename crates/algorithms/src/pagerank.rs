//! PageRank by power iteration.
//!
//! One of the four algorithms the paper plans for SNB-Algorithms (§1):
//! "PageRank, Community Detection, Clustering and Breadth First Search".
//! Standard damped formulation on the undirected `knows` graph (each
//! undirected edge acts as two directed ones); isolated vertices distribute
//! their rank uniformly (the dangling-mass correction).

use crate::graph::CsrGraph;

/// PageRank configuration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (probability of following an edge).
    pub damping: f64,
    /// Maximum iterations.
    pub max_iterations: usize,
    /// L1 convergence threshold.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig { damping: 0.85, max_iterations: 100, tolerance: 1e-9 }
    }
}

/// Result of a PageRank run.
#[derive(Debug, Clone)]
pub struct PageRank {
    /// Per-vertex scores, summing to 1.
    pub scores: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final L1 delta.
    pub delta: f64,
}

/// Run PageRank on `g`.
pub fn pagerank(g: &CsrGraph, config: &PageRankConfig) -> PageRank {
    let n = g.vertex_count();
    if n == 0 {
        return PageRank { scores: Vec::new(), iterations: 0, delta: 0.0 };
    }
    let uniform = 1.0 / n as f64;
    let mut scores = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    let mut iterations = 0;
    let mut delta = f64::INFINITY;

    while iterations < config.max_iterations && delta > config.tolerance {
        // Dangling mass: vertices without edges spread uniformly.
        let dangling: f64 =
            (0..n as u32).filter(|&v| g.degree(v) == 0).map(|v| scores[v as usize]).sum();
        let base = (1.0 - config.damping) * uniform + config.damping * dangling * uniform;
        next.iter_mut().for_each(|x| *x = base);
        for v in 0..n as u32 {
            let d = g.degree(v);
            if d == 0 {
                continue;
            }
            let share = config.damping * scores[v as usize] / d as f64;
            for &u in g.neighbors(v) {
                next[u as usize] += share;
            }
        }
        delta = scores.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut scores, &mut next);
        iterations += 1;
    }
    PageRank { scores, iterations, delta }
}

/// Top-`k` vertices by score, descending (vertex id tie-break ascending).
pub fn top_k(pr: &PageRank, k: usize) -> Vec<(u32, f64)> {
    let mut ranked: Vec<(u32, f64)> =
        pr.scores.iter().enumerate().map(|(v, &s)| (v as u32, s)).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_sum_to_one() {
        let g = CsrGraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4)]);
        let pr = pagerank(&g, &PageRankConfig::default());
        let total: f64 = pr.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        assert!(pr.delta <= 1e-9 || pr.iterations == 100);
    }

    #[test]
    fn symmetric_graph_gives_equal_scores() {
        // A cycle: all vertices equivalent.
        let g = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let pr = pagerank(&g, &PageRankConfig::default());
        for w in pr.scores.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn hub_outranks_spokes() {
        // Star: center 0 with 5 spokes.
        let g = CsrGraph::from_edges(6, (1..6).map(|i| (0u32, i as u32)));
        let pr = pagerank(&g, &PageRankConfig::default());
        for spoke in 1..6 {
            assert!(pr.scores[0] > pr.scores[spoke]);
        }
        let top = top_k(&pr, 1);
        assert_eq!(top[0].0, 0);
    }

    #[test]
    fn isolated_vertices_keep_base_rank() {
        let g = CsrGraph::from_edges(3, [(0, 1)]);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert!(pr.scores[2] > 0.0, "dangling vertex must retain rank");
        let total: f64 = pr.scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pagerank_correlates_with_degree_on_generated_graph() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(400).activity(0.2))
                .unwrap();
        let g = CsrGraph::from_dataset(&ds);
        let pr = pagerank(&g, &PageRankConfig::default());
        let top = top_k(&pr, 10);
        let mean_degree = (0..g.vertex_count() as u32).map(|v| g.degree(v)).sum::<usize>() as f64
            / g.vertex_count() as f64;
        for (v, _) in top {
            assert!(
                g.degree(v) as f64 > mean_degree,
                "top-ranked vertex {v} has below-average degree"
            );
        }
    }
}
