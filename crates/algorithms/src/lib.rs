//! # snb-algorithms
//!
//! The SNB-Algorithms workload the paper announces alongside Interactive
//! and BI (§1): "a handful of often-used graph analysis algorithms,
//! including PageRank, Community Detection, Clustering and Breadth First
//! Search", running on the same generated dataset so that the generator's
//! structural realism (communities, clustering, power-law degrees) produces
//! "sensible" analytical results.
//!
//! Algorithms operate on an immutable CSR extraction of the `knows` graph
//! ([`graph::CsrGraph`]); they are the read-only, scan-everything
//! counterpart to the Interactive workload's point traversals.

pub mod bfs;
pub mod clustering;
pub mod community;
pub mod graph;
pub mod pagerank;

pub use bfs::{bfs_levels, bfs_stats, connected_components, BfsStats};
pub use clustering::{average_clustering, local_clustering, triangle_count};
pub use community::{label_propagation, louvain_communities, modularity, Communities};
pub use graph::CsrGraph;
pub use pagerank::{pagerank, top_k, PageRank, PageRankConfig};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_workload_runs_on_one_dataset() {
        // The paper's point: all workloads share one dataset. Run every
        // algorithm over the same generated graph.
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(300).activity(0.2))
                .unwrap();
        let g = CsrGraph::from_dataset(&ds);
        let pr = pagerank(&g, &PageRankConfig::default());
        assert_eq!(pr.scores.len(), 300);
        let stats = bfs_stats(&g, top_k(&pr, 1)[0].0);
        assert!(stats.reached > 1);
        let communities = label_propagation(&g, 20);
        assert!(communities.count >= 1);
        let cc = average_clustering(&g);
        assert!((0.0..=1.0).contains(&cc));
    }
}
