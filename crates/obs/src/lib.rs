//! Observability primitives for the SNB interactive workload.
//!
//! The interactive benchmark's headline metric — the acceleration factor a
//! system sustains — is only meaningful next to *how* it was achieved: query
//! latency distributions, scheduler wait breakdowns, and store-level work
//! counters (the paper's "full disclosure" reports). This crate provides the
//! shared building blocks all layers record into:
//!
//! - [`LatencyHistogram`]: fixed-bucket log-linear histogram with atomic
//!   buckets. Recording is a handful of relaxed atomic adds — no allocation,
//!   no locks — so it can sit on the driver's hot path. Streaming quantiles
//!   (p50/p95/p99), exact mean/max, and lossless merging.
//! - [`EpochSeries`]: wall-clock bucketed histograms so steady-state is
//!   judged on *time order*, independent of which worker thread's samples
//!   merged first.
//! - [`Counters`] / [`Counter`]: a registry of named atomic counters with
//!   `#[inline]` increments, snapshotted in sorted name order. Names follow
//!   `layer.subsystem.metric` (e.g. `store.mvcc.versions_walked`).
//!   [`Gauge`] is the decrementable sibling for level quantities (open
//!   connections, pipeline depth) that rise and fall.
//! - [`QueryProfile`]: per-operator tick counts (rows scanned, index probes,
//!   neighbors expanded, versions walked, result rows) threaded to query
//!   implementations through a thread-local scope so deep helpers tick it
//!   without signature churn.
//! - [`Json`]: a tiny dependency-free JSON document builder backing the
//!   machine-readable full-disclosure export.
//! - [`trace`]: causal span tracing — lock-free per-thread span rings with
//!   a scoped [`span!`] API, remote-capture stitching for networked runs,
//!   and Chrome `trace_event` export. One relaxed load when disabled.

mod counters;
mod epoch;
mod hist;
mod json;
mod profile;
pub mod trace;

pub use counters::{Counter, Counters, Gauge};
pub use epoch::EpochSeries;
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use json::Json;
pub use profile::{
    current_profile, tick_index_probes, tick_neighbors_expanded, tick_result_rows,
    tick_rows_scanned, tick_scratch_reuses, tick_versions_walked, ProfileGuard, ProfileSnapshot,
    QueryProfile,
};
