//! Causal span tracing: lock-free per-thread span rings, scoped guards,
//! and Chrome `trace_event` export.
//!
//! Counters and histograms say *that* writers convoy; they cannot say
//! *where an individual operation's time went*. This module records causal
//! spans — named begin/end intervals with parent links — cheaply enough to
//! leave compiled into every tier:
//!
//! - **Disabled cost is one relaxed atomic load.** [`span`] and
//!   [`record_stage`] check a global activity gate before touching
//!   thread-local state; with tracing off the guard is a no-op.
//! - **Recording is lock-free and allocation-free.** Each thread owns a
//!   fixed-capacity ring of seqlock slots; the owning thread writes, the
//!   exporter reads concurrently and discards torn slots. Span names are
//!   interned once per call site (a `OnceLock<u32>` in a [`NameId`]
//!   static), so the hot path stores a `u32`, not a string.
//! - **Parent links come from a thread-local scope**, mirroring
//!   [`crate::QueryProfile`]'s guard idiom: the innermost live [`SpanGuard`]
//!   is the parent of any span begun under it, and [`record_stage`] lets
//!   instrumented stages attach retroactive child spans from timestamps
//!   they already took for histograms.
//! - **A sampling knob** ([`enable`]) keeps 1-in-N *root* spans; children
//!   follow their root's decision so sampled traces stay causally complete.
//! - **Remote stitching**: a server adopts a client's `(trace id, parent
//!   span id)` with [`start_capture`], records the request's spans into a
//!   side buffer, and returns them with [`take_capture`]; the client
//!   re-anchors their clock and files them with [`record_foreign`], so one
//!   exported trace shows client queue → wire → server execution.
//!
//! [`export_chrome_trace`] renders everything as a Chrome `trace_event`
//! JSON document (load in `chrome://tracing` or Perfetto).

use crate::json::Json;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Spans retained per thread; older spans are overwritten (export keeps
/// the most recent window, which is what post-run analysis wants).
const RING_SLOTS: usize = 1 << 13;

/// Count of reasons tracing might be live anywhere (local [`enable`] plus
/// one per in-flight capture). Zero ⇒ every tracing entry point is a
/// single relaxed load and an early return.
static ACTIVE: AtomicU32 = AtomicU32::new(0);
/// Whether [`enable`] turned on process-local recording (vs. only a
/// server-side capture being live).
static LOCAL: AtomicBool = AtomicBool::new(false);
/// Keep 1-in-`SAMPLE` root spans (children follow their root).
static SAMPLE: AtomicU64 = AtomicU64::new(1);
/// Span/trace id allocator; 0 is reserved for "no span".
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// Shared monotonic timebase: nanoseconds since the first tracing call in
/// this process. One clock for every thread, so spans interleave
/// correctly. Instrumented stages take nanosecond boundaries so their
/// histogram sums don't systematically undercount sub-microsecond stages
/// (see [`nanos_to_micros`]).
pub fn now_nanos() -> u64 {
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH.get_or_init(std::time::Instant::now).elapsed().as_nanos() as u64
}

/// Microseconds on the [`now_nanos`] clock (truncating — a monotone
/// mapping, so span nesting survives the conversion).
pub fn now_micros() -> u64 {
    now_nanos() / 1_000
}

/// True when any tracing sink is live (cheapest possible check; callers
/// use it to skip taking timestamps for optional spans).
#[inline]
pub fn tracing_possible() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

// ---- name interning ----

struct NameTable {
    names: Vec<&'static str>,
    index: BTreeMap<&'static str, u32>,
}

fn name_table() -> &'static Mutex<NameTable> {
    static TABLE: OnceLock<Mutex<NameTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(NameTable { names: Vec::new(), index: BTreeMap::new() }))
}

fn intern(name: &'static str) -> u32 {
    let mut t = name_table().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = t.index.get(name) {
        return id;
    }
    let id = t.names.len() as u32;
    t.names.push(name);
    t.index.insert(name, id);
    id
}

fn name_of(id: u32) -> &'static str {
    let t = name_table().lock().unwrap_or_else(|e| e.into_inner());
    t.names.get(id as usize).copied().unwrap_or("?")
}

/// A span name interned once per call site. Declare as a `static` (the
/// [`crate::span!`] macro does) so the interner lock is taken at most once
/// per site, never on the hot path.
pub struct NameId {
    name: &'static str,
    id: OnceLock<u32>,
}

impl NameId {
    pub const fn new(name: &'static str) -> NameId {
        NameId { name, id: OnceLock::new() }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    fn get(&self) -> u32 {
        *self.id.get_or_init(|| intern(self.name))
    }
}

/// Open a scoped span named by a `static` literal:
/// `let _s = snb_obs::span!("store.wal.append");`
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __SPAN_NAME: $crate::trace::NameId = $crate::trace::NameId::new($name);
        $crate::trace::span(&__SPAN_NAME)
    }};
}

// ---- per-thread span rings ----

/// Words per record: span id, parent id, trace id, start µs, duration µs,
/// `name_idx << 32 | tid`.
const WORDS: usize = 6;

/// One seqlock-protected record slot. Only the owning thread writes;
/// concurrent exporters read and discard torn slots (odd or changed
/// sequence). `seq == 0` means never written.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn store(&self, rec: &[u64; WORDS]) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed); // odd: write in progress
        fence(Ordering::Release);
        for (w, v) in self.words.iter().zip(rec) {
            w.store(*v, Ordering::Relaxed);
        }
        fence(Ordering::Release);
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    fn load(&self) -> Option<[u64; WORDS]> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None;
        }
        let mut out = [0u64; WORDS];
        for (o, w) in out.iter_mut().zip(self.words.iter()) {
            *o = w.load(Ordering::Relaxed);
        }
        fence(Ordering::Acquire);
        (self.seq.load(Ordering::Relaxed) == s1).then_some(out)
    }
}

struct Ring {
    tid: u32,
    /// Next write position (monotonic; slot = head % RING_SLOTS). Published
    /// with release so an exporter's acquire load sees completed slots.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    fn push(&self, rec: &[u64; WORDS]) {
        let head = self.head.load(Ordering::Relaxed);
        self.slots[(head % RING_SLOTS as u64) as usize].store(rec);
        self.head.store(head + 1, Ordering::Release);
    }
}

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Server-returned spans filed by [`record_foreign`], exported under their
/// own process lane.
fn foreign() -> &'static Mutex<Vec<SpanData>> {
    static FOREIGN: OnceLock<Mutex<Vec<SpanData>>> = OnceLock::new();
    FOREIGN.get_or_init(|| Mutex::new(Vec::new()))
}

// ---- thread-local tracing scope ----

struct TraceTls {
    ring: Option<Arc<Ring>>,
    /// Innermost live span: `(trace id, span id)`; `(0, 0)` = none.
    current: (u64, u64),
    /// Depth of spans suppressed by the sampling decision at their root.
    suppress: u32,
    /// Root spans begun on this thread, for the 1-in-N sampler.
    roots_seen: u64,
    /// Capture sink installed by [`start_capture`] (server side).
    capture: Option<Vec<SpanData>>,
}

thread_local! {
    static TLS: RefCell<TraceTls> = const {
        RefCell::new(TraceTls {
            ring: None,
            current: (0, 0),
            suppress: 0,
            roots_seen: 0,
            capture: None,
        })
    };
}

fn sink_record(tls: &mut TraceTls, data: [u64; WORDS]) {
    if let Some(cap) = &mut tls.capture {
        cap.push(SpanData::from_words(&data, "server"));
        return;
    }
    let ring = tls.ring.get_or_insert_with(|| {
        let mut all = rings().lock().unwrap_or_else(|e| e.into_inner());
        let ring = Arc::new(Ring {
            tid: all.len() as u32 + 1,
            head: AtomicU64::new(0),
            slots: (0..RING_SLOTS)
                .map(|_| Slot { seq: AtomicU64::new(0), words: Default::default() })
                .collect(),
        });
        all.push(Arc::clone(&ring));
        ring
    });
    let mut rec = data;
    rec[5] |= ring.tid as u64; // low 32 bits carry the thread lane
    ring.push(&rec);
}

// ---- public recording API ----

/// Scoped span handle; ends (and records) the span on drop. Obtain via
/// [`span`] or the [`crate::span!`] macro.
#[must_use = "dropping the guard immediately ends the span"]
pub struct SpanGuard {
    kind: GuardKind,
}

enum GuardKind {
    /// Tracing was off at creation; drop does nothing.
    Inactive,
    /// Root was sampled out; drop pops one suppression level.
    Suppressed,
    Active {
        name: u32,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        start_us: u64,
        prev: (u64, u64),
    },
}

impl SpanGuard {
    /// This span's id (0 when the guard is inactive/suppressed).
    pub fn span_id(&self) -> u64 {
        match self.kind {
            GuardKind::Active { span_id, .. } => span_id,
            _ => 0,
        }
    }

    /// The trace this span belongs to (0 when inactive/suppressed).
    pub fn trace_id(&self) -> u64 {
        match self.kind {
            GuardKind::Active { trace_id, .. } => trace_id,
            _ => 0,
        }
    }

    /// Begin timestamp on the [`now_micros`] clock (0 when inactive).
    pub fn start_us(&self) -> u64 {
        match self.kind {
            GuardKind::Active { start_us, .. } => start_us,
            _ => 0,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        match self.kind {
            GuardKind::Inactive => {}
            GuardKind::Suppressed => TLS.with(|tls| {
                let mut tls = tls.borrow_mut();
                tls.suppress = tls.suppress.saturating_sub(1);
            }),
            GuardKind::Active { name, trace_id, span_id, parent_id, start_us, prev } => {
                let end = now_micros();
                TLS.with(|tls| {
                    let mut tls = tls.borrow_mut();
                    tls.current = prev;
                    sink_record(
                        &mut tls,
                        make_words(name, trace_id, span_id, parent_id, start_us, end),
                    );
                });
            }
        }
    }
}

fn make_words(
    name: u32,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    start_us: u64,
    end_us: u64,
) -> [u64; WORDS] {
    [span_id, parent_id, trace_id, start_us, end_us.saturating_sub(start_us), (name as u64) << 32]
}

/// Begin a span. With tracing fully off this is one relaxed load and a
/// trivially constructed guard. A span begun with no live parent is a
/// *root*: it allocates a fresh trace id and is subject to the sampling
/// knob; spans begun under it inherit its trace and record unconditionally.
#[inline]
pub fn span(name: &NameId) -> SpanGuard {
    if !tracing_possible() {
        return SpanGuard { kind: GuardKind::Inactive };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &NameId) -> SpanGuard {
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        if tls.suppress > 0 {
            tls.suppress += 1;
            return SpanGuard { kind: GuardKind::Suppressed };
        }
        if tls.capture.is_none() && !LOCAL.load(Ordering::Relaxed) {
            // Some other thread's capture flipped the global gate; this
            // thread has no sink.
            return SpanGuard { kind: GuardKind::Inactive };
        }
        let (trace_id, parent_id) = tls.current;
        let (trace_id, parent_id) = if trace_id == 0 {
            // Root span: apply the sampler (captures record everything —
            // the client already made the sampling decision).
            if tls.capture.is_none() {
                tls.roots_seen += 1;
                let every = SAMPLE.load(Ordering::Relaxed).max(1);
                if (tls.roots_seen - 1) % every != 0 {
                    tls.suppress = 1;
                    return SpanGuard { kind: GuardKind::Suppressed };
                }
            }
            (0, 0)
        } else {
            (trace_id, parent_id)
        };
        let span_id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let trace_id = if trace_id == 0 { span_id } else { trace_id };
        let prev = tls.current;
        tls.current = (trace_id, span_id);
        SpanGuard {
            kind: GuardKind::Active {
                name: name.get(),
                trace_id,
                span_id,
                parent_id,
                start_us: now_micros(),
                prev,
            },
        }
    })
}

/// Record a completed stage `[start_us, end_us]` as a child of the
/// innermost live span. This is how instrumented pipelines (the store's
/// write stages) turn timestamps they already took for histograms into
/// spans without nesting guards through their control flow. No live
/// span, suppressed root, or tracing off ⇒ no-op.
#[inline]
pub fn record_stage(name: &NameId, start_us: u64, end_us: u64) {
    if !tracing_possible() {
        return;
    }
    record_stage_slow(name, start_us, end_us);
}

#[cold]
fn record_stage_slow(name: &NameId, start_us: u64, end_us: u64) {
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        if tls.suppress > 0 || tls.current.1 == 0 {
            return;
        }
        if tls.capture.is_none() && !LOCAL.load(Ordering::Relaxed) {
            return;
        }
        let (trace_id, parent_id) = tls.current;
        let span_id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        sink_record(
            &mut tls,
            make_words(name.get(), trace_id, span_id, parent_id, start_us, end_us),
        );
    });
}

/// `(trace id, span id)` of the innermost live span on this thread — the
/// context a client propagates across the wire. `None` when tracing is
/// off, the root was sampled out, or no span is open.
#[inline]
pub fn current_context() -> Option<(u64, u64)> {
    if !tracing_possible() {
        return None;
    }
    TLS.with(|tls| {
        let tls = tls.borrow();
        (tls.suppress == 0 && tls.current.1 != 0).then_some(tls.current)
    })
}

// ---- enable / disable ----

/// Turn on process-local recording, keeping 1-in-`sample_every` root spans
/// (children always follow their root). Idempotent; `sample_every` is
/// clamped to ≥ 1 and may be changed by calling again.
pub fn enable(sample_every: u64) {
    SAMPLE.store(sample_every.max(1), Ordering::Relaxed);
    if !LOCAL.swap(true, Ordering::Relaxed) {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
    }
}

/// Turn process-local recording back off (captures in flight elsewhere
/// stay live). Already-recorded spans remain exportable.
pub fn disable() {
    if LOCAL.swap(false, Ordering::Relaxed) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

// ---- remote capture (server side) ----

/// Adopt a remote trace context on this thread: until [`take_capture`],
/// spans recorded here append to a side buffer (rather than the thread
/// ring) with the given trace id, and the first span opened becomes a
/// child of `parent_span`. Capture ignores the sampling knob — the remote
/// client already sampled. One capture per thread at a time; a second
/// `start_capture` replaces the first.
pub fn start_capture(trace_id: u64, parent_span: u64) {
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        if tls.capture.is_none() {
            ACTIVE.fetch_add(1, Ordering::Relaxed);
        }
        tls.capture = Some(Vec::new());
        tls.current = (trace_id.max(1), parent_span);
        tls.suppress = 0;
    });
}

/// End this thread's capture and return its spans (empty without a prior
/// [`start_capture`]).
pub fn take_capture() -> Vec<SpanData> {
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        match tls.capture.take() {
            Some(spans) => {
                ACTIVE.fetch_sub(1, Ordering::Relaxed);
                tls.current = (0, 0);
                spans
            }
            None => Vec::new(),
        }
    })
}

// ---- export ----

/// One completed span, resolved for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanData {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_id: u64,
    pub name: String,
    /// Begin time on the exporting process's [`now_micros`] clock.
    pub start_us: u64,
    pub dur_us: u64,
    /// Thread lane (ring id locally; the remote's lane for foreign spans).
    pub tid: u32,
    /// Process lane for the Chrome export: `"driver"` or `"server"`.
    pub process: &'static str,
}

impl SpanData {
    fn from_words(w: &[u64; WORDS], process: &'static str) -> SpanData {
        SpanData {
            span_id: w[0],
            parent_id: w[1],
            trace_id: w[2],
            start_us: w[3],
            dur_us: w[4],
            name: name_of((w[5] >> 32) as u32).to_string(),
            tid: (w[5] & 0xffff_ffff) as u32,
            process,
        }
    }
}

/// File spans that were recorded by another process (a traced server's
/// piggybacked response), already re-anchored to this process's clock.
pub fn record_foreign(spans: impl IntoIterator<Item = SpanData>) {
    record_foreign_rooted(spans.into_iter().collect(), 0);
}

/// File a foreign batch and graft its root onto a local span.
///
/// The remote allocated its span ids independently, so every id is
/// remapped into this process's allocator space and in-batch parent links
/// follow the remap. Parent ids that name spans *outside* the batch live
/// in a different id space and cannot be resolved here — which is why the
/// batch root must carry the sentinel `parent_id == 0` (what
/// [`start_capture`] produces when given parent 0): after remapping, every
/// sentinel parent is rewritten to `root_parent`. Passing a real remote
/// parent id instead is unsound — if it collided with another remote id in
/// the batch, the remap would silently rewire the root to a sibling.
pub fn record_foreign_rooted(mut spans: Vec<SpanData>, root_parent: u64) {
    let remap: BTreeMap<u64, u64> =
        spans.iter().map(|s| (s.span_id, NEXT_SPAN.fetch_add(1, Ordering::Relaxed))).collect();
    for s in &mut spans {
        s.span_id = remap[&s.span_id];
        if s.parent_id == 0 {
            s.parent_id = root_parent;
        } else if let Some(&p) = remap.get(&s.parent_id) {
            s.parent_id = p;
        }
    }
    foreign().lock().unwrap_or_else(|e| e.into_inner()).extend(spans);
}

/// Snapshot every recorded span — all thread rings plus foreign spans —
/// sorted by start time. Non-destructive; slots being overwritten
/// mid-read are skipped rather than exported torn.
pub fn drain() -> Vec<SpanData> {
    let mut out = Vec::new();
    for ring in rings().lock().unwrap_or_else(|e| e.into_inner()).iter() {
        let head = ring.head.load(Ordering::Acquire);
        let first = head.saturating_sub(RING_SLOTS as u64);
        for i in first..head {
            if let Some(words) = ring.slots[(i % RING_SLOTS as u64) as usize].load() {
                out.push(SpanData::from_words(&words, "driver"));
            }
        }
    }
    out.extend(foreign().lock().unwrap_or_else(|e| e.into_inner()).iter().cloned());
    out.sort_by_key(|s| (s.start_us, s.span_id));
    out
}

/// Render spans as a Chrome `trace_event` document (complete `"X"` events
/// plus process-name metadata; open in `chrome://tracing` or Perfetto).
/// Span/trace/parent ids ride in `args` so tools and the CI validator can
/// check causal nesting.
pub fn export_chrome_trace(spans: &[SpanData]) -> Json {
    let pid = |process: &str| if process == "server" { 2u64 } else { 1u64 };
    let mut events: Vec<Json> = Vec::with_capacity(spans.len() + 2);
    let mut seen_proc = [false; 2];
    for s in spans {
        seen_proc[(pid(s.process) - 1) as usize] = true;
    }
    for (i, name) in ["driver", "server"].iter().enumerate() {
        if seen_proc[i] {
            events.push(Json::obj([
                ("name", Json::from("process_name")),
                ("ph", Json::from("M")),
                ("pid", Json::from(i as u64 + 1)),
                ("tid", Json::from(0u64)),
                ("args", Json::obj([("name", Json::from(*name))])),
            ]));
        }
    }
    for s in spans {
        events.push(Json::obj([
            ("name", Json::from(s.name.as_str())),
            ("cat", Json::from("snb")),
            ("ph", Json::from("X")),
            ("ts", Json::from(s.start_us)),
            ("dur", Json::from(s.dur_us)),
            ("pid", Json::from(pid(s.process))),
            ("tid", Json::from(s.tid as u64)),
            (
                "args",
                Json::obj([
                    ("trace_id", Json::from(s.trace_id)),
                    ("span_id", Json::from(s.span_id)),
                    ("parent_id", Json::from(s.parent_id)),
                ]),
            ),
        ]));
    }
    Json::obj([("displayTimeUnit", Json::from("ms")), ("traceEvents", Json::Arr(events))])
}

/// Check causal nesting: every span whose parent is present must lie
/// within its parent's `[start, end]` interval (ring overwrite can evict a
/// parent; such orphans are skipped, not errors). Parent lookup is scoped
/// by trace id — span ids from different traces never pair up. Returns the
/// number of verified child→parent links.
pub fn validate_nesting(spans: &[SpanData]) -> Result<usize, String> {
    let by_id: BTreeMap<(u64, u64), &SpanData> =
        spans.iter().map(|s| ((s.trace_id, s.span_id), s)).collect();
    let mut checked = 0;
    for s in spans {
        if s.parent_id == 0 {
            continue;
        }
        let Some(parent) = by_id.get(&(s.trace_id, s.parent_id)) else { continue };
        let (ps, pe) = (parent.start_us, parent.start_us + parent.dur_us);
        let (cs, ce) = (s.start_us, s.start_us + s.dur_us);
        if cs < ps || ce > pe {
            return Err(format!(
                "span {} '{}' [{cs}, {ce}] escapes parent {} '{}' [{ps}, {pe}]",
                s.span_id, s.name, parent.span_id, parent.name
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share process-global tracing state; serialize them and filter
    /// drained spans by the trace ids each test created.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    static ROOT: NameId = NameId::new("test.root");
    static CHILD: NameId = NameId::new("test.child");
    static STAGE: NameId = NameId::new("test.stage");

    fn spans_of(trace_ids: &[u64]) -> Vec<SpanData> {
        drain().into_iter().filter(|s| trace_ids.contains(&s.trace_id)).collect()
    }

    #[test]
    fn disabled_records_nothing_and_reports_no_context() {
        let _l = locked();
        disable();
        assert!(current_context().is_none());
        let g = span(&ROOT);
        assert_eq!(g.span_id(), 0);
        record_stage(&STAGE, 1, 2);
        drop(g);
        // No panic, no context — the disabled path never touches TLS.
        assert!(current_context().is_none());
    }

    #[test]
    fn spans_nest_and_record_parent_links() {
        let _l = locked();
        enable(1);
        let trace;
        {
            let root = span(&ROOT);
            trace = root.trace_id();
            assert_eq!(current_context(), Some((trace, root.span_id())));
            {
                let child = span(&CHILD);
                assert_eq!(child.trace_id(), trace);
                record_stage(&STAGE, child.start_us(), now_micros());
            }
            assert_eq!(current_context(), Some((trace, root.span_id())));
        }
        assert!(current_context().is_none());
        disable();

        let spans = spans_of(&[trace]);
        assert_eq!(spans.len(), 3, "root + child + stage: {spans:#?}");
        let root = spans.iter().find(|s| s.name == "test.root").unwrap();
        let child = spans.iter().find(|s| s.name == "test.child").unwrap();
        let stage = spans.iter().find(|s| s.name == "test.stage").unwrap();
        assert_eq!(root.parent_id, 0);
        assert_eq!(child.parent_id, root.span_id);
        assert_eq!(stage.parent_id, child.span_id);
        assert_eq!(validate_nesting(&spans), Ok(2));
    }

    #[test]
    fn sampler_keeps_one_in_n_roots_with_children_following() {
        let _l = locked();
        enable(4);
        let mut traces = Vec::new();
        for _ in 0..16 {
            let root = span(&ROOT);
            let _child = span(&CHILD);
            if root.span_id() != 0 {
                traces.push(root.trace_id());
            }
        }
        disable();
        enable(1); // restore default for other tests
        disable();
        assert_eq!(traces.len(), 4, "1-in-4 sampling over 16 roots");
        let spans = spans_of(&traces);
        // Every kept root kept its child too.
        assert_eq!(spans.iter().filter(|s| s.name == "test.root").count(), 4);
        assert_eq!(spans.iter().filter(|s| s.name == "test.child").count(), 4);
    }

    #[test]
    fn capture_adopts_remote_context_and_bypasses_local_state() {
        let _l = locked();
        // No local enable: only the capture is live.
        start_capture(777, 42);
        {
            let root = span(&ROOT);
            assert_eq!(root.trace_id(), 777);
            let _child = span(&CHILD);
        }
        let captured = take_capture();
        assert!(current_context().is_none());
        assert_eq!(captured.len(), 2);
        let root = captured.iter().find(|s| s.name == "test.root").unwrap();
        assert_eq!(root.trace_id, 777);
        assert_eq!(root.parent_id, 42, "capture root links to the remote parent span");
        assert_eq!(root.process, "server");
        assert!(!tracing_possible(), "capture end must release the global gate");
        // Nothing leaked into the local rings.
        assert!(spans_of(&[777]).is_empty());
    }

    #[test]
    fn concurrent_and_serial_recording_agree_under_the_ring_sampler() {
        let _l = locked();
        const THREADS: usize = 4;
        const PER_THREAD: usize = 50;
        enable(1);
        // Serial baseline on this thread.
        let mut serial_traces = Vec::new();
        for _ in 0..PER_THREAD {
            let root = span(&ROOT);
            let _c = span(&CHILD);
            serial_traces.push(root.trace_id());
        }
        // Concurrent: THREADS threads record the same shape into their own
        // rings; nothing is lost and every parent link survives.
        let concurrent: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    for _ in 0..PER_THREAD {
                        let root = span(&ROOT);
                        let _c = span(&CHILD);
                        mine.push(root.trace_id());
                    }
                    concurrent.lock().unwrap().extend(mine);
                });
            }
        });
        disable();
        let concurrent = concurrent.into_inner().unwrap();

        let serial = spans_of(&serial_traces);
        let parallel = spans_of(&concurrent);
        assert_eq!(serial.len(), PER_THREAD * 2);
        assert_eq!(parallel.len(), THREADS * PER_THREAD * 2, "concurrent recording lost spans");
        for spans in [&serial, &parallel] {
            let roots = spans.iter().filter(|s| s.name == "test.root").count();
            let children = spans.iter().filter(|s| s.name == "test.child").count();
            assert_eq!(roots, children, "every root kept exactly one child");
            validate_nesting(spans).expect("all links nest");
        }
        // Per-trace shape identical between the two modes.
        for t in &concurrent {
            assert_eq!(parallel.iter().filter(|s| s.trace_id == *t).count(), 2);
        }
    }

    #[test]
    fn chrome_export_is_well_formed() {
        let _l = locked();
        enable(1);
        let trace;
        {
            let root = span(&ROOT);
            trace = root.trace_id();
            let _child = span(&CHILD);
        }
        disable();
        record_foreign([SpanData {
            trace_id: trace,
            span_id: u64::MAX - 1,
            parent_id: 0,
            name: "server.execute".into(),
            start_us: 1,
            dur_us: 1,
            tid: 9,
            process: "server",
        }]);
        let spans = spans_of(&[trace]);
        let doc = export_chrome_trace(&spans);
        let text = doc.render();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"process_name\""));
        assert!(text.contains("\"server\""), "foreign span must add the server process lane");
        assert!(text.contains("\"parent_id\""));
    }

    #[test]
    #[ignore = "micro-benchmark: cargo test -p snb-obs --release -- --ignored --nocapture"]
    fn disabled_span_cost_is_one_relaxed_load() {
        let _l = locked();
        disable();
        const N: u64 = 50_000_000;
        let start = std::time::Instant::now();
        for _ in 0..N {
            let _g = span(&ROOT);
        }
        let total = start.elapsed().as_nanos() as u64;
        println!("disabled span(): {:.2} ns/call over {N} calls", total as f64 / N as f64);
    }

    #[test]
    fn foreign_remap_survives_cross_process_id_collisions() {
        let _l = locked();
        enable(1);
        let (trace, wire_id, wire_start);
        {
            let wire = span(&ROOT);
            trace = wire.trace_id();
            wire_id = wire.span_id();
            wire_start = wire.start_us();
        }
        disable();
        // A remote batch allocated ids from its own counter, and one of
        // them happens to equal the local wire span's id — the exact
        // collision a two-process loopback run produces. The root carries
        // sentinel parent 0 and is recorded last (capture order).
        let mk = |span_id, parent_id, name: &str| SpanData {
            trace_id: trace,
            span_id,
            parent_id,
            name: name.into(),
            start_us: wire_start,
            dur_us: 0,
            tid: 7,
            process: "server",
        };
        record_foreign_rooted(
            vec![mk(wire_id, 9, "server.child"), mk(9, 0, "server.execute")],
            wire_id,
        );
        let spans = spans_of(&[trace]);
        assert_eq!(spans.len(), 3, "{spans:#?}");
        let execute = spans.iter().find(|s| s.name == "server.execute").unwrap();
        let child = spans.iter().find(|s| s.name == "server.child").unwrap();
        // The root grafts onto the wire span — not onto whichever remapped
        // sibling inherited a colliding id — and in-batch links follow the
        // remap into fresh, locally unique ids.
        assert_eq!(execute.parent_id, wire_id);
        assert_eq!(child.parent_id, execute.span_id);
        assert_ne!(execute.span_id, wire_id);
        assert_ne!(child.span_id, wire_id);
        validate_nesting(&spans).expect("stitched batch nests under the wire span");
    }

    #[test]
    fn validate_nesting_rejects_escaping_children() {
        let mk = |span_id, parent_id, start_us, dur_us| SpanData {
            trace_id: 1,
            span_id,
            parent_id,
            name: "s".into(),
            start_us,
            dur_us,
            tid: 1,
            process: "driver",
        };
        let good = vec![mk(1, 0, 10, 100), mk(2, 1, 20, 30)];
        assert_eq!(validate_nesting(&good), Ok(1));
        let bad = vec![mk(1, 0, 10, 100), mk(2, 1, 90, 30)];
        assert!(validate_nesting(&bad).is_err());
        // An orphan (evicted parent) is skipped, not an error.
        let orphan = vec![mk(2, 99, 20, 30)];
        assert_eq!(validate_nesting(&orphan), Ok(0));
    }
}
