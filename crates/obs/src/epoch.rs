//! Wall-clock epoch windows over latency histograms.

use crate::hist::LatencyHistogram;

/// A fixed array of [`LatencyHistogram`]s indexed by elapsed wall-clock
/// time, so latency trends are judged in *time order* regardless of which
/// thread's samples were merged first.
///
/// All slots are pre-allocated at construction: recording stays wait-free
/// and allocation-free. Samples past the last epoch clamp into it (a run
/// outliving `epochs × epoch_micros` skews the tail epoch rather than
/// dropping data).
pub struct EpochSeries {
    epoch_micros: u64,
    slots: Box<[LatencyHistogram]>,
}

impl std::fmt::Debug for EpochSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochSeries")
            .field("epoch_micros", &self.epoch_micros)
            .field("epochs", &self.slots.len())
            .field("non_empty", &self.non_empty().len())
            .finish()
    }
}

impl EpochSeries {
    /// `epochs` pre-allocated windows of `epoch_micros` each.
    pub fn new(epoch_micros: u64, epochs: usize) -> Self {
        assert!(epoch_micros > 0, "epoch length must be positive");
        assert!(epochs > 0, "need at least one epoch");
        EpochSeries { epoch_micros, slots: (0..epochs).map(|_| LatencyHistogram::new()).collect() }
    }

    pub fn epoch_micros(&self) -> u64 {
        self.epoch_micros
    }

    pub fn num_epochs(&self) -> usize {
        self.slots.len()
    }

    /// Record a sample taken `elapsed_micros` after the run started.
    #[inline]
    pub fn record(&self, elapsed_micros: u64, value: u64) {
        let idx = ((elapsed_micros / self.epoch_micros) as usize).min(self.slots.len() - 1);
        self.slots[idx].record(value);
    }

    pub fn epoch(&self, idx: usize) -> &LatencyHistogram {
        &self.slots[idx]
    }

    /// `(epoch index, histogram)` for every epoch with samples, in time order.
    pub fn non_empty(&self) -> Vec<(usize, &LatencyHistogram)> {
        self.slots.iter().enumerate().filter(|(_, h)| !h.is_empty()).collect()
    }

    /// Total samples across all epochs.
    pub fn count(&self) -> u64 {
        self.slots.iter().map(|h| h.count()).sum()
    }

    /// Fold another series recorded against the same clock into this one.
    /// Both must share the same epoch length and count.
    pub fn merge(&self, other: &EpochSeries) {
        assert_eq!(self.epoch_micros, other.epoch_micros, "epoch length mismatch");
        assert_eq!(self.slots.len(), other.slots.len(), "epoch count mismatch");
        for (mine, theirs) in self.slots.iter().zip(other.slots.iter()) {
            mine.merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_time_ordered_epochs() {
        let s = EpochSeries::new(1_000, 4);
        s.record(0, 10);
        s.record(999, 11);
        s.record(1_000, 20);
        s.record(3_500, 30);
        s.record(99_999, 40); // clamps into the last epoch
        assert_eq!(s.epoch(0).count(), 2);
        assert_eq!(s.epoch(1).count(), 1);
        assert_eq!(s.epoch(2).count(), 0);
        assert_eq!(s.epoch(3).count(), 2);
        assert_eq!(s.count(), 5);
        let idx: Vec<usize> = s.non_empty().iter().map(|&(i, _)| i).collect();
        assert_eq!(idx, vec![0, 1, 3]);
    }

    #[test]
    fn merge_combines_matching_epochs() {
        let a = EpochSeries::new(500, 3);
        let b = EpochSeries::new(500, 3);
        a.record(0, 5);
        b.record(100, 7);
        b.record(1_200, 9);
        a.merge(&b);
        assert_eq!(a.epoch(0).count(), 2);
        assert_eq!(a.epoch(2).count(), 1);
        assert_eq!(a.epoch(0).max(), 7);
    }

    #[test]
    fn merge_order_does_not_change_any_epoch_distribution() {
        // Three workers' series merged in different orders must yield the
        // same per-epoch distributions — steady-state verdicts depend on
        // time order, never merge order.
        let make = |offset: u64| {
            let s = EpochSeries::new(1_000, 4);
            for i in 0..40u64 {
                s.record((i * 97) % 4_000, offset + i * 13);
            }
            s
        };
        let (a, b, c) = (make(10), make(500), make(9_000));

        let forward = EpochSeries::new(1_000, 4);
        forward.merge(&a);
        forward.merge(&b);
        forward.merge(&c);
        let reverse = EpochSeries::new(1_000, 4);
        reverse.merge(&c);
        reverse.merge(&b);
        reverse.merge(&a);

        assert_eq!(forward.count(), reverse.count());
        for idx in 0..4 {
            let (f, r) = (forward.epoch(idx), reverse.epoch(idx));
            assert_eq!(f.count(), r.count(), "epoch {idx} count");
            assert_eq!(f.sum(), r.sum(), "epoch {idx} sum");
            assert_eq!(f.max(), r.max(), "epoch {idx} max");
            assert_eq!(f.nonzero_buckets(), r.nonzero_buckets(), "epoch {idx} buckets");
            for q in [0.5, 0.95, 0.99] {
                assert_eq!(f.value_at_quantile(q), r.value_at_quantile(q), "epoch {idx} q={q}");
            }
        }
        let idx_f: Vec<usize> = forward.non_empty().iter().map(|&(i, _)| i).collect();
        let idx_r: Vec<usize> = reverse.non_empty().iter().map(|&(i, _)| i).collect();
        assert_eq!(idx_f, idx_r, "non-empty epochs stay in time order");
    }

    #[test]
    #[should_panic(expected = "epoch length mismatch")]
    fn merge_rejects_mismatched_epoch_length() {
        let a = EpochSeries::new(500, 3);
        let b = EpochSeries::new(600, 3);
        a.merge(&b);
    }
}
