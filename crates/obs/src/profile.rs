//! Per-query operator profiles and the thread-local profiling scope.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Operator-level work counts for one query kind (or one execution).
///
/// Query implementations and the store accessors beneath them tick the
/// *current* profile through the free functions ([`tick_rows_scanned`]
/// etc.), which resolve a thread-local scope installed by
/// [`QueryProfile::enter`]. Deep helpers therefore need no extra
/// parameters, and code running outside any scope ticks a no-op.
#[derive(Default, Debug)]
pub struct QueryProfile {
    /// Index/table entries inspected (including filtered-out ones).
    pub rows_scanned: AtomicU64,
    /// Point lookups into a keyed index or table.
    pub index_probes: AtomicU64,
    /// Adjacency-list neighbors expanded during traversals.
    pub neighbors_expanded: AtomicU64,
    /// MVCC version entries walked during visibility checks.
    pub versions_walked: AtomicU64,
    /// Rows in final result sets.
    pub result_rows: AtomicU64,
    /// Times a query reused this thread's [`QueryScratch`]-style workspace
    /// instead of allocating fresh visited/frontier structures.
    pub scratch_reuses: AtomicU64,
}

/// A plain-value copy of a [`QueryProfile`], for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    pub rows_scanned: u64,
    pub index_probes: u64,
    pub neighbors_expanded: u64,
    pub versions_walked: u64,
    pub result_rows: u64,
    pub scratch_reuses: u64,
}

impl ProfileSnapshot {
    /// Field names and values, in export order.
    pub fn fields(&self) -> [(&'static str, u64); 6] {
        [
            ("rows_scanned", self.rows_scanned),
            ("index_probes", self.index_probes),
            ("neighbors_expanded", self.neighbors_expanded),
            ("versions_walked", self.versions_walked),
            ("result_rows", self.result_rows),
            ("scratch_reuses", self.scratch_reuses),
        ]
    }

    /// True when every operator count is zero.
    pub fn is_zero(&self) -> bool {
        self.fields().iter().all(|&(_, v)| v == 0)
    }
}

impl QueryProfile {
    pub fn new() -> QueryProfile {
        QueryProfile::default()
    }

    /// Install `profile` as this thread's current profiling scope until
    /// the returned guard drops. Scopes nest: the previous scope (if any)
    /// is restored on drop.
    pub fn enter(profile: Arc<QueryProfile>) -> ProfileGuard {
        let prev = CURRENT.with(|cur| cur.replace(Some(profile)));
        ProfileGuard { prev }
    }

    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            neighbors_expanded: self.neighbors_expanded.load(Ordering::Relaxed),
            versions_walked: self.versions_walked.load(Ordering::Relaxed),
            result_rows: self.result_rows.load(Ordering::Relaxed),
            scratch_reuses: self.scratch_reuses.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<QueryProfile>>> = const { RefCell::new(None) };
}

/// Restores the previously-installed profile scope on drop.
#[must_use = "dropping the guard immediately ends the profiling scope"]
pub struct ProfileGuard {
    prev: Option<Arc<QueryProfile>>,
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        CURRENT.with(|cur| *cur.borrow_mut() = self.prev.take());
    }
}

/// The profile installed on this thread, if any.
pub fn current_profile() -> Option<Arc<QueryProfile>> {
    CURRENT.with(|cur| cur.borrow().clone())
}

#[inline]
fn tick(n: u64, field: fn(&QueryProfile) -> &AtomicU64) {
    if n == 0 {
        return;
    }
    CURRENT.with(|cur| {
        if let Some(p) = cur.borrow().as_deref() {
            field(p).fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Count `n` rows/entries inspected by a scan.
#[inline]
pub fn tick_rows_scanned(n: u64) {
    tick(n, |p| &p.rows_scanned);
}

/// Count `n` keyed point lookups.
#[inline]
pub fn tick_index_probes(n: u64) {
    tick(n, |p| &p.index_probes);
}

/// Count `n` traversal neighbor expansions.
#[inline]
pub fn tick_neighbors_expanded(n: u64) {
    tick(n, |p| &p.neighbors_expanded);
}

/// Count `n` MVCC version entries walked.
#[inline]
pub fn tick_versions_walked(n: u64) {
    tick(n, |p| &p.versions_walked);
}

/// Count `n` rows emitted into a final result.
#[inline]
pub fn tick_result_rows(n: u64) {
    tick(n, |p| &p.result_rows);
}

/// Count `n` reuses of a thread-local query scratch workspace.
#[inline]
pub fn tick_scratch_reuses(n: u64) {
    tick(n, |p| &p.scratch_reuses);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_hit_the_installed_scope_only() {
        tick_rows_scanned(5); // no scope: must not panic, must not count
        let p = Arc::new(QueryProfile::new());
        {
            let _guard = QueryProfile::enter(Arc::clone(&p));
            tick_rows_scanned(3);
            tick_index_probes(1);
            tick_result_rows(2);
            assert!(current_profile().is_some());
        }
        assert!(current_profile().is_none());
        tick_rows_scanned(7); // scope ended
        let snap = p.snapshot();
        assert_eq!(snap.rows_scanned, 3);
        assert_eq!(snap.index_probes, 1);
        assert_eq!(snap.result_rows, 2);
        assert_eq!(snap.neighbors_expanded, 0);
        assert!(!snap.is_zero());
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = Arc::new(QueryProfile::new());
        let inner = Arc::new(QueryProfile::new());
        let _a = QueryProfile::enter(Arc::clone(&outer));
        tick_versions_walked(1);
        {
            let _b = QueryProfile::enter(Arc::clone(&inner));
            tick_versions_walked(10);
        }
        tick_versions_walked(2);
        assert_eq!(outer.snapshot().versions_walked, 3);
        assert_eq!(inner.snapshot().versions_walked, 10);
    }

    #[test]
    fn scopes_are_per_thread() {
        let p = Arc::new(QueryProfile::new());
        let _guard = QueryProfile::enter(Arc::clone(&p));
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // Fresh thread: no inherited scope.
                assert!(current_profile().is_none());
                tick_rows_scanned(99);
            });
        });
        assert_eq!(p.snapshot().rows_scanned, 0);
    }
}
