//! Fixed-bucket log-linear latency histogram with atomic buckets.

use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this are tracked exactly, one bucket per value.
const LINEAR_MAX: u64 = 16;
/// Sub-buckets per octave above the linear range: 16 ⇒ relative bucket
/// width of 1/16 (≤ 6.25% quantile error).
const SUB_BITS: u32 = 4;
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Highest octave with its own buckets; values at 2^40 and above (≈ 12.7
/// days in microseconds) clamp into the final bucket.
const MAX_OCTAVE: u32 = 39;
const NUM_BUCKETS: usize =
    LINEAR_MAX as usize + (MAX_OCTAVE as usize - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// A log-linear (HDR-style) histogram of `u64` samples, typically
/// microseconds.
///
/// Small values (< 16) get exact buckets; larger values share an octave
/// split into 16 sub-buckets, bounding relative quantile error at 1/16.
/// Recording is wait-free — four relaxed atomic RMWs, no allocation — so
/// one histogram can be shared across worker threads. Count, sum and max
/// are tracked exactly; only quantiles are bucket-approximate.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("p50", &self.value_at_quantile(0.50))
            .field("p99", &self.value_at_quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    if octave > MAX_OCTAVE {
        return NUM_BUCKETS - 1;
    }
    let sub = ((v >> (octave - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    LINEAR_MAX as usize + (octave - SUB_BITS) as usize * SUB_BUCKETS + sub
}

/// Lowest value mapping into bucket `idx`.
fn bucket_low(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let b = idx - LINEAR_MAX as usize;
    let octave = b as u32 / SUB_BUCKETS as u32 + SUB_BITS;
    let sub = (b % SUB_BUCKETS) as u64;
    (1u64 << octave) + (sub << (octave - SUB_BITS))
}

/// Highest value mapping into bucket `idx`.
fn bucket_high(idx: usize) -> u64 {
    if idx < LINEAR_MAX as usize {
        return idx as u64;
    }
    let b = idx - LINEAR_MAX as usize;
    let octave = b as u32 / SUB_BUCKETS as u32 + SUB_BITS;
    bucket_low(idx) + (1u64 << (octave - SUB_BITS)) - 1
}

impl LatencyHistogram {
    pub fn new() -> Self {
        // Allocate zeroed once up front; recording never allocates.
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> =
            buckets.into_boxed_slice().try_into().unwrap_or_else(|_| unreachable!());
        LatencyHistogram {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Wait-free; safe to call from any thread.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`. Returns the upper edge of
    /// the bucket holding the rank (clamped to the exact max), so the
    /// result is within one bucket width (≤ 1/16 relative) of the true
    /// order statistic. Returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // The final bucket also holds clamped out-of-range values,
                // so its edge may understate: report the exact max there.
                if idx == NUM_BUCKETS - 1 {
                    return self.max();
                }
                return bucket_high(idx).min(self.max());
            }
        }
        // Counts raced slightly under concurrent recording; fall back to max.
        self.max()
    }

    /// Fold `other`'s samples into `self`. Lossless: buckets line up by
    /// construction, and count/sum/max combine exactly.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v != 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Non-empty buckets as `(low, high, count)` ranges, for export.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(idx, b)| {
                let c = b.load(Ordering::Relaxed);
                (c != 0).then(|| (bucket_low(idx), bucket_high(idx), c))
            })
            .collect()
    }

    /// An owned point-in-time copy, cheap to ship across the wire (only
    /// non-empty buckets are materialized). Quantiles computed from the
    /// snapshot match the live histogram's at the capture instant.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets: self.nonzero_buckets(),
        }
    }
}

/// Owned snapshot of a [`LatencyHistogram`]: exact count/sum/max plus the
/// non-empty `(low, high, count)` buckets. This is the unit the counters
/// RPC ships so remote runs disclose the same distributions as in-process
/// runs, and what the full-disclosure JSON renders per write-pipeline
/// stage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    /// Non-empty buckets as `(low, high, count)`, ascending by `low`.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean (0.0 when empty), mirroring [`LatencyHistogram::mean`].
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile over the snapshotted buckets, mirroring
    /// [`LatencyHistogram::value_at_quantile`] (upper bucket edge, clamped
    /// to the exact max; 0 when empty).
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(_, high, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return high.min(self.max);
            }
        }
        self.max
    }

    /// Fold another snapshot's buckets into this one (lossless, like
    /// [`LatencyHistogram::merge`]): used to merge per-stripe wait
    /// distributions into one store-wide view.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for &(low, high, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&low, |b| b.0) {
                Ok(i) => self.buckets[i].2 += c,
                Err(i) => self.buckets.insert(i, (low, high, c)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries_are_contiguous() {
        // Every value maps to exactly one bucket whose [low, high] range
        // contains it, and ranges tile the domain without gaps.
        for idx in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_high(idx) + 1, bucket_low(idx + 1), "gap after bucket {idx}");
            assert_eq!(bucket_index(bucket_low(idx)), idx);
            assert_eq!(bucket_index(bucket_high(idx)), idx);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.5), 0);
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let h = LatencyHistogram::new();
        h.record(12345);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 12345);
        assert_eq!(h.mean(), 12345.0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.value_at_quantile(q), 12345, "q={q}");
        }
    }

    /// Deterministic pseudo-random sample source (SplitMix64).
    fn samples(seed: u64, n: usize, spread: u32) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                // Skew toward a latency-like long-tail shape, inside the
                // tracked range (the ≥2^40 clamp region is tested separately).
                (z >> (z % spread as u64)) & ((1 << 40) - 1)
            })
            .collect()
    }

    #[test]
    fn quantiles_track_exact_nearest_rank_within_bucket_error() {
        for (seed, spread) in [(1u64, 60u32), (7, 48), (42, 30)] {
            let vals = samples(seed, 5000, spread);
            let h = LatencyHistogram::new();
            for &v in &vals {
                h.record(v);
            }
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            for q in [0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let exact = sorted[rank - 1];
                let approx = h.value_at_quantile(q);
                // Upper bucket edge: never below the exact order statistic
                // by more than one bucket, never above it by more than the
                // 1/16 bucket width.
                assert!(approx >= exact, "seed={seed} q={q}: approx {approx} < exact {exact}");
                let max_err = exact / 16 + 1;
                assert!(
                    approx - exact <= max_err,
                    "seed={seed} q={q}: approx {approx} exceeds exact {exact} by more than {max_err}"
                );
            }
        }
    }

    #[test]
    fn values_beyond_range_clamp_into_last_bucket() {
        let h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 45);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        // Quantiles saturate at the exact max rather than the bucket edge.
        assert_eq!(h.value_at_quantile(1.0), u64::MAX);
        assert_eq!(h.nonzero_buckets().len(), 1);
    }

    #[test]
    fn merge_is_associative_and_lossless() {
        let make = |seed: u64| {
            let h = LatencyHistogram::new();
            for v in samples(seed, 700, 40) {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (make(10), make(20), make(30));

        // (a ⊕ b) ⊕ c
        let left = LatencyHistogram::new();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let bc = LatencyHistogram::new();
        bc.merge(&b);
        bc.merge(&c);
        let right = LatencyHistogram::new();
        right.merge(&a);
        right.merge(&bc);

        assert_eq!(left.count(), right.count());
        assert_eq!(left.sum(), right.sum());
        assert_eq!(left.max(), right.max());
        assert_eq!(left.nonzero_buckets(), right.nonzero_buckets());
        assert_eq!(left.count(), a.count() + b.count() + c.count());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(left.value_at_quantile(q), right.value_at_quantile(q));
        }
    }

    #[test]
    fn empty_snapshot_reports_zeros_like_the_live_histogram() {
        let snap = LatencyHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.count, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.mean(), 0.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.value_at_quantile(q), 0, "q={q}");
        }
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn single_sample_snapshot_is_exact_at_every_quantile() {
        let h = LatencyHistogram::new();
        h.record(777);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.mean(), 777.0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(snap.value_at_quantile(q), 777, "q={q}");
        }
    }

    #[test]
    fn snapshot_quantiles_match_live_histogram_and_merge_is_lossless() {
        let (a, b) = (LatencyHistogram::new(), LatencyHistogram::new());
        for v in samples(3, 4000, 44) {
            a.record(v);
        }
        for v in samples(9, 4000, 52) {
            b.record(v);
        }
        for h in [&a, &b] {
            let snap = h.snapshot();
            assert_eq!(snap.count, h.count());
            assert_eq!(snap.mean(), h.mean());
            for q in [0.01, 0.5, 0.9, 0.95, 0.99, 1.0] {
                assert_eq!(snap.value_at_quantile(q), h.value_at_quantile(q), "q={q}");
            }
        }
        // Snapshot-side merge agrees with live merge.
        let live = LatencyHistogram::new();
        live.merge(&a);
        live.merge(&b);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.count, live.count());
        assert_eq!(snap.sum, live.sum());
        assert_eq!(snap.max, live.max());
        assert_eq!(snap.buckets, live.nonzero_buckets());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(snap.value_at_quantile(q), live.value_at_quantile(q), "q={q}");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let h = Arc::new(LatencyHistogram::new());
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Distinct per-thread values exercise different buckets.
                        h.record(t as u64 * 1000 + i % 977);
                    }
                });
            }
        });
        assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, _, c)| c).sum();
        assert_eq!(bucket_total, h.count());
        let expected_sum: u64 = (0..THREADS as u64)
            .map(|t| (0..PER_THREAD).map(|i| t * 1000 + i % 977).sum::<u64>())
            .sum();
        assert_eq!(h.sum(), expected_sum);
        assert_eq!(h.max(), 7000 + 976);
    }
}
