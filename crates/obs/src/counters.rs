//! Named atomic counter registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A handle to one named counter. Cloning shares the underlying cell, so
/// hot paths keep a handle and never touch the registry lock again.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A free-standing counter not attached to any registry (useful in
    /// tests and as a null sink).
    pub fn detached() -> Counter {
        Counter { cell: Arc::new(AtomicU64::new(0)) }
    }

    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Gauge-style overwrite (e.g. current table sizes).
    #[inline]
    pub fn set(&self, n: u64) {
        self.cell.store(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A level gauge: like [`Counter`] but decrementable, for quantities that
/// rise and fall (open connections, in-flight pipeline depth). Cloning
/// shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Saturating decrement: a stray extra `dec` pins the gauge at zero
    /// instead of wrapping to u64::MAX and poisoning every later read.
    #[inline]
    pub fn dec(&self) {
        self.cell
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)))
            .ok();
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn sub(&self, n: u64) {
        if n != 0 {
            self.cell
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(n)))
                .ok();
        }
    }

    #[inline]
    pub fn set(&self, n: u64) {
        self.cell.store(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A registry of named counters. Registration takes a lock; increments on
/// the returned [`Counter`] handles are lock-free.
///
/// Names follow `layer.subsystem.metric`, e.g. `store.wal.bytes` or
/// `driver.scheduler.gct_wait_micros` — dotted paths keep the JSON export
/// greppable and stable across layers.
#[derive(Default)]
pub struct Counters {
    by_name: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
}

impl std::fmt::Debug for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.snapshot()).finish()
    }
}

impl Counters {
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Get-or-create the counter named `name`. Handles to the same name
    /// share one cell, so registration is idempotent.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut map = self.by_name.lock().unwrap_or_else(|e| e.into_inner());
        let cell = map.entry(name).or_default();
        Counter { cell: Arc::clone(cell) }
    }

    /// Get-or-create the gauge named `name`. Gauges share the counter
    /// namespace and cell map, so they appear in [`Counters::snapshot`]
    /// (and everything built on it — the counters RPC, `--json` full
    /// disclosure) with no extra plumbing.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let mut map = self.by_name.lock().unwrap_or_else(|e| e.into_inner());
        let cell = map.entry(name).or_default();
        Gauge { cell: Arc::clone(cell) }
    }

    /// Current values in sorted name order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        let map = self.by_name.lock().unwrap_or_else(|e| e.into_inner());
        map.iter().map(|(&name, cell)| (name, cell.load(Ordering::Relaxed))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_and_snapshot_sorts() {
        let reg = Counters::new();
        let a = reg.counter("store.wal.appends");
        let b = reg.counter("store.wal.appends");
        let z = reg.counter("driver.scheduler.slippage_micros");
        a.inc();
        b.add(4);
        z.set(9);
        z.add(0); // no-op fast path
        assert_eq!(a.get(), 5);
        assert_eq!(
            reg.snapshot(),
            vec![("driver.scheduler.slippage_micros", 9), ("store.wal.appends", 5)]
        );
    }

    #[test]
    fn registered_gauges_appear_in_snapshots() {
        let reg = Counters::new();
        let g = reg.gauge("net.server.open_conns");
        let g2 = reg.gauge("net.server.open_conns");
        g.add(3);
        g2.dec();
        assert_eq!(g.get(), 2, "handles share one cell");
        assert_eq!(reg.snapshot(), vec![("net.server.open_conns", 2)]);
    }

    #[test]
    fn gauge_rises_falls_and_saturates_at_zero() {
        let g = Gauge::new();
        g.inc();
        g.add(4);
        assert_eq!(g.get(), 5);
        g.dec();
        g.sub(3);
        assert_eq!(g.get(), 1);
        g.sub(100); // saturates, never wraps
        assert_eq!(g.get(), 0);
        g.dec();
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let reg = Counters::new();
        let c = reg.counter("x.y.z");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
