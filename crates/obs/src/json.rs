//! A minimal JSON document model for the machine-readable disclosure.
//!
//! Hand-rolled rather than serde-based for the same reason as the WAL
//! encoding: the workspace builds offline with no external dependencies.
//! Objects preserve insertion order so exported reports diff cleanly.

use std::fmt::Write as _;

/// A JSON value. Build with the `From` impls and [`Json::obj`] /
/// [`Json::arr`], then serialize with [`Json::render`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn arr(items: impl IntoIterator<Item = impl Into<Json>>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Append a field to an object. Panics on non-objects.
    pub fn push_field(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value.into())),
            other => panic!("push_field on non-object {other:?}"),
        }
    }

    /// Serialize compactly (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with `indent`-space pretty-printing.
    pub fn render_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Infinity
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1)
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_structures() {
        let doc = Json::obj([
            ("name", Json::from("snb")),
            ("ops", Json::from(42u64)),
            ("ratio", Json::from(0.5)),
            ("bad", Json::F64(f64::NAN)),
            ("neg", Json::from(-3i64)),
            ("ok", Json::from(true)),
            ("none", Json::from(Option::<u64>::None)),
            ("tags", Json::arr(["a", "b"])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"snb","ops":42,"ratio":0.5,"bad":null,"neg":-3,"ok":true,"none":null,"tags":["a","b"],"empty":[]}"#
        );
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let s = Json::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let doc = Json::obj([("xs", Json::arr([1u64, 2]))]);
        assert_eq!(doc.render_pretty(2), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn push_field_appends_in_order() {
        let mut doc = Json::obj([("a", Json::from(1u64))]);
        doc.push_field("b", 2u64);
        assert_eq!(doc.render(), r#"{"a":1,"b":2}"#);
    }
}
