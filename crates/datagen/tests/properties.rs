//! Property-based tests for DATAGEN: for arbitrary small configurations,
//! the generated dataset satisfies the schema's time-ordering and
//! referential-integrity invariants, and generation is deterministic.

use proptest::prelude::*;
use snb_datagen::{generate, GeneratorConfig};
use std::collections::{HashMap, HashSet};

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (50u64..220, any::<u64>(), 1usize..5, any::<bool>(), 2u32..10).prop_map(
        |(n, seed, threads, events, activity_tenths)| {
            GeneratorConfig::with_persons(n)
                .seed(seed)
                .threads(threads)
                .events(events)
                .activity(activity_tenths as f64 / 10.0)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All Table 1 time-ordering rules hold for any configuration.
    #[test]
    fn generated_timestamps_are_causally_ordered(config in config_strategy()) {
        let ds = generate(config).unwrap();
        let person_created: Vec<_> = ds.persons.iter().map(|p| p.creation_date).collect();
        // person.birthDate < person.createdDate
        for p in &ds.persons {
            prop_assert!(p.birthday < p.creation_date);
        }
        // knows after both accounts
        for k in &ds.knows {
            prop_assert!(k.creation_date >= person_created[k.a.index()]);
            prop_assert!(k.creation_date >= person_created[k.b.index()]);
        }
        // forum after moderator account
        for f in &ds.forums {
            prop_assert!(f.creation_date > person_created[f.moderator.index()]);
        }
        // membership after forum creation and member account
        let forum_created: Vec<_> = ds.forums.iter().map(|f| f.creation_date).collect();
        for m in &ds.memberships {
            prop_assert!(m.join_date >= forum_created[m.forum.index()]);
            prop_assert!(m.join_date > person_created[m.person.index()]);
        }
        // post after forum, comment after parent, like after message
        let mut message_created = HashMap::new();
        for p in &ds.posts {
            prop_assert!(p.creation_date > forum_created[p.forum.index()]);
            message_created.insert(p.id, p.creation_date);
        }
        for c in &ds.comments {
            message_created.insert(c.id, c.creation_date);
        }
        for c in &ds.comments {
            prop_assert!(c.creation_date > message_created[&c.reply_to]);
            prop_assert!(c.creation_date > message_created[&c.root_post]);
        }
        for l in &ds.likes {
            prop_assert!(l.creation_date > message_created[&l.message]);
        }
    }

    /// Referential integrity: every foreign key resolves; authors are forum
    /// members; discussion trees are rooted in their forum's posts.
    #[test]
    fn generated_references_resolve(config in config_strategy()) {
        let ds = generate(config).unwrap();
        let n = ds.persons.len() as u64;
        let members: HashSet<(u64, u64)> =
            ds.memberships.iter().map(|m| (m.forum.raw(), m.person.raw())).collect();
        for k in &ds.knows {
            prop_assert!(k.a.raw() < n && k.b.raw() < n && k.a != k.b);
        }
        for p in &ds.posts {
            prop_assert!(p.author.raw() < n);
            prop_assert!(members.contains(&(p.forum.raw(), p.author.raw())), "post author not a member");
        }
        let posts_by_id: HashSet<u64> = ds.posts.iter().map(|p| p.id.raw()).collect();
        for c in &ds.comments {
            prop_assert!(c.author.raw() < n);
            prop_assert!(posts_by_id.contains(&c.root_post.raw()), "root is not a post");
            prop_assert!(members.contains(&(c.forum.raw(), c.author.raw())));
        }
    }

    /// Bit-identical output regardless of thread count, for any seed.
    #[test]
    fn determinism_for_arbitrary_seeds(seed in any::<u64>()) {
        let a = generate(GeneratorConfig::with_persons(120).seed(seed).threads(1).activity(0.3)).unwrap();
        let b = generate(GeneratorConfig::with_persons(120).seed(seed).threads(4).activity(0.3)).unwrap();
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.knows.len(), b.knows.len());
        for (x, y) in a.comments.iter().zip(&b.comments) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.reply_to, y.reply_to);
            prop_assert_eq!(&x.content, &y.content);
        }
    }

    /// The update stream is exactly the post-split subset, in due order,
    /// with T_SAFE-respecting dependencies.
    #[test]
    fn update_stream_invariants(config in config_strategy()) {
        let t_safe = config.t_safe_millis;
        let split = config.update_split;
        let ds = generate(config).unwrap();
        let stream = ds.update_stream();
        let post_split_entities = ds.persons.iter().filter(|p| p.creation_date > split).count()
            + ds.knows.iter().filter(|k| k.creation_date > split).count()
            + ds.forums.iter().filter(|f| f.creation_date > split).count()
            + ds.memberships.iter().filter(|m| m.join_date > split).count()
            + ds.posts.iter().filter(|p| p.creation_date > split).count()
            + ds.comments.iter().filter(|c| c.creation_date > split).count()
            + ds.likes.iter().filter(|l| l.creation_date > split).count();
        prop_assert_eq!(stream.len(), post_split_entities);
        for w in stream.windows(2) {
            prop_assert!(w[0].due <= w[1].due);
        }
        for u in &stream {
            prop_assert!(u.due > split);
            if u.is_dependent() {
                prop_assert!(u.due.since(u.dep) >= t_safe);
            }
        }
    }
}
