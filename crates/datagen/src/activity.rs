//! Person-activity generation: forums, post/comment trees, likes (§2.4,
//! "person activity generation").
//!
//! "This data is mostly tree-structured and is therefore easily parallelized
//! by the person who owns the forum. Each worker needs the attributes of the
//! owner (e.g. interests influence post topics), the friend list (only
//! friends post comments and likes) with the friendship creation timestamps
//! (they only post after that); but otherwise the workers can operate
//! independently." We parallelize exactly that way: one deterministic unit
//! of work per owning person, read-only access to the friendship adjacency.
//!
//! Volume scales with friendship degree ("people having more friends are
//! likely more active and post more messages"), and every timestamp obeys
//! the Table 1 ordering rules plus the driver's `T_SAFE` guarantee: a
//! person's first activity in a forum comes at least `T_SAFE` after the
//! membership/friendship that enables it.

use crate::config::GeneratorConfig;
use crate::events::EventSchedule;
use crate::pipeline::run_blocks;
use snb_core::dict::text::TextGen;
use snb_core::dict::Dictionaries;
use snb_core::rng::{Rng, Stream};
use snb_core::schema::{Comment, Forum, ForumKind, ForumMembership, Knows, Like, Person, Post};
use snb_core::time::{SimTime, MILLIS_PER_DAY, MILLIS_PER_HOUR, MILLIS_PER_MINUTE};
use snb_core::{ForumId, MessageId, TagId};
use std::collections::{HashMap, HashSet};

/// Generated activity, ids dense and creation-time ordered.
#[derive(Debug, Default)]
pub struct Activity {
    /// All forums (walls, groups, albums).
    pub forums: Vec<Forum>,
    /// Forum memberships.
    pub memberships: Vec<ForumMembership>,
    /// Root messages.
    pub posts: Vec<Post>,
    /// Replies.
    pub comments: Vec<Comment>,
    /// Likes on posts and comments.
    pub likes: Vec<Like>,
}

/// Friendship adjacency: for each person, `(friend index, friendship date)`
/// sorted by date.
pub fn build_adjacency(n_persons: usize, knows: &[Knows]) -> Vec<Vec<(u32, SimTime)>> {
    let mut adj = vec![Vec::new(); n_persons];
    for k in knows {
        adj[k.a.index()].push((k.b.raw() as u32, k.creation_date));
        adj[k.b.index()].push((k.a.raw() as u32, k.creation_date));
    }
    for list in &mut adj {
        list.sort_unstable_by_key(|&(f, d)| (d, f));
    }
    adj
}

/// A forum member during generation: person plus the time from which they
/// may act in the forum (join + `T_SAFE`).
#[derive(Debug, Clone, Copy)]
struct Member {
    person: u32,
    join: SimTime,
    eligible_from: SimTime,
}

/// Per-worker output with temporary ids (remapped after the merge).
#[derive(Debug, Default)]
struct RawActivity {
    forums: Vec<Forum>,
    memberships: Vec<ForumMembership>,
    posts: Vec<Post>,
    comments: Vec<Comment>,
    likes: Vec<Like>,
}

/// Generate all activity for the network.
pub fn generate_activity(
    config: &GeneratorConfig,
    persons: &[Person],
    knows: &[Knows],
    events: &EventSchedule,
) -> Activity {
    let adj = build_adjacency(persons.len(), knows);
    let adj = &adj;

    let raws = run_blocks(persons.len(), config.block_size, config.threads, |range| {
        let mut raw = RawActivity::default();
        for p in range {
            generate_for_person(config, persons, adj, events, p, &mut raw);
        }
        raw
    });

    merge_and_remap(raws)
}

/// All activity owned by one person (their wall, groups, albums).
fn generate_for_person(
    config: &GeneratorConfig,
    persons: &[Person],
    adj: &[Vec<(u32, SimTime)>],
    events: &EventSchedule,
    p: usize,
    raw: &mut RawActivity,
) {
    let dicts = Dictionaries::global();
    let person = &persons[p];
    let degree = adj[p].len();
    let mut frng = Rng::for_entity(config.seed, Stream::Forums, person.id.raw());
    let mut forum_counter: u64 = 0;
    let mut message_counter: u64 = 0;
    let scale = config.activity_scale;

    // ---- Wall -------------------------------------------------------
    // The wall is created T_SAFE after the account: addForum is a dependent
    // of addPerson in the update stream, and DATAGEN guarantees every
    // dependent fires at least T_SAFE after its dependency (§4.2).
    let wall_created = person.creation_date.plus_millis(config.t_safe_millis);
    let wall_tags: Vec<TagId> = person.interests.iter().copied().take(3).collect();
    let mut wall_members = vec![Member {
        person: p as u32,
        join: wall_created,
        eligible_from: person.creation_date.plus_millis(config.t_safe_millis),
    }];
    for &(f, fdate) in &adj[p] {
        let join = fdate.plus_millis(MILLIS_PER_HOUR);
        if join < config.end {
            wall_members.push(Member {
                person: f,
                join,
                eligible_from: join.plus_millis(config.t_safe_millis),
            });
        }
    }
    let wall_posts = ((0.75 * degree as f64 * scale).round() as usize).max(1);
    emit_forum(
        config,
        persons,
        events,
        raw,
        ForumSpec {
            owner: p as u32,
            kind: ForumKind::Wall,
            title: format!("Wall of {} {}", person.first_name, person.last_name),
            created: wall_created,
            tags: wall_tags,
            members: wall_members,
            n_posts: wall_posts,
            comments_mean: 3.0,
            likes_mean: 1.5,
        },
        &mut forum_counter,
        &mut message_counter,
    );

    // ---- Interest groups --------------------------------------------
    let n_groups = usize::from(frng.chance(0.35)) + usize::from(frng.chance(0.10));
    for _ in 0..n_groups {
        let earliest = person.creation_date.plus_millis(config.t_safe_millis);
        let latest = config.end.plus_days(-30);
        if earliest >= latest {
            break;
        }
        let created = frng.sim_time(earliest, latest);
        let topic = person.interests[frng.index(person.interests.len())];
        let mut tags = vec![topic];
        for _ in 0..2 {
            let t = TagId(frng.index(dicts.tags.tag_count()) as u64);
            if !tags.contains(&t) {
                tags.push(t);
            }
        }
        let mut members = vec![Member {
            person: p as u32,
            join: created,
            eligible_from: created.max(person.creation_date.plus_millis(config.t_safe_millis)),
        }];
        let mut invited: HashSet<u32> = HashSet::new();
        invited.insert(p as u32);
        // Friends join with high probability, friends-of-friends with low.
        for &(f, fdate) in &adj[p] {
            if frng.chance(0.6) {
                push_member(config, persons, &mut members, &mut invited, f, created, fdate);
            }
            if members.len() >= 50 {
                break;
            }
            for &(ff, ffdate) in adj[f as usize].iter().take(8) {
                if frng.chance(0.08) {
                    push_member(config, persons, &mut members, &mut invited, ff, created, ffdate);
                }
            }
        }
        let n_posts = (1.2 * members.len() as f64 * scale).round() as usize;
        emit_forum(
            config,
            persons,
            events,
            raw,
            ForumSpec {
                owner: p as u32,
                kind: ForumKind::Group,
                title: format!("Group for {}", dicts.tags.tag(topic.index()).name),
                created,
                tags,
                members,
                n_posts,
                comments_mean: 2.5,
                likes_mean: 1.5,
            },
            &mut forum_counter,
            &mut message_counter,
        );
    }

    // ---- Photo albums ------------------------------------------------
    let n_albums = usize::from(frng.chance(0.3)) + usize::from(frng.chance(0.1));
    for _ in 0..n_albums {
        let earliest = person.creation_date.plus_millis(config.t_safe_millis);
        let latest = config.end.plus_days(-7);
        if earliest >= latest {
            break;
        }
        let created = frng.sim_time(earliest, latest);
        let mut members = vec![Member { person: p as u32, join: created, eligible_from: created }];
        let mut invited: HashSet<u32> = HashSet::new();
        invited.insert(p as u32);
        for &(f, fdate) in &adj[p] {
            if frng.chance(0.5) {
                push_member(config, persons, &mut members, &mut invited, f, created, fdate);
            }
        }
        let n_photos = ((0.25 * degree as f64 * scale).round() as usize).max(1);
        emit_forum(
            config,
            persons,
            events,
            raw,
            ForumSpec {
                owner: p as u32,
                kind: ForumKind::Album,
                title: format!("Album of {} {}", person.first_name, person.last_name),
                created,
                tags: person.interests.iter().copied().take(1).collect(),
                members,
                n_posts: n_photos,
                comments_mean: 0.0,
                likes_mean: 0.8,
            },
            &mut forum_counter,
            &mut message_counter,
        );
    }
}

fn push_member(
    config: &GeneratorConfig,
    persons: &[Person],
    members: &mut Vec<Member>,
    invited: &mut HashSet<u32>,
    f: u32,
    forum_created: SimTime,
    friendship_date: SimTime,
) {
    if !invited.insert(f) {
        return;
    }
    let join = forum_created
        .max(friendship_date)
        .max(persons[f as usize].creation_date.plus_millis(config.t_safe_millis))
        .plus_millis(MILLIS_PER_HOUR);
    if join < config.end {
        members.push(Member {
            person: f,
            join,
            eligible_from: join.plus_millis(config.t_safe_millis),
        });
    }
}

/// Everything needed to materialize one forum's content.
struct ForumSpec {
    owner: u32,
    kind: ForumKind,
    title: String,
    created: SimTime,
    tags: Vec<TagId>,
    members: Vec<Member>,
    n_posts: usize,
    comments_mean: f64,
    likes_mean: f64,
}

/// Emit a forum, its memberships, and its discussion trees into `raw`.
fn emit_forum(
    config: &GeneratorConfig,
    persons: &[Person],
    events: &EventSchedule,
    raw: &mut RawActivity,
    spec: ForumSpec,
    forum_counter: &mut u64,
    message_counter: &mut u64,
) {
    let dicts = Dictionaries::global();
    let owner_id = persons[spec.owner as usize].id;
    let forum_temp = temp_forum_id(spec.owner, *forum_counter);
    *forum_counter += 1;

    raw.forums.push(Forum {
        id: ForumId(forum_temp),
        title: spec.title,
        moderator: owner_id,
        creation_date: spec.created,
        tags: spec.tags.clone(),
        kind: spec.kind,
    });
    for m in &spec.members {
        raw.memberships.push(ForumMembership {
            forum: ForumId(forum_temp),
            person: persons[m.person as usize].id,
            join_date: m.join,
        });
    }

    // Members sorted by eligibility for prefix sampling at a given time.
    let mut members = spec.members;
    members.sort_unstable_by_key(|m| (m.eligible_from, m.person));

    let post_window_lo = spec.created.plus_millis(config.t_safe_millis);
    let post_window_hi = config.end.plus_millis(-MILLIS_PER_HOUR);
    if post_window_lo >= post_window_hi {
        return;
    }

    let mut prng = Rng::for_entity(config.seed, Stream::Posts, forum_temp);
    for _ in 0..spec.n_posts {
        // Sample a (possibly event-clustered) time, then find who can post.
        let mut t = events.sample_post_time(&mut prng, post_window_lo, post_window_hi, &spec.tags);
        let mut eligible = members.partition_point(|m| m.eligible_from <= t);
        if eligible == 0 {
            // Retry once uniformly, then give up on this slot.
            t = prng.sim_time(post_window_lo, post_window_hi);
            eligible = members.partition_point(|m| m.eligible_from <= t);
            if eligible == 0 {
                continue;
            }
        }
        // Owner bias: the moderator authors a third of root posts.
        let author_idx =
            if prng.chance(0.33) && members[..eligible].iter().any(|m| m.person == spec.owner) {
                spec.owner
            } else {
                members[prng.index(eligible)].person
            };
        let author = &persons[author_idx as usize];

        let mut tags: Vec<TagId> = Vec::with_capacity(spec.tags.len());
        for (i, &tag) in spec.tags.iter().enumerate() {
            if i == 0 || prng.chance(0.4) {
                tags.push(tag);
            }
        }
        let topic = tags.first().map(|t| dicts.tags.tag(t.index()).name.as_str()).unwrap_or("life");
        let language = author.languages[prng.index(author.languages.len())];
        let country = message_country(&mut prng, author, dicts);

        let post_temp = temp_message_id(spec.owner, *message_counter);
        *message_counter += 1;
        let is_photo = spec.kind == ForumKind::Album;
        raw.posts.push(Post {
            id: MessageId(post_temp),
            author: author.id,
            forum: ForumId(forum_temp),
            creation_date: t,
            content: if is_photo { String::new() } else { TextGen::post_text(&mut prng, topic) },
            image_file: is_photo.then(|| format!("photo{post_temp}.jpg")),
            tags: tags.clone(),
            language,
            country,
        });

        // Discussion tree under the post.
        let mut thread: Vec<(u64, SimTime)> = vec![(post_temp, t)];
        if spec.comments_mean > 0.0 {
            let mut crng = Rng::for_entity(config.seed, Stream::Comments, post_temp);
            let n_comments = crng.exponential(1.0 / spec.comments_mean) as usize;
            for _ in 0..n_comments {
                // Recency-biased parent choice keeps trees deep-ish.
                let back = (crng.geometric(0.45) as usize).min(thread.len() - 1);
                let (parent_temp, parent_t) = thread[thread.len() - 1 - back];
                let ct = parent_t.plus_millis(
                    MILLIS_PER_MINUTE
                        + crng.exponential(1.0 / (8.0 * MILLIS_PER_HOUR as f64)) as i64,
                );
                if ct >= config.end {
                    break;
                }
                let celig = members.partition_point(|m| m.eligible_from <= ct);
                if celig == 0 {
                    continue;
                }
                let cauthor = &persons[members[crng.index(celig)].person as usize];
                let ctags: Vec<TagId> = tags.iter().copied().filter(|_| crng.chance(0.3)).collect();
                let comment_temp = temp_message_id(spec.owner, *message_counter);
                *message_counter += 1;
                raw.comments.push(Comment {
                    id: MessageId(comment_temp),
                    author: cauthor.id,
                    creation_date: ct,
                    content: TextGen::comment_text(&mut crng, topic),
                    reply_to: MessageId(parent_temp),
                    root_post: MessageId(post_temp),
                    forum: ForumId(forum_temp),
                    tags: ctags,
                    country: message_country(&mut crng, cauthor, dicts),
                });
                thread.push((comment_temp, ct));
            }
        }

        // Likes on every message of the thread.
        if spec.likes_mean > 0.0 {
            for &(msg_temp, msg_t) in &thread {
                let mut lrng = Rng::for_entity(config.seed, Stream::Likes, msg_temp);
                let n_likes = lrng.exponential(1.0 / spec.likes_mean) as usize;
                let mut likers: HashSet<u32> = HashSet::new();
                for _ in 0..n_likes {
                    let lt = msg_t.plus_millis(
                        MILLIS_PER_MINUTE
                            + lrng.exponential(1.0 / (2.0 * MILLIS_PER_DAY as f64)) as i64,
                    );
                    if lt >= config.end {
                        continue;
                    }
                    let lelig = members.partition_point(|m| m.eligible_from <= lt);
                    if lelig == 0 {
                        continue;
                    }
                    let liker = members[lrng.index(lelig)].person;
                    if likers.insert(liker) {
                        raw.likes.push(Like {
                            person: persons[liker as usize].id,
                            message: MessageId(msg_temp),
                            creation_date: lt,
                        });
                    }
                }
            }
        }
    }
}

/// Messages are mostly written from the author's home country; occasionally
/// while travelling (this is what makes Q3's "posts in foreign countries"
/// selective).
fn message_country(rng: &mut Rng, author: &Person, dicts: &Dictionaries) -> usize {
    if rng.chance(0.05) {
        rng.index(dicts.places.country_count())
    } else {
        author.country
    }
}

#[inline]
fn temp_forum_id(owner: u32, counter: u64) -> u64 {
    ((owner as u64) << 16) | counter
}

#[inline]
fn temp_message_id(owner: u32, counter: u64) -> u64 {
    ((owner as u64) << 28) | counter
}

/// Merge per-block outputs, sort by creation date, and replace temporary ids
/// with dense creation-ordered ids (paper footnote 3: entity id order
/// follows the time dimension).
fn merge_and_remap(raws: Vec<RawActivity>) -> Activity {
    let mut forums = Vec::new();
    let mut memberships = Vec::new();
    let mut posts = Vec::new();
    let mut comments = Vec::new();
    let mut likes = Vec::new();
    for raw in raws {
        forums.extend(raw.forums);
        memberships.extend(raw.memberships);
        posts.extend(raw.posts);
        comments.extend(raw.comments);
        likes.extend(raw.likes);
    }

    forums.sort_by_key(|f| (f.creation_date, f.id.raw()));
    let forum_map: HashMap<u64, u64> =
        forums.iter().enumerate().map(|(i, f)| (f.id.raw(), i as u64)).collect();
    for (i, f) in forums.iter_mut().enumerate() {
        f.id = ForumId(i as u64);
    }

    // Posts and comments share one creation-ordered id space.
    let mut msg_keys: Vec<(SimTime, u64)> = posts
        .iter()
        .map(|p| (p.creation_date, p.id.raw()))
        .chain(comments.iter().map(|c| (c.creation_date, c.id.raw())))
        .collect();
    msg_keys.sort_unstable();
    let msg_map: HashMap<u64, u64> =
        msg_keys.iter().enumerate().map(|(i, &(_, tmp))| (tmp, i as u64)).collect();

    for p in &mut posts {
        p.id = MessageId(msg_map[&p.id.raw()]);
        p.forum = ForumId(forum_map[&p.forum.raw()]);
    }
    for c in &mut comments {
        c.id = MessageId(msg_map[&c.id.raw()]);
        c.reply_to = MessageId(msg_map[&c.reply_to.raw()]);
        c.root_post = MessageId(msg_map[&c.root_post.raw()]);
        c.forum = ForumId(forum_map[&c.forum.raw()]);
    }
    for l in &mut likes {
        l.message = MessageId(msg_map[&l.message.raw()]);
    }
    for m in &mut memberships {
        m.forum = ForumId(forum_map[&m.forum.raw()]);
    }

    posts.sort_by_key(|p| p.id);
    comments.sort_by_key(|c| c.id);
    likes.sort_by_key(|l| (l.creation_date, l.person, l.message));
    memberships.sort_by_key(|m| (m.join_date, m.forum, m.person));

    Activity { forums, memberships, posts, comments, likes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::friends::generate_friendships;
    use crate::person::generate_persons;

    fn make(n: u64, threads: usize) -> (GeneratorConfig, Vec<Person>, Vec<Knows>, Activity) {
        let config = GeneratorConfig::with_persons(n).threads(threads).activity(0.4);
        let persons = generate_persons(&config);
        let knows = generate_friendships(&config, &persons);
        let events = EventSchedule::generate(&config);
        let activity = generate_activity(&config, &persons, &knows, &events);
        (config, persons, knows, activity)
    }

    #[test]
    fn every_person_has_a_wall() {
        let (_, persons, _, act) = make(300, 1);
        let walls = act.forums.iter().filter(|f| f.kind == ForumKind::Wall).count();
        assert_eq!(walls, persons.len());
    }

    #[test]
    fn message_ids_are_dense_and_time_ordered() {
        let (_, _, _, act) = make(300, 1);
        let mut all: Vec<(u64, SimTime)> = act
            .posts
            .iter()
            .map(|p| (p.id.raw(), p.creation_date))
            .chain(act.comments.iter().map(|c| (c.id.raw(), c.creation_date)))
            .collect();
        all.sort_unstable();
        for (i, &(id, _)) in all.iter().enumerate() {
            assert_eq!(id, i as u64, "dense ids");
        }
        for w in all.windows(2) {
            assert!(w[0].1 <= w[1].1, "ids follow time");
        }
    }

    #[test]
    fn comments_reply_to_earlier_messages_in_same_forum() {
        let (_, _, _, act) = make(300, 1);
        let mut msg_time: HashMap<u64, SimTime> =
            act.posts.iter().map(|p| (p.id.raw(), p.creation_date)).collect();
        msg_time.extend(act.comments.iter().map(|c| (c.id.raw(), c.creation_date)));
        let post_forum: HashMap<u64, ForumId> =
            act.posts.iter().map(|p| (p.id.raw(), p.forum)).collect();
        assert!(!act.comments.is_empty());
        for c in &act.comments {
            assert!(c.creation_date > msg_time[&c.reply_to.raw()]);
            assert_eq!(post_forum[&c.root_post.raw()], c.forum);
        }
    }

    #[test]
    fn likes_follow_message_creation() {
        let (_, _, _, act) = make(300, 1);
        let mut msg_time: HashMap<u64, SimTime> =
            act.posts.iter().map(|p| (p.id.raw(), p.creation_date)).collect();
        msg_time.extend(act.comments.iter().map(|c| (c.id.raw(), c.creation_date)));
        assert!(!act.likes.is_empty());
        for l in &act.likes {
            assert!(l.creation_date > msg_time[&l.message.raw()]);
        }
    }

    #[test]
    fn activity_respects_t_safe_after_membership() {
        let (config, _, _, act) = make(300, 1);
        // Map (forum, person) -> join date.
        let joins: HashMap<(u64, u64), SimTime> = act
            .memberships
            .iter()
            .map(|m| ((m.forum.raw(), m.person.raw()), m.join_date))
            .collect();
        for p in &act.posts {
            let join = joins
                .get(&(p.forum.raw(), p.author.raw()))
                .unwrap_or_else(|| panic!("author {} not member of forum {}", p.author, p.forum));
            assert!(p.creation_date.since(*join) >= 0, "post precedes membership");
            // Non-moderator authors also get the full safety gap.
            let forum = act.forums.iter().find(|f| f.id == p.forum).unwrap();
            if forum.moderator != p.author {
                assert!(
                    p.creation_date.since(*join) >= config.t_safe_millis,
                    "post violates T_SAFE"
                );
            }
        }
    }

    #[test]
    fn comment_and_like_authors_are_members() {
        let (_, _, _, act) = make(300, 1);
        let members: HashSet<(u64, u64)> =
            act.memberships.iter().map(|m| (m.forum.raw(), m.person.raw())).collect();
        for c in &act.comments {
            assert!(members.contains(&(c.forum.raw(), c.author.raw())));
        }
        let msg_forum: HashMap<u64, u64> = act
            .posts
            .iter()
            .map(|p| (p.id.raw(), p.forum.raw()))
            .chain(act.comments.iter().map(|c| (c.id.raw(), c.forum.raw())))
            .collect();
        for l in &act.likes {
            assert!(members.contains(&(msg_forum[&l.message.raw()], l.person.raw())));
        }
    }

    #[test]
    fn generation_is_thread_count_independent() {
        let (_, _, _, a) = make(400, 1);
        let (_, _, _, b) = make(400, 4);
        assert_eq!(a.posts.len(), b.posts.len());
        assert_eq!(a.comments.len(), b.comments.len());
        assert_eq!(a.likes.len(), b.likes.len());
        for (x, y) in a.posts.iter().zip(&b.posts) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.author, y.author);
            assert_eq!(x.creation_date, y.creation_date);
            assert_eq!(x.content, y.content);
        }
        for (x, y) in a.comments.iter().zip(&b.comments) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.reply_to, y.reply_to);
        }
    }

    #[test]
    fn photos_live_in_albums_without_comments() {
        let (_, _, _, act) = make(600, 1);
        let album_ids: HashSet<u64> =
            act.forums.iter().filter(|f| f.kind == ForumKind::Album).map(|f| f.id.raw()).collect();
        assert!(!album_ids.is_empty());
        for p in &act.posts {
            if album_ids.contains(&p.forum.raw()) {
                assert!(p.image_file.is_some());
                assert!(p.content.is_empty());
            } else {
                assert!(p.image_file.is_none());
            }
        }
        for c in &act.comments {
            assert!(!album_ids.contains(&c.forum.raw()), "no comments in albums");
        }
    }

    #[test]
    fn volume_scales_with_degree() {
        let (_, persons, knows, act) = make(600, 2);
        let adj = build_adjacency(persons.len(), &knows);
        // Messages per person correlate with degree: top-degree decile
        // produces more wall posts than bottom decile.
        let mut wall_posts = vec![0usize; persons.len()];
        let wall_owner: HashMap<u64, usize> = act
            .forums
            .iter()
            .filter(|f| f.kind == ForumKind::Wall)
            .map(|f| (f.id.raw(), f.moderator.index()))
            .collect();
        for p in &act.posts {
            if let Some(&owner) = wall_owner.get(&p.forum.raw()) {
                wall_posts[owner] += 1;
            }
        }
        let mut by_degree: Vec<(usize, usize)> =
            (0..persons.len()).map(|i| (adj[i].len(), wall_posts[i])).collect();
        by_degree.sort_unstable();
        let decile = persons.len() / 10;
        let low: usize = by_degree[..decile].iter().map(|&(_, w)| w).sum();
        let high: usize = by_degree[persons.len() - decile..].iter().map(|&(_, w)| w).sum();
        assert!(high > 2 * low, "high-degree {high} vs low-degree {low}");
    }
}
