//! CSV serialization of generated datasets.
//!
//! DATAGEN's bulk output format is comma-separated values ("the scale
//! factor is the amount of GB of uncompressed data in comma separated value
//! (CSV) representation", §2.4); this module writes one file per entity
//! with LDBC-style headers, plus `updates.csv` describing the update stream.
//! Fields containing the delimiter or quotes are quoted per RFC 4180.

use crate::Dataset;
use snb_core::update::{StreamKey, UpdateOp};
use snb_core::SnbResult;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Write the full dataset (bulk CSVs + update stream) into `dir`.
/// Returns the total number of data rows written.
pub fn write_csv(ds: &Dataset, dir: &Path) -> SnbResult<u64> {
    std::fs::create_dir_all(dir)?;
    let mut rows = 0u64;
    rows += write_persons(ds, dir)?;
    rows += write_knows(ds, dir)?;
    rows += write_forums(ds, dir)?;
    rows += write_memberships(ds, dir)?;
    rows += write_posts(ds, dir)?;
    rows += write_comments(ds, dir)?;
    rows += write_likes(ds, dir)?;
    rows += write_updates(ds, dir)?;
    Ok(rows)
}

fn quote(s: &str) -> String {
    if s.contains(',') || s.contains('|') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn writer(dir: &Path, name: &str) -> SnbResult<BufWriter<File>> {
    Ok(BufWriter::new(File::create(dir.join(name))?))
}

fn write_persons(ds: &Dataset, dir: &Path) -> SnbResult<u64> {
    let mut w = writer(dir, "person.csv")?;
    writeln!(
        w,
        "id|firstName|lastName|gender|birthday|creationDate|locationIP|browserUsed|cityId|languages|emails"
    )?;
    let split = ds.config.update_split;
    let mut n = 0;
    for p in ds.persons.iter().filter(|p| p.creation_date <= split) {
        writeln!(
            w,
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            p.id.raw(),
            quote(p.first_name),
            quote(p.last_name),
            p.gender.as_str(),
            p.birthday,
            p.creation_date,
            p.location_ip,
            p.browser,
            p.city,
            p.languages.join(";"),
            p.emails.join(";"),
        )?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

fn write_knows(ds: &Dataset, dir: &Path) -> SnbResult<u64> {
    let mut w = writer(dir, "person_knows_person.csv")?;
    writeln!(w, "Person1Id|Person2Id|creationDate")?;
    let split = ds.config.update_split;
    let mut n = 0;
    for k in ds.knows.iter().filter(|k| k.creation_date <= split) {
        writeln!(w, "{}|{}|{}", k.a.raw(), k.b.raw(), k.creation_date)?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

fn write_forums(ds: &Dataset, dir: &Path) -> SnbResult<u64> {
    let mut w = writer(dir, "forum.csv")?;
    writeln!(w, "id|title|creationDate|moderatorId|tagIds")?;
    let split = ds.config.update_split;
    let mut n = 0;
    for f in ds.forums.iter().filter(|f| f.creation_date <= split) {
        let tags: Vec<String> = f.tags.iter().map(|t| t.raw().to_string()).collect();
        writeln!(
            w,
            "{}|{}|{}|{}|{}",
            f.id.raw(),
            quote(&f.title),
            f.creation_date,
            f.moderator.raw(),
            tags.join(";"),
        )?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

fn write_memberships(ds: &Dataset, dir: &Path) -> SnbResult<u64> {
    let mut w = writer(dir, "forum_hasMember_person.csv")?;
    writeln!(w, "ForumId|PersonId|joinDate")?;
    let split = ds.config.update_split;
    let mut n = 0;
    for m in ds.memberships.iter().filter(|m| m.join_date <= split) {
        writeln!(w, "{}|{}|{}", m.forum.raw(), m.person.raw(), m.join_date)?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

fn write_posts(ds: &Dataset, dir: &Path) -> SnbResult<u64> {
    let mut w = writer(dir, "post.csv")?;
    writeln!(w, "id|creationDate|creatorId|forumId|content|imageFile|language|countryId|tagIds")?;
    let split = ds.config.update_split;
    let mut n = 0;
    for p in ds.posts.iter().filter(|p| p.creation_date <= split) {
        let tags: Vec<String> = p.tags.iter().map(|t| t.raw().to_string()).collect();
        writeln!(
            w,
            "{}|{}|{}|{}|{}|{}|{}|{}|{}",
            p.id.raw(),
            p.creation_date,
            p.author.raw(),
            p.forum.raw(),
            quote(&p.content),
            p.image_file.as_deref().unwrap_or(""),
            p.language,
            p.country,
            tags.join(";"),
        )?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

fn write_comments(ds: &Dataset, dir: &Path) -> SnbResult<u64> {
    let mut w = writer(dir, "comment.csv")?;
    writeln!(w, "id|creationDate|creatorId|replyOf|rootPost|forumId|content|countryId|tagIds")?;
    let split = ds.config.update_split;
    let mut n = 0;
    for c in ds.comments.iter().filter(|c| c.creation_date <= split) {
        let tags: Vec<String> = c.tags.iter().map(|t| t.raw().to_string()).collect();
        writeln!(
            w,
            "{}|{}|{}|{}|{}|{}|{}|{}|{}",
            c.id.raw(),
            c.creation_date,
            c.author.raw(),
            c.reply_to.raw(),
            c.root_post.raw(),
            c.forum.raw(),
            quote(&c.content),
            c.country,
            tags.join(";"),
        )?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

fn write_likes(ds: &Dataset, dir: &Path) -> SnbResult<u64> {
    let mut w = writer(dir, "person_likes_message.csv")?;
    writeln!(w, "PersonId|MessageId|creationDate")?;
    let split = ds.config.update_split;
    let mut n = 0;
    for l in ds.likes.iter().filter(|l| l.creation_date <= split) {
        writeln!(w, "{}|{}|{}", l.person.raw(), l.message.raw(), l.creation_date)?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

fn write_updates(ds: &Dataset, dir: &Path) -> SnbResult<u64> {
    let mut w = writer(dir, "updates.csv")?;
    writeln!(w, "dueTime|depTime|stream|type|entityId")?;
    let mut n = 0;
    for u in ds.update_stream() {
        let stream = match u.stream {
            StreamKey::Person => "person".to_string(),
            StreamKey::Forum(f) => format!("forum-{f}"),
        };
        let entity = match &u.op {
            UpdateOp::AddPerson(p) => p.id.raw(),
            UpdateOp::AddPostLike(l) | UpdateOp::AddCommentLike(l) => l.message.raw(),
            UpdateOp::AddForum(f) => f.id.raw(),
            UpdateOp::AddMembership(m) => m.forum.raw(),
            UpdateOp::AddPost(p) => p.id.raw(),
            UpdateOp::AddComment(c) => c.id.raw(),
            UpdateOp::AddFriendship(k) => k.a.raw(),
        };
        writeln!(w, "{}|{}|{}|{}|{}", u.due, u.dep, stream, u.op.name(), entity)?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    #[test]
    fn csv_roundtrip_writes_all_files() {
        let ds = generate(GeneratorConfig::with_persons(120).activity(0.3)).unwrap();
        let dir = std::env::temp_dir().join(format!("snb-csv-test-{}", std::process::id()));
        let rows = write_csv(&ds, &dir).unwrap();
        assert!(rows > 0);
        for f in [
            "person.csv",
            "person_knows_person.csv",
            "forum.csv",
            "forum_hasMember_person.csv",
            "post.csv",
            "comment.csv",
            "person_likes_message.csv",
            "updates.csv",
        ] {
            let path = dir.join(f);
            let content = std::fs::read_to_string(&path).unwrap();
            assert!(content.lines().count() >= 1, "{f} missing header");
        }
        // Bulk persons + update-stream persons add up to the full set.
        let bulk_persons =
            std::fs::read_to_string(dir.join("person.csv")).unwrap().lines().count() - 1;
        let update_persons = std::fs::read_to_string(dir.join("updates.csv"))
            .unwrap()
            .lines()
            .filter(|l| l.contains("|addPerson|"))
            .count();
        assert_eq!(bulk_persons + update_persons, ds.persons.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quoting_is_rfc4180() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
