//! # snb-datagen
//!
//! From-scratch reproduction of the LDBC SNB data generator (DATAGEN, §2):
//! a correlated social-network graph with skewed value distributions,
//! plausible attribute/structure correlations, power-law friendship degrees,
//! time-consistent activity with trending-event spikes, deterministic
//! parallel generation, and the bulk/update-stream split consumed by the
//! workload driver.
//!
//! ```
//! use snb_datagen::{generate, GeneratorConfig};
//!
//! let ds = generate(GeneratorConfig::with_persons(200).threads(2)).unwrap();
//! assert_eq!(ds.persons.len(), 200);
//! assert!(!ds.posts.is_empty());
//! ```

pub mod activity;
pub mod config;
pub mod events;
pub mod friends;
pub mod person;
pub mod pipeline;
pub mod rdf;
pub mod serializer;
pub mod update_stream;

pub use config::GeneratorConfig;

use snb_core::schema::{Comment, Forum, ForumMembership, Knows, Like, Person, Post};
use snb_core::update::ScheduledUpdate;
use snb_core::{ForumId, MessageId, SnbResult};

/// A fully generated SNB dataset.
#[derive(Debug)]
pub struct Dataset {
    /// The configuration that produced it.
    pub config: GeneratorConfig,
    /// Persons, ids dense in creation order.
    pub persons: Vec<Person>,
    /// Friendship edges (`a < b`), sorted by creation date.
    pub knows: Vec<Knows>,
    /// Forums, ids dense in creation order.
    pub forums: Vec<Forum>,
    /// Forum memberships.
    pub memberships: Vec<ForumMembership>,
    /// Posts (including photos), ids shared with comments.
    pub posts: Vec<Post>,
    /// Comments.
    pub comments: Vec<Comment>,
    /// Likes.
    pub likes: Vec<Like>,
    /// Message id → (forum, is_comment) lookup, dense by message id.
    message_index: Vec<(u32, bool)>,
}

/// Run the full generation pipeline: persons → friendships → activity.
pub fn generate(config: GeneratorConfig) -> SnbResult<Dataset> {
    config.validate()?;
    let persons = person::generate_persons(&config);
    let knows = friends::generate_friendships(&config, &persons);
    let events = events::EventSchedule::generate(&config);
    let act = activity::generate_activity(&config, &persons, &knows, &events);

    let n_messages = act.posts.len() + act.comments.len();
    let mut message_index = vec![(0u32, false); n_messages];
    for p in &act.posts {
        message_index[p.id.index()] = (p.forum.raw() as u32, false);
    }
    for c in &act.comments {
        message_index[c.id.index()] = (c.forum.raw() as u32, true);
    }

    Ok(Dataset {
        config,
        persons,
        knows,
        forums: act.forums,
        memberships: act.memberships,
        posts: act.posts,
        comments: act.comments,
        likes: act.likes,
        message_index,
    })
}

/// Entity counts in the style of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    /// Total vertex count (persons + forums + messages).
    pub nodes: u64,
    /// Total edge count (knows + memberships + likes + authorship +
    /// containment + reply edges).
    pub edges: u64,
    /// Persons.
    pub persons: u64,
    /// Directed friendship rows (2 per undirected edge, as Table 3 counts).
    pub friends: u64,
    /// Messages (posts + comments).
    pub messages: u64,
    /// Forums.
    pub forums: u64,
}

impl Dataset {
    /// Forum containing `message` (post or comment).
    pub fn forum_of_message(&self, message: MessageId) -> ForumId {
        ForumId(self.message_index[message.index()].0 as u64)
    }

    /// Whether `message` is a comment (vs a post).
    pub fn is_comment(&self, message: MessageId) -> bool {
        self.message_index[message.index()].1
    }

    /// Every bulk message's owning forum, dense by message id. A sharded
    /// client seeds its routing directory from this: likes name only a
    /// message, so routing them to the shard owning the message's forum
    /// tree needs the same message → forum lookup the update-stream
    /// builder uses for [`snb_core::update::StreamKey`].
    pub fn message_routes(&self) -> impl Iterator<Item = (MessageId, ForumId)> + '_ {
        self.message_index
            .iter()
            .enumerate()
            .map(|(i, &(forum, _))| (MessageId(i as u64), ForumId(forum as u64)))
    }

    /// Total message count.
    pub fn message_count(&self) -> usize {
        self.message_index.len()
    }

    /// The update stream: every entity created after the split, time-ordered
    /// with dependency metadata.
    pub fn update_stream(&self) -> Vec<ScheduledUpdate> {
        update_stream::build_update_stream(self)
    }

    /// Table 3-style statistics.
    pub fn stats(&self) -> DatasetStats {
        let messages = self.message_count() as u64;
        let nodes = self.persons.len() as u64 + self.forums.len() as u64 + messages;
        // Edge kinds: knows (directed rows), hasMember, likes, hasCreator,
        // containerOf/replyOf, plus person→interest edges.
        let interest_edges: u64 = self.persons.iter().map(|p| p.interests.len() as u64).sum();
        let edges = 2 * self.knows.len() as u64
            + self.memberships.len() as u64
            + self.likes.len() as u64
            + messages // hasCreator
            + messages // containerOf / replyOf
            + interest_edges;
        DatasetStats {
            nodes,
            edges,
            persons: self.persons.len() as u64,
            friends: 2 * self.knows.len() as u64,
            messages,
            forums: self.forums.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_generation() {
        let ds = generate(GeneratorConfig::with_persons(300).activity(0.4)).unwrap();
        assert_eq!(ds.persons.len(), 300);
        assert!(!ds.knows.is_empty());
        assert!(!ds.posts.is_empty());
        assert!(!ds.comments.is_empty());
        assert!(!ds.likes.is_empty());
        let stats = ds.stats();
        assert_eq!(stats.persons, 300);
        assert!(stats.messages > stats.persons, "message-dominated dataset");
        assert!(stats.edges > stats.nodes);
    }

    #[test]
    fn invalid_config_is_rejected() {
        assert!(generate(GeneratorConfig::with_persons(1)).is_err());
    }

    #[test]
    fn message_index_is_consistent() {
        let ds = generate(GeneratorConfig::with_persons(200).activity(0.4)).unwrap();
        for p in &ds.posts {
            assert_eq!(ds.forum_of_message(p.id), p.forum);
            assert!(!ds.is_comment(p.id));
        }
        for c in &ds.comments {
            assert_eq!(ds.forum_of_message(c.id), c.forum);
            assert!(ds.is_comment(c.id));
        }
    }

    #[test]
    fn dataset_is_fully_deterministic_across_threads() {
        let a = generate(GeneratorConfig::with_persons(400).activity(0.3).threads(1)).unwrap();
        let b = generate(GeneratorConfig::with_persons(400).activity(0.3).threads(8)).unwrap();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.knows, b.knows);
        for (x, y) in a.posts.iter().zip(&b.posts) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.content, y.content);
        }
        for (x, y) in a.likes.iter().zip(&b.likes) {
            assert_eq!(x.person, y.person);
            assert_eq!(x.message, y.message);
        }
    }

    #[test]
    fn messages_per_person_tracks_degree_ratio() {
        // Table 3 shape: messages per person ≈ 6.5 × average degree at full
        // activity scale; we verify the same order of magnitude.
        let ds = generate(GeneratorConfig::with_persons(1_000)).unwrap();
        let stats = ds.stats();
        let avg_degree = stats.friends as f64 / stats.persons as f64;
        let msgs_per_person = stats.messages as f64 / stats.persons as f64;
        let ratio = msgs_per_person / avg_degree;
        assert!((2.0..12.0).contains(&ratio), "messages/person per degree ratio {ratio:.1}");
    }
}
