//! Deterministic parallel execution.
//!
//! The original DATAGEN runs on Hadoop; its headline engineering property is
//! that the generated dataset is identical "regardless \[of\] the Hadoop
//! configuration parameters (#node, #map and #reduce tasks)" (§2.4). The
//! equivalent here: work is partitioned into *fixed-size blocks* whose
//! boundaries depend only on the item count — never on the thread count —
//! and every random draw comes from a per-entity RNG stream. Threads are
//! merely a pool pulling blocks off a shared counter; results are collected
//! by block index, so output order is deterministic too.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Split `n` items into consecutive blocks of at most `block_size`.
pub fn blocks(n: usize, block_size: usize) -> Vec<Range<usize>> {
    assert!(block_size > 0);
    let mut out = Vec::with_capacity(n.div_ceil(block_size));
    let mut start = 0;
    while start < n {
        let end = (start + block_size).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// Run `f` over each block on `threads` workers; returns per-block results
/// in block order. `f` must be deterministic given the block range (use
/// per-entity RNG streams inside).
pub fn run_blocks<T, F>(n: usize, block_size: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = blocks(n, block_size);
    let n_blocks = ranges.len();
    if n_blocks == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n_blocks);
    if threads == 1 {
        return ranges.into_iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_blocks).map(|_| None).collect();
    let slots_ptr = SlotsPtr(slots.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let ranges = &ranges;
            let next = &next;
            let slots_ptr = &slots_ptr;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_blocks {
                    break;
                }
                let result = f(ranges[i].clone());
                // SAFETY: each block index is claimed exactly once via the
                // atomic counter, so no two threads write the same slot, and
                // the scope joins all threads before `slots` is read.
                unsafe { slots_ptr.0.add(i).write(Some(result)) };
            });
        }
    });

    slots.into_iter().map(|s| s.expect("all blocks completed")).collect()
}

/// Send/Sync wrapper for the disjoint-slot writes above.
struct SlotsPtr<T>(*mut Option<T>);
// SAFETY: writes target disjoint indices (unique atomic claim per block) and
// the thread scope joins before reads.
unsafe impl<T: Send> Send for SlotsPtr<T> {}
unsafe impl<T: Send> Sync for SlotsPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_cover_exactly() {
        let bs = blocks(10, 3);
        assert_eq!(bs, vec![0..3, 3..6, 6..9, 9..10]);
        assert!(blocks(0, 3).is_empty());
        assert_eq!(blocks(3, 3), vec![0..3]);
    }

    #[test]
    fn results_arrive_in_block_order() {
        let out = run_blocks(100, 7, 4, |r| r.start);
        let expect: Vec<usize> = blocks(100, 7).into_iter().map(|r| r.start).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work =
            |r: Range<usize>| -> u64 { r.map(|i| (i as u64).wrapping_mul(2_654_435_761)).sum() };
        let a = run_blocks(10_000, 64, 1, work);
        let b = run_blocks(10_000, 64, 4, work);
        let c = run_blocks(10_000, 64, 13, work);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn single_item_single_block() {
        let out = run_blocks(1, 100, 8, |r| r.len());
        assert_eq!(out, vec![1]);
    }
}
