//! Friendship ("knows") edge generation — §2.3.
//!
//! The Homophily Principle is realized by a multi-stage edge-generation
//! process over correlation dimensions: (1) where people studied, (2) their
//! interests, (3) a random dimension reproducing the inhomogeneity of real
//! graphs, with 45 % / 45 % / 10 % of each person's target degree assigned
//! to the three stages. Each stage re-sorts persons by its dimension key and
//! scans sequentially with a sliding window, picking friends at a
//! geometrically distributed distance; the probability of befriending
//! someone outside the window is zero by construction.
//!
//! The study-location key packs, exactly as the paper specifies, "the
//! Z-order location of the university's city (bits 31-24), the university
//! ID (bits 23-12), and the studied year (bits 11-0)".
//!
//! Parallelism follows the Hadoop design deterministically: persons are cut
//! into fixed-size blocks (boundaries independent of thread count); edges
//! are confined to a block, the per-stage analogue of data "dropped from
//! the window". The three stages use different sort orders, so block cuts
//! fall on different person sets and do not globally partition the graph.

use crate::config::GeneratorConfig;
use crate::pipeline::run_blocks;
use snb_core::degree::DegreeModel;
use snb_core::dict::Dictionaries;
use snb_core::rng::{Rng, Stream};
use snb_core::schema::{Knows, Person};
use snb_core::time::MILLIS_PER_DAY;
use std::collections::HashSet;

/// Success probability of the geometric in-window distance distribution;
/// mean distance ≈ (1-p)/p ≈ 11 slots.
const GEOMETRIC_P: f64 = 0.085;

/// Generate the friendship edge set. Edges are returned with `a < b` and
/// sorted by `(creation_date, a, b)`.
pub fn generate_friendships(config: &GeneratorConfig, persons: &[Person]) -> Vec<Knows> {
    let n = persons.len();
    let model = DegreeModel::facebook();

    // Target degree and the 45/45/10 split per person.
    let budgets: Vec<[u32; 3]> = persons
        .iter()
        .map(|p| {
            let mut rng = Rng::for_entity(config.seed, Stream::Degree, p.id.raw());
            let t = model.target_degree(&mut rng, config.n_persons);
            let d1 = t * 45 / 100;
            let d2 = t * 45 / 100;
            [d1, d2, t - d1 - d2]
        })
        .collect();

    let mut all_edges: Vec<(u64, u64)> = Vec::new();
    for dim in 0..3u8 {
        let order = sorted_order(config, persons, dim);
        let dim_edges = run_blocks(n, config.block_size, config.threads, |range| {
            window_pass(config, persons, &budgets, &order, dim, range)
        });
        all_edges.extend(dim_edges.into_iter().flatten());
    }

    // Normalize, deduplicate across dimensions, and assign creation dates.
    let mut seen: HashSet<(u64, u64)> = HashSet::with_capacity(all_edges.len());
    let mut knows = Vec::with_capacity(all_edges.len());
    for (x, y) in all_edges {
        let (a, b) = if x < y { (x, y) } else { (y, x) };
        if a == b || !seen.insert((a, b)) {
            continue;
        }
        knows.push(make_edge(config, persons, a, b));
    }
    knows.sort_by_key(|k| (k.creation_date, k.a, k.b));
    knows
}

/// Friendship creation date: after both accounts exist plus `T_SAFE`
/// (Table 1 time ordering + §4.2's safe-time guarantee), then an
/// exponentially distributed delay.
fn make_edge(config: &GeneratorConfig, persons: &[Person], a: u64, b: u64) -> Knows {
    let n = persons.len() as u64;
    let mut rng = Rng::for_entity(config.seed, Stream::Friends, a * n + b);
    let earliest = persons[a as usize]
        .creation_date
        .max(persons[b as usize].creation_date)
        .plus_millis(config.t_safe_millis);
    let latest = config.end.plus_millis(-MILLIS_PER_DAY);
    let date = if earliest >= latest {
        latest
    } else {
        let span = latest.since(earliest) as f64;
        // Mean delay: a quarter of the available span.
        let delay = rng.exponential(4.0 / span).min(span - 1.0);
        earliest.plus_millis(delay as i64)
    };
    Knows { a: persons[a as usize].id, b: persons[b as usize].id, creation_date: date }
}

/// Person indices sorted by the dimension key (ties broken by person id for
/// determinism).
fn sorted_order(config: &GeneratorConfig, persons: &[Person], dim: u8) -> Vec<u32> {
    let mut keyed: Vec<(u64, u32)> = persons
        .iter()
        .enumerate()
        .map(|(i, p)| (dimension_key(config, p, dim), i as u32))
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// The per-dimension sort key.
fn dimension_key(config: &GeneratorConfig, p: &Person, dim: u8) -> u64 {
    let dicts = Dictionaries::global();
    match dim {
        0 => {
            // Study location: Z-order(city) | university | class year, in
            // the paper's exact bit layout. Persons without a university
            // sort by home city with a sentinel university id.
            let (z, uni, year) = match p.study_at {
                Some(s) => {
                    let u = dicts.orgs.university(s.university.index());
                    (
                        dicts.places.city_zorder(u.city) as u64,
                        s.university.raw() & 0xFFF,
                        (s.class_year as u64).saturating_sub(1950) & 0xFFF,
                    )
                }
                None => (dicts.places.city_zorder(p.city) as u64, 0xFFF, p.id.raw() & 0xFFF),
            };
            (z << 24) | (uni << 12) | year
        }
        1 => {
            // Interests: group by the person's primary interest tag, then a
            // stable per-person scatter within the tag cluster.
            let main_tag = p.interests.first().map(|t| t.raw()).unwrap_or(u32::MAX as u64);
            (main_tag << 32) | (splitmix(p.id.raw() ^ config.seed) & 0xFFFF_FFFF)
        }
        _ => splitmix(p.id.raw().wrapping_add(config.seed).wrapping_mul(0x9E37_79B9)),
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One sliding-window pass over a block of the sorted order; returns raw
/// `(person_index, person_index)` pairs.
fn window_pass(
    config: &GeneratorConfig,
    persons: &[Person],
    budgets: &[[u32; 3]],
    order: &[u32],
    dim: u8,
    range: std::ops::Range<usize>,
) -> Vec<(u64, u64)> {
    let mut remaining: Vec<u32> =
        range.clone().map(|pos| budgets[order[pos] as usize][dim as usize]).collect();
    let mut connected: HashSet<(u32, u32)> = HashSet::new();
    let mut edges = Vec::new();
    let window = config.window_size;

    for i in range.clone() {
        let li = i - range.start;
        if remaining[li] == 0 {
            continue;
        }
        let pid = persons[order[i] as usize].id.raw();
        let mut rng = Rng::for_entity(config.seed, Stream::Friends, ((dim as u64) << 56) | pid);
        let mut attempts = remaining[li] as usize * 4 + 8;
        while remaining[li] > 0 && attempts > 0 {
            attempts -= 1;
            let gap = 1 + rng.geometric(GEOMETRIC_P) as usize;
            let j = i + gap;
            if gap > window || j >= range.end {
                continue;
            }
            let lj = j - range.start;
            if remaining[lj] == 0 || !connected.insert((li as u32, lj as u32)) {
                continue;
            }
            remaining[li] -= 1;
            remaining[lj] -= 1;
            edges.push((order[i] as u64, order[j] as u64));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::generate_persons;

    fn dataset(n: u64) -> (GeneratorConfig, Vec<Person>, Vec<Knows>) {
        let config = GeneratorConfig::with_persons(n);
        let persons = generate_persons(&config);
        let knows = generate_friendships(&config, &persons);
        (config, persons, knows)
    }

    #[test]
    fn edges_are_normalized_and_unique() {
        let (_, _, knows) = dataset(800);
        let mut seen = HashSet::new();
        for k in &knows {
            assert!(k.a < k.b, "normalized");
            assert!(seen.insert((k.a, k.b)), "duplicate edge {k:?}");
        }
    }

    #[test]
    fn average_degree_tracks_paper_formula() {
        let (config, persons, knows) = dataset(2_000);
        let avg = 2.0 * knows.len() as f64 / persons.len() as f64;
        let target = DegreeModel::avg_degree_for(config.n_persons);
        // Window/block truncation loses some budget; require 55-100 %.
        assert!(
            avg > 0.55 * target && avg <= 1.02 * target,
            "avg degree {avg:.1} vs target {target:.1}"
        );
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let (_, persons, knows) = dataset(2_000);
        let mut deg = vec![0u32; persons.len()];
        for k in &knows {
            deg[k.a.index()] += 1;
            deg[k.b.index()] += 1;
        }
        let mean = deg.iter().map(|&d| d as f64).sum::<f64>() / deg.len() as f64;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max > 4.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn friendship_dates_respect_account_creation_and_t_safe() {
        let (config, persons, knows) = dataset(600);
        for k in &knows {
            let pa = &persons[k.a.index()];
            let pb = &persons[k.b.index()];
            let earliest = pa.creation_date.max(pb.creation_date).plus_millis(config.t_safe_millis);
            assert!(
                k.creation_date >= earliest.min(config.end.plus_millis(-MILLIS_PER_DAY)),
                "edge too early"
            );
            assert!(k.creation_date < config.end);
        }
    }

    #[test]
    fn generation_is_thread_count_independent() {
        let config1 = GeneratorConfig::with_persons(1_500).threads(1);
        let config4 = GeneratorConfig::with_persons(1_500).threads(4);
        let persons = generate_persons(&config1);
        let a = generate_friendships(&config1, &persons);
        let b = generate_friendships(&config4, &persons);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn homophily_friends_share_attributes() {
        // Friends should share a country or an interest far more often than
        // random pairs do.
        let (_, persons, knows) = dataset(2_000);
        let similarity = |a: &Person, b: &Person| -> bool {
            a.country == b.country || a.interests.iter().any(|t| b.interests.contains(t))
        };
        let friend_sim = knows
            .iter()
            .filter(|k| similarity(&persons[k.a.index()], &persons[k.b.index()]))
            .count() as f64
            / knows.len() as f64;
        // Random-pair baseline.
        let mut rng = Rng::for_entity(123, Stream::Misc, 0);
        let m = 5_000;
        let rand_sim = (0..m)
            .filter(|_| {
                let a = &persons[rng.index(persons.len())];
                let b = &persons[rng.index(persons.len())];
                similarity(a, b)
            })
            .count() as f64
            / m as f64;
        assert!(
            friend_sim > rand_sim + 0.10,
            "homophily too weak: friends {friend_sim:.2} vs random {rand_sim:.2}"
        );
    }

    #[test]
    fn study_location_key_layout_matches_paper() {
        let config = GeneratorConfig::with_persons(100);
        let persons = generate_persons(&config);
        let p = persons.iter().find(|p| p.study_at.is_some()).unwrap();
        let key = dimension_key(&config, p, 0);
        let s = p.study_at.unwrap();
        assert_eq!((key >> 12) & 0xFFF, s.university.raw() & 0xFFF, "bits 23-12 university");
        assert_eq!(key & 0xFFF, (s.class_year as u64 - 1950) & 0xFFF, "bits 11-0 year");
        assert!(key >> 24 <= 0xFF, "bits 31-24 z-order");
    }
}
