//! Generator configuration.

use snb_core::time::{SimTime, MILLIS_PER_DAY};
use snb_core::{SnbError, SnbResult};

/// Configuration of one DATAGEN run.
///
/// The paper's scale factor (SF) is defined as gigabytes of CSV; the scale
/// knob underneath is the number of persons (§2.4: "The scale is determined
/// by setting the amount of persons in the network"). We expose persons
/// directly and provide [`GeneratorConfig::scale_factor`] with the paper's
/// persons-per-SF ratio (Table 3: SF30 has 0.18 M persons ⇒ ≈ 6 000
/// persons/SF at small scale).
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Number of persons in the network.
    pub n_persons: u64,
    /// Master seed; two runs with equal config produce identical datasets,
    /// regardless of `threads`.
    pub seed: u64,
    /// Worker threads for the parallel generation phases.
    pub threads: usize,
    /// Enable event-driven (spiking) post-time generation (§2.2, Fig. 2a).
    pub event_driven: bool,
    /// Simulation window start.
    pub start: SimTime,
    /// Simulation window end.
    pub end: SimTime,
    /// Bulk/update split point; data after this becomes the update stream.
    pub update_split: SimTime,
    /// `T_SAFE` (§4.2, Windowed Execution): guaranteed minimum simulation
    /// time between a person-level dependency (account creation, friendship,
    /// membership) and the first dependent activity.
    pub t_safe_millis: i64,
    /// Multiplier on activity volume (posts per person-degree). 1.0
    /// approximates the paper's messages-per-person ratio; tests use less.
    pub activity_scale: f64,
    /// Sliding-window size for friendship generation (§2.3).
    pub window_size: usize,
    /// Fixed block size for deterministic parallel processing: block
    /// boundaries depend only on the dataset, never on `threads`.
    pub block_size: usize,
}

impl GeneratorConfig {
    /// Config for a given number of persons with defaults everywhere else.
    pub fn with_persons(n_persons: u64) -> GeneratorConfig {
        GeneratorConfig {
            n_persons,
            seed: 1,
            threads: 1,
            event_driven: true,
            start: SimTime::SIM_START,
            end: SimTime::SIM_END,
            update_split: SimTime::UPDATE_SPLIT,
            t_safe_millis: 10 * MILLIS_PER_DAY,
            activity_scale: 1.0,
            window_size: 128,
            block_size: 4096,
        }
    }

    /// Config matching the paper's persons-per-SF ratio.
    pub fn scale_factor(sf: f64) -> GeneratorConfig {
        GeneratorConfig::with_persons((sf * 6_000.0).round().max(50.0) as u64)
    }

    /// Builder-style seed override.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style thread-count override.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style activity-volume override.
    pub fn activity(mut self, scale: f64) -> Self {
        self.activity_scale = scale;
        self
    }

    /// Builder-style event-driven toggle.
    pub fn events(mut self, on: bool) -> Self {
        self.event_driven = on;
        self
    }

    /// Validate invariants before generation.
    pub fn validate(&self) -> SnbResult<()> {
        if self.n_persons < 2 {
            return Err(SnbError::Config("need at least 2 persons".into()));
        }
        if !(self.start < self.update_split && self.update_split < self.end) {
            return Err(SnbError::Config("require start < update_split < end".into()));
        }
        if self.t_safe_millis <= 0 {
            return Err(SnbError::Config("t_safe must be positive".into()));
        }
        if self.window_size < 2 || self.block_size < 2 * self.window_size {
            return Err(SnbError::Config("block_size must be at least twice window_size".into()));
        }
        if self.activity_scale <= 0.0 || self.activity_scale.is_nan() {
            return Err(SnbError::Config("activity_scale must be positive".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        GeneratorConfig::with_persons(100).validate().unwrap();
        GeneratorConfig::scale_factor(0.1).validate().unwrap();
    }

    #[test]
    fn scale_factor_maps_to_persons() {
        assert_eq!(GeneratorConfig::scale_factor(1.0).n_persons, 6_000);
        assert_eq!(GeneratorConfig::scale_factor(0.1).n_persons, 600);
        // Tiny SFs are clamped to a usable minimum.
        assert_eq!(GeneratorConfig::scale_factor(0.0001).n_persons, 50);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(GeneratorConfig::with_persons(1).validate().is_err());
        let mut c = GeneratorConfig::with_persons(100);
        c.update_split = c.end;
        assert!(c.validate().is_err());
        let mut c = GeneratorConfig::with_persons(100);
        c.block_size = c.window_size;
        assert!(c.validate().is_err());
        let mut c = GeneratorConfig::with_persons(100);
        c.activity_scale = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_apply() {
        let c = GeneratorConfig::with_persons(10).seed(9).threads(4).activity(0.5).events(false);
        assert_eq!(c.seed, 9);
        assert_eq!(c.threads, 4);
        assert_eq!(c.activity_scale, 0.5);
        assert!(!c.event_driven);
    }
}
