//! N-Triples (RDF) serialization.
//!
//! §2.4: "DATAGEN can also generate RDF data in Ntriple format, which is
//! much more verbose." The paper's footnote 3 specifies the URI scheme:
//! "When generating URIs that identify entities, we ensure that URIs for
//! the same kind of entity (e.g. person) have an order that follows the
//! time dimension. This is done by encoding the timestamp (e.g. when the
//! user joined the network) in the URI string in an order-preserving way.
//! This is important for URI compression in RDF systems."
//!
//! We realize that with zero-padded fixed-width decimal timestamps embedded
//! in each URI: lexicographic URI order == creation-time order.

use crate::Dataset;
use snb_core::time::SimTime;
use snb_core::SnbResult;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

const BASE: &str = "http://ldbc.eu/snb";

/// Order-preserving URI for an entity: fixed-width timestamp then id.
/// Lexicographic comparison of two URIs of the same kind orders them by
/// creation time (ties by id).
pub fn entity_uri(kind: &str, created: SimTime, id: u64) -> String {
    // 13 decimal digits cover the simulation epoch range; zero-padding makes
    // the encoding order-preserving under string comparison.
    format!("<{BASE}/{kind}/{:013}-{id}>", created.millis())
}

fn literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

fn date_literal(t: SimTime) -> String {
    format!("\"{t}\"^^<http://www.w3.org/2001/XMLSchema#dateTime>")
}

/// Write the bulk part of `ds` as N-Triples into `path`. Returns the number
/// of triples written.
pub fn write_ntriples(ds: &Dataset, path: &Path) -> SnbResult<u64> {
    let mut w = BufWriter::new(File::create(path)?);
    let split = ds.config.update_split;
    let mut n = 0u64;
    let mut triple = |w: &mut BufWriter<File>, s: &str, p: &str, o: &str| -> SnbResult<()> {
        writeln!(w, "{s} <{BASE}/vocab#{p}> {o} .")?;
        n += 1;
        Ok(())
    };

    let person_uri = |id: snb_core::PersonId| {
        entity_uri("person", ds.persons[id.index()].creation_date, id.raw())
    };
    let forum_uri =
        |id: snb_core::ForumId| entity_uri("forum", ds.forums[id.index()].creation_date, id.raw());

    for p in ds.persons.iter().filter(|p| p.creation_date <= split) {
        let s = person_uri(p.id);
        triple(&mut w, &s, "firstName", &literal(p.first_name))?;
        triple(&mut w, &s, "lastName", &literal(p.last_name))?;
        triple(&mut w, &s, "gender", &literal(p.gender.as_str()))?;
        triple(&mut w, &s, "birthday", &date_literal(p.birthday))?;
        triple(&mut w, &s, "creationDate", &date_literal(p.creation_date))?;
        for t in &p.interests {
            triple(&mut w, &s, "hasInterest", &format!("<{BASE}/tag/{}>", t.raw()))?;
        }
    }
    for k in ds.knows.iter().filter(|k| k.creation_date <= split) {
        triple(&mut w, &person_uri(k.a), "knows", &person_uri(k.b))?;
    }
    for f in ds.forums.iter().filter(|f| f.creation_date <= split) {
        let s = forum_uri(f.id);
        triple(&mut w, &s, "title", &literal(&f.title))?;
        triple(&mut w, &s, "hasModerator", &person_uri(f.moderator))?;
        triple(&mut w, &s, "creationDate", &date_literal(f.creation_date))?;
    }
    for m in ds.memberships.iter().filter(|m| m.join_date <= split) {
        triple(&mut w, &forum_uri(m.forum), "hasMember", &person_uri(m.person))?;
    }
    for p in ds.posts.iter().filter(|p| p.creation_date <= split) {
        let s = entity_uri("message", p.creation_date, p.id.raw());
        triple(&mut w, &s, "hasCreator", &person_uri(p.author))?;
        triple(&mut w, &forum_uri(p.forum), "containerOf", &s)?;
        triple(&mut w, &s, "creationDate", &date_literal(p.creation_date))?;
        if !p.content.is_empty() {
            triple(&mut w, &s, "content", &literal(&p.content))?;
        }
        for t in &p.tags {
            triple(&mut w, &s, "hasTag", &format!("<{BASE}/tag/{}>", t.raw()))?;
        }
    }
    let message_uri =
        |id: snb_core::MessageId, when: SimTime| entity_uri("message", when, id.raw());
    let mut msg_created: Vec<SimTime> = vec![SimTime(0); ds.message_count()];
    for p in &ds.posts {
        msg_created[p.id.index()] = p.creation_date;
    }
    for c in &ds.comments {
        msg_created[c.id.index()] = c.creation_date;
    }
    for c in ds.comments.iter().filter(|c| c.creation_date <= split) {
        let s = message_uri(c.id, c.creation_date);
        triple(&mut w, &s, "hasCreator", &person_uri(c.author))?;
        triple(&mut w, &s, "replyOf", &message_uri(c.reply_to, msg_created[c.reply_to.index()]))?;
        triple(&mut w, &s, "creationDate", &date_literal(c.creation_date))?;
    }
    for l in ds.likes.iter().filter(|l| l.creation_date <= split) {
        triple(
            &mut w,
            &person_uri(l.person),
            "likes",
            &message_uri(l.message, msg_created[l.message.index()]),
        )?;
    }
    w.flush()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    #[test]
    fn uris_are_order_preserving() {
        // Footnote 3's property: lexicographic URI order follows time.
        let a = entity_uri("person", SimTime(1_000), 5);
        let b = entity_uri("person", SimTime(2_000), 3);
        let c = entity_uri("person", SimTime(20_000), 1);
        assert!(a < b && b < c);
        // Equal widths regardless of magnitude.
        let early = entity_uri("message", SimTime(1), 0);
        let late = entity_uri("message", SimTime(9_999_999_999_999), 0);
        assert!(early < late);
    }

    #[test]
    fn literals_are_escaped() {
        assert_eq!(literal("plain"), "\"plain\"");
        assert_eq!(literal("say \"hi\"\n"), "\"say \\\"hi\\\"\\n\"");
        assert_eq!(literal("back\\slash"), "\"back\\\\slash\"");
    }

    #[test]
    fn ntriples_output_is_wellformed() {
        let ds = generate(GeneratorConfig::with_persons(80).activity(0.3)).unwrap();
        let path = std::env::temp_dir().join(format!("snb-nt-{}.nt", std::process::id()));
        let n = write_ntriples(&ds, &path).unwrap();
        assert!(n > 0);
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len() as u64, n);
        for line in &lines {
            assert!(line.ends_with(" ."), "triple missing terminator: {line}");
            assert!(line.starts_with('<'), "subject must be a URI: {line}");
            let parts: Vec<&str> = line.splitn(3, ' ').collect();
            assert_eq!(parts.len(), 3);
            assert!(parts[1].starts_with('<') && parts[1].ends_with('>'));
        }
        // Message URIs appear in creation order when sorted -> ids ascend.
        let mut message_uris: Vec<&str> = lines
            .iter()
            .map(|l| l.split(' ').next().unwrap())
            .filter(|s| s.contains("/message/"))
            .collect();
        message_uris.sort_unstable();
        message_uris.dedup();
        // Sorted lexicographically == sorted by embedded timestamp.
        let stamps: Vec<&str> =
            message_uris.iter().map(|u| u.rsplit('/').next().unwrap()).collect();
        for w in stamps.windows(2) {
            assert!(w[0] <= w[1]);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rdf_is_more_verbose_than_csv() {
        // §2.4: "RDF data in Ntriple format, which is much more verbose".
        let ds = generate(GeneratorConfig::with_persons(80).activity(0.3)).unwrap();
        let dir = std::env::temp_dir().join(format!("snb-verbosity-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        crate::serializer::write_csv(&ds, &dir).unwrap();
        let csv_bytes: u64 =
            std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap().metadata().unwrap().len()).sum();
        let nt = dir.join("data.nt");
        write_ntriples(&ds, &nt).unwrap();
        let nt_bytes = std::fs::metadata(&nt).unwrap().len();
        assert!(nt_bytes > csv_bytes, "nt {nt_bytes} vs csv {csv_bytes}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
