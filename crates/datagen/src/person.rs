//! Person generation with correlated attributes (§2.1, Table 1).
//!
//! The correlation chain implemented here:
//! `location → firstName/lastName` (gendered), `location → university,
//! company, languages`, `employer → email`, `location → interests`,
//! `birthDate < createdDate`. Identifier order follows creation time
//! (footnote 3 of the paper: ids are assigned "in an order that follows the
//! time dimension"), which we realize by drawing creation dates first,
//! sorting, and assigning dense ids in date order.

use crate::config::GeneratorConfig;
use crate::pipeline::run_blocks;
use snb_core::dict::names::Gender;
use snb_core::dict::Dictionaries;
use snb_core::rng::{Rng, Stream};
use snb_core::schema::{Person, StudyAt, WorkAt, BROWSERS};
use snb_core::time::{SimTime, MILLIS_PER_DAY};
use snb_core::{OrganisationId, PersonId, TagId};

/// Distinguishes the date-drawing stream from the attribute stream for the
/// same person index.
const DATE_STREAM_BIT: u64 = 1 << 63;

/// Generate all persons, ids dense in creation-date order.
pub fn generate_persons(config: &GeneratorConfig) -> Vec<Person> {
    let n = config.n_persons as usize;
    let dicts = Dictionaries::global();

    // Phase A: creation dates. Uniform over the simulation window minus a
    // small tail (late joiners could otherwise have no time to act); ~11 %
    // of persons land after the update split and become U1 operations,
    // matching the paper's SF10 stream (6,889 user ops vs 32.6 M forum ops).
    let span = config.end.since(config.start) - 30 * MILLIS_PER_DAY;
    let mut dates: Vec<SimTime> = run_blocks(n, config.block_size, config.threads, |range| {
        range
            .map(|i| {
                let mut rng =
                    Rng::for_entity(config.seed, Stream::PersonAttrs, DATE_STREAM_BIT | i as u64);
                config.start.plus_millis((rng.next_f64() * span as f64) as i64)
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect();
    dates.sort_unstable();

    // Phase B: attributes per final id.
    let dates = &dates;
    run_blocks(n, config.block_size, config.threads, move |range| {
        range.map(|r| generate_one(config, dicts, PersonId(r as u64), dates[r])).collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

fn generate_one(
    config: &GeneratorConfig,
    dicts: &Dictionaries,
    id: PersonId,
    creation_date: SimTime,
) -> Person {
    let mut rng = Rng::for_entity(config.seed, Stream::PersonAttrs, id.raw());

    let country = dicts.places.sample_country(&mut rng);
    let city = dicts.places.sample_city(&mut rng, country);
    let gender = if rng.chance(0.5) { Gender::Male } else { Gender::Female };
    let first_name = dicts.names.first_name(&mut rng, country, gender);
    let last_name = dicts.names.last_name(&mut rng, country);

    // Born 15-60 years before the network starts; always before account
    // creation (Table 1: person.birthDate < person.createdDate).
    let birth_year = 1950 + rng.range_i64(0, 44);
    let birthday = SimTime::from_ymd(birth_year, 1 + rng.below(12) as u8, 1 + rng.below(28) as u8);

    // Languages: home-country languages, plus English for a majority.
    let mut languages: Vec<&'static str> = dicts.places.country(country).languages.to_vec();
    if !languages.contains(&"en") && rng.chance(0.6) {
        languages.push("en");
    }

    // Education & employment; both are location-correlated.
    let study_at = rng.chance(0.8).then(|| {
        let university = dicts.orgs.sample_university(&mut rng, country);
        let class_year = (birth_year + 18 + rng.range_i64(0, 7)) as i32;
        StudyAt { university: OrganisationId(university as u64), class_year }
    });
    let n_jobs = rng.below(3) as usize;
    let mut work_at = Vec::with_capacity(n_jobs);
    for _ in 0..n_jobs {
        let company = dicts.orgs.sample_company(&mut rng, country);
        if work_at.iter().any(|w: &WorkAt| w.company.raw() == company as u64) {
            continue;
        }
        let work_from = (birth_year + 20 + rng.range_i64(0, 20)).min(2012) as i32;
        work_at.push(WorkAt { company: OrganisationId(company as u64), work_from });
    }
    work_at.sort_by_key(|w| (w.work_from, w.company.raw()));

    // Emails from employer/university domains (Table 1: person.employer
    // determines person.email).
    let mut emails = Vec::new();
    let handle = format!("{}.{}{}", first_name.to_lowercase(), last_name.to_lowercase(), id.raw());
    if let Some(w) = work_at.first() {
        let domain = slug(&dicts.orgs.company(w.company.index()).name);
        emails.push(format!("{handle}@{domain}.com"));
    }
    if let Some(s) = study_at {
        let domain = slug(&dicts.orgs.university(s.university.index()).name);
        emails.push(format!("{handle}@{domain}.edu"));
    }
    if emails.is_empty() {
        emails.push(format!("{handle}@mail.example.org"));
    }

    // Interests: skewed count, location-correlated tags.
    let mut irng = Rng::for_entity(config.seed, Stream::Interests, id.raw());
    let n_interests = (3 + irng.exponential(0.35) as usize).min(24);
    let interests: Vec<TagId> = dicts
        .tags
        .sample_interest_set(&mut irng, country, n_interests)
        .into_iter()
        .map(|t| TagId(t as u64))
        .collect();

    let location_ip =
        format!("{}.{}.{}.{}", 20 + country, rng.below(256), rng.below(256), 1 + rng.below(254));
    let browser = BROWSERS[rng.skewed_index(BROWSERS.len(), 0.7)];

    Person {
        id,
        first_name,
        last_name,
        gender,
        birthday,
        creation_date,
        city,
        country,
        browser,
        location_ip,
        languages,
        emails,
        interests,
        study_at,
        work_at,
    }
}

fn slug(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii_alphanumeric() || *c == ' ')
        .collect::<String>()
        .to_lowercase()
        .replace(' ', "-")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: u64) -> GeneratorConfig {
        GeneratorConfig::with_persons(n)
    }

    #[test]
    fn ids_are_dense_and_date_ordered() {
        let persons = generate_persons(&config(500));
        assert_eq!(persons.len(), 500);
        for (i, p) in persons.iter().enumerate() {
            assert_eq!(p.id.raw(), i as u64);
        }
        for w in persons.windows(2) {
            assert!(w[0].creation_date <= w[1].creation_date);
        }
    }

    #[test]
    fn generation_is_thread_count_independent() {
        let a = generate_persons(&config(300).threads(1));
        let b = generate_persons(&config(300).threads(4));
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.first_name, pb.first_name);
            assert_eq!(pa.creation_date, pb.creation_date);
            assert_eq!(pa.country, pb.country);
            assert_eq!(pa.interests, pb.interests);
            assert_eq!(pa.emails, pb.emails);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_persons(&config(100).seed(1));
        let b = generate_persons(&config(100).seed(2));
        let same = a.iter().zip(&b).filter(|(x, y)| x.first_name == y.first_name).count();
        assert!(same < 60, "only coincidental matches, got {same}");
    }

    #[test]
    fn birthday_precedes_creation() {
        for p in generate_persons(&config(300)) {
            assert!(p.birthday < p.creation_date);
        }
    }

    #[test]
    fn attributes_are_location_correlated() {
        let persons = generate_persons(&config(2_000));
        let dicts = Dictionaries::global();
        // Most persons study in their home country.
        let with_uni: Vec<&Person> = persons.iter().filter(|p| p.study_at.is_some()).collect();
        assert!(!with_uni.is_empty());
        let local = with_uni
            .iter()
            .filter(|p| {
                dicts.orgs.university(p.study_at.unwrap().university.index()).country == p.country
            })
            .count();
        assert!(local as f64 / with_uni.len() as f64 > 0.8);
        // City always belongs to home country.
        for p in &persons {
            assert_eq!(dicts.places.city(p.city).country, p.country);
        }
    }

    #[test]
    fn emails_use_org_domains() {
        let persons = generate_persons(&config(500));
        let p = persons.iter().find(|p| !p.work_at.is_empty()).unwrap();
        assert!(p.emails[0].ends_with(".com"));
        assert!(p.emails[0].contains('@'));
    }

    #[test]
    fn interest_counts_are_skewed_but_bounded() {
        let persons = generate_persons(&config(1_000));
        let counts: Vec<usize> = persons.iter().map(|p| p.interests.len()).collect();
        assert!(counts.iter().all(|&c| (3..=24).contains(&c)));
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!((4.0..9.0).contains(&mean), "mean interests {mean}");
    }

    #[test]
    fn some_persons_join_after_update_split() {
        let c = config(1_000);
        let persons = generate_persons(&c);
        let late = persons.iter().filter(|p| p.creation_date > c.update_split).count();
        let frac = late as f64 / persons.len() as f64;
        assert!((0.05..0.20).contains(&frac), "late-joiner fraction {frac}");
    }
}
