//! Event-driven post-time generation (§2.2, Fig. 2a).
//!
//! "Whenever an important real world event occurs, the amount of people and
//! messages talking about that topic spikes." DATAGEN simulates events
//! related to certain tags; posts by persons interested in that tag cluster
//! around the event with "spikes of different magnitude [...] which
//! correspond to events of different levels of importance", following the
//! rise-and-decay volume shape of Leskovec et al.'s meme-tracking study
//! (paper ref \[7\]).

use crate::config::GeneratorConfig;
use snb_core::dict::Dictionaries;
use snb_core::rng::{Rng, Stream};
use snb_core::time::{SimTime, MILLIS_PER_DAY, MILLIS_PER_HOUR};
use snb_core::TagId;

/// A trending event: a topic spikes at a point in time.
#[derive(Debug, Clone)]
pub struct Event {
    /// The trending tag.
    pub tag: TagId,
    /// Peak time.
    pub time: SimTime,
    /// Importance (≥ 1); spike volume scales with it.
    pub importance: f64,
}

/// The global, deterministic schedule of trending events.
#[derive(Debug)]
pub struct EventSchedule {
    events: Vec<Event>,
    /// `per_tag[t]` lists events about tag `t`.
    per_tag: Vec<Vec<usize>>,
    /// Fraction of posts drawn from the spike model rather than uniform.
    event_prob: f64,
}

/// Share of a spike's mass in the pre-peak ramp-up.
const RISE_FRACTION: f64 = 0.25;
/// Ramp-up window before the peak.
const RISE_WINDOW_MS: i64 = MILLIS_PER_DAY;
/// Mean of the exponential post-peak decay.
const DECAY_MEAN_MS: f64 = 2.0 * MILLIS_PER_DAY as f64;

impl EventSchedule {
    /// Build the schedule. With `event_driven` disabled the schedule is
    /// empty and all sampled times are uniform.
    pub fn generate(config: &GeneratorConfig) -> EventSchedule {
        let dicts = Dictionaries::global();
        let n_tags = dicts.tags.tag_count();
        let mut per_tag = vec![Vec::new(); n_tags];
        let mut events = Vec::new();
        if config.event_driven {
            let n_events = 30 + (config.n_persons / 100) as usize;
            let lo = config.start.plus_days(30);
            let hi = config.end.plus_days(-30);
            for e in 0..n_events {
                let mut rng = Rng::for_entity(config.seed, Stream::Events, e as u64);
                let tag = rng.index(n_tags);
                let time = rng.sim_time(lo, hi);
                // Pareto-tailed importance: most events minor, a few huge.
                let importance = (1.0 / rng.next_f64().max(1e-9)).powf(0.6).min(1_000.0);
                per_tag[tag].push(events.len());
                events.push(Event { tag: TagId(tag as u64), time, importance });
            }
        }
        EventSchedule { events, per_tag, event_prob: 0.35 }
    }

    /// All events (for inspection / experiments).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Sample a post creation time in `[lo, hi)` for a forum about `tags`:
    /// with probability `event_prob`, cluster around a matching event
    /// (weighted by importance); otherwise uniform.
    pub fn sample_post_time(
        &self,
        rng: &mut Rng,
        lo: SimTime,
        hi: SimTime,
        tags: &[TagId],
    ) -> SimTime {
        debug_assert!(lo < hi);
        if !self.events.is_empty() && rng.chance(self.event_prob) {
            if let Some(ev) = self.pick_event(rng, lo, hi, tags) {
                let t = self.spike_time(rng, ev);
                if t >= lo && t < hi {
                    return t;
                }
            }
        }
        rng.sim_time(lo, hi)
    }

    /// Pick an event about one of `tags` whose peak lies inside the window,
    /// weighted by importance.
    fn pick_event(
        &self,
        rng: &mut Rng,
        lo: SimTime,
        hi: SimTime,
        tags: &[TagId],
    ) -> Option<&Event> {
        let candidates: Vec<&Event> = tags
            .iter()
            .flat_map(|t| self.per_tag.get(t.index()).into_iter().flatten())
            .map(|&i| &self.events[i])
            .filter(|e| e.time >= lo && e.time < hi)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let mut cum = Vec::with_capacity(candidates.len());
        let mut total = 0.0;
        for e in &candidates {
            total += e.importance;
            cum.push(total);
        }
        Some(candidates[rng.weighted_index(&cum)])
    }

    /// A time drawn from the spike shape around `event`: linear ramp-up in
    /// the day before the peak, exponential decay after.
    fn spike_time(&self, rng: &mut Rng, event: &Event) -> SimTime {
        if rng.chance(RISE_FRACTION) {
            // Ramp up: density increasing toward the peak (sqrt transform).
            let u = rng.next_f64().sqrt();
            event.time.plus_millis(-((1.0 - u) * RISE_WINDOW_MS as f64) as i64)
        } else {
            let lag = rng.exponential(1.0 / DECAY_MEAN_MS);
            event.time.plus_millis((lag as i64).max(MILLIS_PER_HOUR / 60))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule(event_driven: bool) -> (GeneratorConfig, EventSchedule) {
        let config = GeneratorConfig::with_persons(2_000).events(event_driven);
        let s = EventSchedule::generate(&config);
        (config, s)
    }

    #[test]
    fn disabled_schedule_is_uniform() {
        let (config, s) = schedule(false);
        assert!(s.events().is_empty());
        let mut rng = Rng::for_entity(1, Stream::Posts, 0);
        for _ in 0..100 {
            let t = s.sample_post_time(&mut rng, config.start, config.end, &[TagId(0)]);
            assert!(t >= config.start && t < config.end);
        }
    }

    #[test]
    fn event_times_are_within_simulation() {
        let (config, s) = schedule(true);
        assert!(!s.events().is_empty());
        for e in s.events() {
            assert!(e.time > config.start && e.time < config.end);
            assert!(e.importance >= 1.0);
        }
    }

    #[test]
    fn sampled_times_stay_in_window() {
        let (config, s) = schedule(true);
        let mut rng = Rng::for_entity(2, Stream::Posts, 1);
        let lo = config.start.plus_days(100);
        let hi = config.start.plus_days(400);
        let tags: Vec<TagId> = (0..10).map(TagId).collect();
        for _ in 0..5_000 {
            let t = s.sample_post_time(&mut rng, lo, hi, &tags);
            assert!(t >= lo && t < hi);
        }
    }

    #[test]
    fn event_driven_density_spikes_versus_uniform() {
        // The Fig. 2a property: with events on, daily post-count density has
        // pronounced peaks; uniform stays flat.
        let (config, on) = schedule(true);
        let (_, off) = schedule(false);
        let peak_ratio = |s: &EventSchedule| -> f64 {
            let mut rng = Rng::for_entity(3, Stream::Posts, 7);
            let days = ((config.end.since(config.start)) / MILLIS_PER_DAY) as usize;
            let mut buckets = vec![0u32; days];
            let tags: Vec<TagId> = (0..40).map(TagId).collect();
            for _ in 0..40_000 {
                let t = s.sample_post_time(&mut rng, config.start, config.end, &tags);
                let d = (t.since(config.start) / MILLIS_PER_DAY) as usize;
                buckets[d.min(days - 1)] += 1;
            }
            let mean = buckets.iter().map(|&b| b as f64).sum::<f64>() / days as f64;
            *buckets.iter().max().unwrap() as f64 / mean
        };
        let r_on = peak_ratio(&on);
        let r_off = peak_ratio(&off);
        assert!(r_on > 2.0 * r_off, "spikes missing: on {r_on:.1} off {r_off:.1}");
    }

    #[test]
    fn importance_distribution_is_heavy_tailed() {
        let (_, s) = schedule(true);
        let max = s.events().iter().map(|e| e.importance).fold(0.0, f64::max);
        let mean = s.events().iter().map(|e| e.importance).sum::<f64>() / s.events().len() as f64;
        assert!(max > 3.0 * mean, "max {max:.1} mean {mean:.1}");
    }
}
