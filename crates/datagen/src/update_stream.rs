//! Bulk/update split and update-stream construction (§4).
//!
//! "DATAGEN can divide its output in two parts, splitting all data at one
//! particular timestamp: all data before this point is output in the
//! requested bulk-load format, the data with a timestamp after the split is
//! formatted as input files for the query driver."
//!
//! For each post-split entity we emit a [`ScheduledUpdate`] with:
//! - `due`  = the entity's creation timestamp;
//! - `dep`  = the creation time of its latest *person-level* prerequisite
//!   that is itself in the update stream (person accounts). Intra-forum
//!   prerequisites (forum before membership, post before comment/like) are
//!   deliberately NOT GCT-tracked: the driver captures them by executing
//!   each forum's stream sequentially — "using TGC would introduce false
//!   dependencies" (§4.2);
//! - `stream` = `Person` for addPerson/addFriendship (the FRIEND graph is
//!   non-partitionable), `Forum(id)` otherwise.

use crate::Dataset;
use snb_core::time::SimTime;
use snb_core::update::{ScheduledUpdate, StreamKey, UpdateOp};

/// Build the time-ordered update stream from everything in `ds` created
/// after the configured split point.
pub fn build_update_stream(ds: &Dataset) -> Vec<ScheduledUpdate> {
    let split = ds.config.update_split;
    let mut out: Vec<ScheduledUpdate> = Vec::new();

    // Dependency lookup helpers: an entity's creation only constrains GCT
    // if the entity itself is an update (created after the split).
    let person_dep = |pid: snb_core::PersonId| -> SimTime {
        let c = ds.persons[pid.index()].creation_date;
        if c > split {
            c
        } else {
            SimTime(0)
        }
    };
    for p in &ds.persons {
        if p.creation_date > split {
            out.push(ScheduledUpdate {
                due: p.creation_date,
                dep: SimTime(0),
                stream: StreamKey::Person,
                op: UpdateOp::AddPerson(p.clone()),
            });
        }
    }
    for k in &ds.knows {
        if k.creation_date > split {
            out.push(ScheduledUpdate {
                due: k.creation_date,
                dep: person_dep(k.a).max(person_dep(k.b)),
                stream: StreamKey::Person,
                op: UpdateOp::AddFriendship(*k),
            });
        }
    }
    for f in &ds.forums {
        if f.creation_date > split {
            out.push(ScheduledUpdate {
                due: f.creation_date,
                dep: person_dep(f.moderator),
                stream: StreamKey::Forum(f.id.raw()),
                op: UpdateOp::AddForum(f.clone()),
            });
        }
    }
    for m in &ds.memberships {
        if m.join_date > split {
            out.push(ScheduledUpdate {
                due: m.join_date,
                dep: person_dep(m.person),
                stream: StreamKey::Forum(m.forum.raw()),
                op: UpdateOp::AddMembership(*m),
            });
        }
    }
    for p in &ds.posts {
        if p.creation_date > split {
            out.push(ScheduledUpdate {
                due: p.creation_date,
                dep: person_dep(p.author),
                stream: StreamKey::Forum(p.forum.raw()),
                op: UpdateOp::AddPost(p.clone()),
            });
        }
    }
    for c in &ds.comments {
        if c.creation_date > split {
            out.push(ScheduledUpdate {
                due: c.creation_date,
                dep: person_dep(c.author),
                stream: StreamKey::Forum(c.forum.raw()),
                op: UpdateOp::AddComment(c.clone()),
            });
        }
    }
    // Likes split into U2 (post likes) and U3 (comment likes).
    for l in &ds.likes {
        if l.creation_date > split {
            let is_comment = ds.is_comment(l.message);
            let forum = ds.forum_of_message(l.message);
            out.push(ScheduledUpdate {
                due: l.creation_date,
                dep: person_dep(l.person),
                stream: StreamKey::Forum(forum.raw()),
                op: if is_comment {
                    UpdateOp::AddCommentLike(*l)
                } else {
                    UpdateOp::AddPostLike(*l)
                },
            });
        }
    }

    out.sort_by_key(|s| (s.due, s.op.query_number()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, GeneratorConfig};

    fn stream() -> (Dataset, Vec<ScheduledUpdate>) {
        let ds = generate(GeneratorConfig::with_persons(500).activity(0.4)).unwrap();
        let s = build_update_stream(&ds);
        (ds, s)
    }

    #[test]
    fn stream_is_time_ordered_and_post_split() {
        let (ds, s) = stream();
        assert!(!s.is_empty());
        for w in s.windows(2) {
            assert!(w[0].due <= w[1].due);
        }
        for u in &s {
            assert!(u.due > ds.config.update_split);
            assert_eq!(u.due, u.op.creation_date());
        }
    }

    #[test]
    fn dependencies_precede_dependents() {
        let (_, s) = stream();
        for u in &s {
            assert!(u.dep <= u.due, "dep {:?} after due {:?}", u.dep, u.due);
        }
    }

    #[test]
    fn dependents_honor_t_safe() {
        // §4.2: DATAGEN guarantees a long minimum gap between a dependency
        // and any dependent operation, enabling Windowed Execution.
        let (ds, s) = stream();
        for u in &s {
            if u.is_dependent() {
                assert!(
                    u.due.since(u.dep) >= ds.config.t_safe_millis,
                    "{} violates T_SAFE: gap {}",
                    u.op.name(),
                    u.due.since(u.dep)
                );
            }
        }
    }

    #[test]
    fn person_ops_are_in_person_stream() {
        let (_, s) = stream();
        for u in &s {
            match &u.op {
                UpdateOp::AddPerson(_) | UpdateOp::AddFriendship(_) => {
                    assert_eq!(u.stream, StreamKey::Person)
                }
                _ => assert!(matches!(u.stream, StreamKey::Forum(_))),
            }
        }
    }

    #[test]
    fn all_eight_update_types_occur() {
        let (_, s) = stream();
        let mut seen = [false; 9];
        for u in &s {
            seen[u.op.query_number()] = true;
        }
        for (q, &present) in seen.iter().enumerate().skip(1) {
            assert!(present, "update type U{q} missing from stream");
        }
    }

    #[test]
    fn forum_ops_reference_correct_forum_partition() {
        let (ds, s) = stream();
        for u in &s {
            if let (StreamKey::Forum(f), UpdateOp::AddComment(c)) = (&u.stream, &u.op) {
                assert_eq!(*f, c.forum.raw());
            }
            if let (StreamKey::Forum(f), UpdateOp::AddPostLike(l) | UpdateOp::AddCommentLike(l)) =
                (&u.stream, &u.op)
            {
                assert_eq!(*f, ds.forum_of_message(l.message).raw());
            }
        }
    }
}
