//! Compact immutable runs: per-block frame-of-reference encoding.
//!
//! The merge ladder's runs (and every [`crate::graph::IndexList`] bulk
//! prefix) are immutable and `(date, id)`-sorted — ideal input for
//! columnar compression. A [`CompactRun`] stores entries in 128-entry
//! blocks. Each block holds a small header — the block's base date, its
//! minimum id, and one byte-width per column — followed by fixed-width
//! little-endian *offsets from the base* for every entry (frame of
//! reference). The date and id offsets are interleaved as one
//! `dw + iw`-byte pair per entry: the pair stride is usually at most
//! eight bytes, so a single 8-byte load decodes both values, and an
//! entry touches one cache line instead of two. A column whose values
//! are all equal (every single-entry list, every uniform date group) has
//! width zero and stores no data bytes at all.
//!
//! Fixed widths were chosen over varint deltas deliberately: they decode
//! with one unaligned load + mask instead of a byte-at-a-time dependency
//! chain, and — more importantly — they give O(1) random access *within*
//! a block. The read path's "most recent before date" walks jump straight
//! to the newest qualifying entry instead of decoding a whole block
//! prefix, and forward scans read entries straight out of the stream with
//! no per-cursor decode buffer. Typical index entries land at 4–9 bytes
//! against the 24-byte in-memory [`Entry`], a 2.5–6x reduction.
//!
//! Commit timestamps compress twice over: a run whose entries all share
//! one commit (every bulk-loaded run — [`BULK_TS`]) records it once in
//! the run header and stores no commit column; mixed runs store a
//! per-block minimum plus width-packed offsets like the other columns.
//!
//! Block selection is a binary search over fixed-width *anchors* — each
//! block's first `(date, id)` plus its byte offset. Block 0 needs no
//! anchor (its header sits at offset 0), so short runs — most per-entity
//! lists fit one block — carry no anchor array at all.
//!
//! Construction only happens where runs were already built before this
//! format existed — under the owning stripe lock at ladder-merge time, and
//! in the bulk loader's sort-once path — so readers only ever see finished,
//! immutable runs and the store's publication protocol is untouched.
//! [`Cursor`] (forward) and [`RevCursor`] (backward) are plain `Copy`
//! structs caching one parsed block header; stepping within a block is a
//! pair of masked loads, crossing a block re-parses one header.

use crate::graph::{key, Entry};
use snb_core::time::SimTime;
use std::sync::atomic::{AtomicBool, Ordering};

/// When set, newly built runs store plain `Entry` slices instead of the
/// packed block format — the A/B ablation switch behind
/// [`set_uncompressed_runs`]. Read once per [`RunBuilder`]; existing runs
/// keep whatever representation they were built with.
static UNCOMPRESSED: AtomicBool = AtomicBool::new(false);

/// Build all future runs uncompressed (plain 24-byte entries, the
/// pre-compact representation). This exists for the storage-footprint
/// benchmarks: it yields a store identical in every respect — same MVCC,
/// same ladder, same iterators, same query plans — except the run bytes,
/// so an A/B measurement isolates the cost of the compact format itself.
/// Not intended for production use.
pub fn set_uncompressed_runs(on: bool) {
    UNCOMPRESSED.store(on, Ordering::Relaxed);
}

/// Entries per block: large enough that the ~10-byte block header and the
/// 24-byte anchor amortize to well under a byte per entry, small enough
/// that one block's offsets stay in cache while it is scanned.
pub(crate) const BLOCK: usize = 128;

/// Entries per [`Cursor::fill_dated`] refill — the forward drain's
/// read-ahead depth. Small enough that an early-exiting scan wastes at
/// most a few decodes, large enough to amortize the refill call.
pub(crate) const FILL_DATED: usize = 16;

/// The all-zero entry.
const ZERO_ENTRY: Entry = Entry { date: SimTime(0), id: 0, commit: 0 };

/// Zero bytes appended after a non-empty stream so fixed-width column
/// loads (and varint header reads) can always use a full 8-byte window —
/// including the degenerate width-0 load at the very end of the stream,
/// which reads from one past the last data byte.
const STREAM_PAD: usize = 8;

/// Append one LEB128 varint (block headers only — column data is
/// fixed-width).
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Decode one LEB128 varint at `*pos`, advancing it.
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
    }
}

/// Map a signed value onto the unsigned varint space (block base dates
/// can be negative).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Bytes needed to store `range` (0..=8; 0 means every value equals the
/// base and the column stores nothing).
fn width_for(range: u64) -> u8 {
    ((64 - range.leading_zeros()) as u8).div_ceil(8)
}

/// The low-`w`-bytes mask for a column of width `w` — computed once per
/// block parse so the per-entry load is branchless (width 0 masks to 0).
fn mask_for(w: u8) -> u64 {
    match w {
        0 => 0,
        1..=7 => (1u64 << (8 * w)) - 1,
        _ => u64::MAX,
    }
}

/// Load one column value: an 8-byte little-endian window at `pos` masked
/// down to the column width. [`STREAM_PAD`] keeps the window in bounds for
/// every reachable position (including a width-0 column whose start sits
/// at the end of the data), so this is branch-free on the hot path.
#[inline]
fn load_masked(bytes: &[u8], pos: usize, mask: u64) -> u64 {
    debug_assert!(pos + 8 <= bytes.len(), "stream is padded");
    // SAFETY: streams are built in-process by `RunBuilder`, which appends
    // `STREAM_PAD` (8) zero bytes after the last data byte, and every
    // caller derives `pos` from a parsed header of the same stream: any
    // column position satisfies `pos <= data_end == bytes.len() - 8`, so
    // the window `[pos, pos + 8)` is always in bounds. `[u8; 8]` has
    // alignment 1, so the unaligned read is valid.
    let window = unsafe { *bytes.as_ptr().add(pos).cast::<[u8; 8]>() };
    u64::from_le_bytes(window) & mask
}

/// Fixed-width block header for blocks 1 and up: the block's first date
/// (so block selection is a binary search over plain structs, no
/// decoding) and the offset of the block's encoded header. Block 0 has no
/// anchor — its header sits at offset 0 of the byte stream — so a run
/// that fits one block carries no anchor array at all.
#[derive(Debug, Clone, Copy)]
struct Anchor {
    date: SimTime,
    offset: u32,
}

/// An immutable `(date, id)`-sorted run, normally in the packed
/// block/frame-of-reference form described in the module docs, or — under
/// the [`set_uncompressed_runs`] ablation switch — as a plain entry slice.
#[derive(Debug)]
pub(crate) struct CompactRun {
    len: u32,
    /// `Some(c)` when every entry shares commit `c` (always true for
    /// bulk-loaded runs): packed blocks then store no commit column.
    commit: Option<u64>,
    /// The final (largest-keyed) entry of the run, kept decoded. Two jobs:
    /// its date answers the common "bound covers the whole run" case of
    /// `upper_bound_date` in O(1), and it seeds a reverse cursor's decode
    /// memo so a newest-first walk learns every lane's head key without
    /// parsing any block header — the lanes that lose the k-way merge
    /// never touch their byte stream at all.
    last: Entry,
    repr: Repr,
}

impl Default for CompactRun {
    fn default() -> CompactRun {
        CompactRun { len: 0, commit: None, last: ZERO_ENTRY, repr: Repr::default() }
    }
}

/// Physical representation of a run's entries.
#[derive(Debug)]
enum Repr {
    /// Frame-of-reference blocks: anchors for blocks `1..` (`anchors[i]`
    /// describes block `i + 1`) plus the encoded byte stream.
    Packed { anchors: Box<[Anchor]>, bytes: Box<[u8]> },
    /// Plain sorted entries — the pre-compact format, kept as a buildable
    /// ablation baseline (see [`set_uncompressed_runs`]).
    Raw(Box<[Entry]>),
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Packed { anchors: Box::default(), bytes: Box::default() }
    }
}

/// One parsed block header: everything needed for O(1) entry reads within
/// the block. Cursors cache one of these and re-parse only on block
/// crossings.
#[derive(Debug, Clone, Copy)]
struct BlockView {
    /// Block index this view describes ([`NO_BLOCK`] = none).
    blk: u32,
    base_date: i64,
    min_id: u64,
    /// Shared commit base: the run's uniform commit, or this block's
    /// minimum commit. With `cw == 0` the addend below is always zero, so
    /// uniform runs pay no branch.
    base_commit: u64,
    /// Start of the interleaved fixed-width (date, id) offset pairs.
    pairs: u32,
    /// Start of the commit column (after the pairs).
    commits: u32,
    /// Encoded widths: date bytes, pair stride (`dw + iw`), commit bytes.
    dw: u8,
    stride: u8,
    cw: u8,
    /// Bit offset of the id inside a fused pair load (`8 * dw`, masked to
    /// 63 at use — only reachable unmasked when the id mask is 0).
    ishift: u8,
    /// Low-width masks, precomputed at parse time so per-entry loads are
    /// branch-free (a width-0 column masks to 0, so uniform columns — and
    /// elided commit columns — decode with the same instruction sequence
    /// as everything else).
    dmask: u64,
    imask: u64,
    cmask: u64,
}

/// Sentinel block index for "nothing parsed yet".
const NO_BLOCK: u32 = u32::MAX;

impl BlockView {
    const EMPTY: BlockView = BlockView {
        blk: NO_BLOCK,
        base_date: 0,
        min_id: 0,
        base_commit: 0,
        pairs: 0,
        commits: 0,
        dw: 0,
        stride: 0,
        cw: 0,
        ishift: 0,
        dmask: 0,
        imask: 0,
        cmask: 0,
    };

    /// Raw (date offset, id offset) pair at byte position `pos` — one
    /// fused load when the pair stride fits the 8-byte window, two
    /// adjacent loads otherwise.
    #[inline]
    fn pair_at(&self, bytes: &[u8], pos: usize) -> (u64, u64) {
        if self.stride <= 8 {
            let word = load_masked(bytes, pos, u64::MAX);
            (word & self.dmask, (word >> (self.ishift & 63)) & self.imask)
        } else {
            (
                load_masked(bytes, pos, self.dmask),
                load_masked(bytes, pos + self.dw as usize, self.imask),
            )
        }
    }

    /// Byte position of in-block index `i`'s pair.
    #[inline]
    fn pair_pos(&self, i: usize) -> usize {
        self.pairs as usize + i * self.stride as usize
    }

    /// Entry at in-block index `i`.
    #[inline]
    fn entry(&self, bytes: &[u8], i: usize) -> Entry {
        let (doff, ioff) = self.pair_at(bytes, self.pair_pos(i));
        let commit = self.base_commit
            + load_masked(bytes, self.commits as usize + i * self.cw as usize, self.cmask);
        Entry {
            date: SimTime(self.base_date.wrapping_add(doff as i64)),
            id: self.min_id.wrapping_add(ioff),
            commit,
        }
    }

    /// Date at in-block index `i` (the column walks and binary searches).
    #[inline]
    fn date(&self, bytes: &[u8], i: usize) -> SimTime {
        SimTime(
            self.base_date.wrapping_add(load_masked(bytes, self.pair_pos(i), self.dmask) as i64),
        )
    }

    /// `(id, date)` at in-block index `i`, skipping the commit column —
    /// the bulk-prefix lanes bypass MVCC and never look at commits, so
    /// their per-entry decode is usually a single load.
    #[inline]
    fn dated(&self, bytes: &[u8], i: usize) -> (u64, SimTime) {
        let (doff, ioff) = self.pair_at(bytes, self.pair_pos(i));
        (self.min_id.wrapping_add(ioff), SimTime(self.base_date.wrapping_add(doff as i64)))
    }
}

impl CompactRun {
    /// Encode an already-sorted slice.
    pub(crate) fn from_sorted(entries: &[Entry]) -> CompactRun {
        let uniform =
            entries.first().map(|f| f.commit).filter(|&c| entries.iter().all(|e| e.commit == c));
        let mut b = RunBuilder::with_capacity(entries.len(), entries.len() * 6, uniform);
        for &e in entries {
            b.push(e);
        }
        b.finish()
    }

    /// Entry count.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len as usize
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Anchors and byte stream of a packed run (tests only).
    #[cfg(test)]
    fn packed(&self) -> (&[Anchor], &[u8]) {
        match &self.repr {
            Repr::Packed { anchors, bytes } => (anchors, bytes),
            Repr::Raw(_) => panic!("expected a packed run"),
        }
    }

    /// Resident heap bytes: anchors plus the byte stream (packed), or the
    /// plain entry array (raw). (The run struct itself lives inline in its
    /// owner.)
    pub(crate) fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Packed { anchors, bytes } => {
                anchors.len() * std::mem::size_of::<Anchor>() + bytes.len()
            }
            Repr::Raw(entries) => entries.len() * std::mem::size_of::<Entry>(),
        }
    }

    /// Entries in block `b`.
    #[inline]
    fn block_len(&self, b: usize) -> usize {
        (self.len() - b * BLOCK).min(BLOCK)
    }

    /// The raw entry slice, when this run is in uncompressed form.
    #[inline]
    fn raw(&self) -> Option<&[Entry]> {
        match &self.repr {
            Repr::Raw(entries) => Some(entries),
            Repr::Packed { .. } => None,
        }
    }

    /// The packed byte stream (packed runs only).
    #[inline]
    fn stream(&self) -> &[u8] {
        match &self.repr {
            Repr::Packed { bytes, .. } => bytes,
            Repr::Raw(_) => unreachable!("stream() on a raw run"),
        }
    }

    /// Parse block `b`'s header into a [`BlockView`] (packed runs only).
    fn parse_block(&self, b: usize) -> BlockView {
        let Repr::Packed { anchors, bytes } = &self.repr else {
            unreachable!("parse_block on a raw run");
        };
        let mut pos = if b == 0 { 0 } else { anchors[b - 1].offset as usize };
        let base_date = unzigzag(read_varint(bytes, &mut pos));
        let min_id = read_varint(bytes, &mut pos);
        let dw = bytes[pos];
        let iw = bytes[pos + 1];
        pos += 2;
        let (base_commit, cw) = match self.commit {
            Some(c) => (c, 0),
            None => {
                let min_commit = read_varint(bytes, &mut pos);
                let cw = bytes[pos];
                pos += 1;
                (min_commit, cw)
            }
        };
        let n = self.block_len(b);
        let stride = dw + iw;
        let pairs = pos as u32;
        let commits = pairs + (n * stride as usize) as u32;
        BlockView {
            blk: b as u32,
            base_date,
            min_id,
            base_commit,
            pairs,
            commits,
            dw,
            stride,
            cw,
            ishift: 8 * dw,
            dmask: mask_for(dw),
            imask: mask_for(iw),
            cmask: mask_for(cw),
        }
    }

    /// Rank of the first entry with `date > d` — the compact equivalent of
    /// `partition_point(|e| e.date <= d)`. The run-level last-entry check
    /// answers full-coverage bounds in O(1); otherwise a binary search
    /// over the anchors picks the candidate block and a binary search over
    /// its date column (random access — no decode) finds the boundary.
    pub(crate) fn upper_bound_date(&self, d: SimTime) -> usize {
        if self.len == 0 {
            return 0;
        }
        if d >= self.last.date {
            return self.len();
        }
        let Repr::Packed { anchors, bytes } = &self.repr else {
            return self.raw().expect("raw run").partition_point(|e| e.date <= d);
        };
        let block = anchors.partition_point(|a| a.date <= d);
        let start = block * BLOCK;
        let v = self.parse_block(block);
        let n = self.block_len(block);
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if v.date(bytes, mid) <= d {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        start + lo
    }

    /// Forward cursor over the whole run.
    #[inline]
    pub(crate) fn cursor(&self) -> Cursor<'_> {
        Cursor::at(self, 0)
    }

    /// Decode every entry (tests and oracle paths; the hot paths use
    /// cursors).
    #[cfg(test)]
    pub(crate) fn to_vec(&self) -> Vec<Entry> {
        let mut out = Vec::with_capacity(self.len());
        let mut c = self.cursor();
        while let Some(e) = c.peek() {
            out.push(e);
            c.advance();
        }
        out
    }
}

/// Streaming encoder; entries must arrive in `(date, id)` order. Pass
/// `commit: Some(c)` when every pushed entry is known to carry commit `c`
/// — blocks then store no commit column.
pub(crate) struct RunBuilder {
    len: u32,
    commit: Option<u64>,
    /// `Some` in the ablation mode: entries accumulate here verbatim and
    /// the packed encoder never runs.
    raw: Option<Vec<Entry>>,
    anchors: Vec<Anchor>,
    bytes: Vec<u8>,
    /// Entries buffered for the block being built (`scratch_n` filled).
    scratch: Box<[Entry; BLOCK]>,
    scratch_n: usize,
    prev: Entry,
}

impl RunBuilder {
    pub(crate) fn with_capacity(
        entries: usize,
        bytes_hint: usize,
        commit: Option<u64>,
    ) -> RunBuilder {
        let raw = UNCOMPRESSED.load(Ordering::Relaxed);
        RunBuilder {
            len: 0,
            commit,
            raw: raw.then(|| Vec::with_capacity(entries)),
            anchors: Vec::with_capacity(if raw {
                0
            } else {
                entries.div_ceil(BLOCK).saturating_sub(1)
            }),
            bytes: Vec::with_capacity(if raw { 0 } else { bytes_hint }),
            scratch: Box::new([ZERO_ENTRY; BLOCK]),
            scratch_n: 0,
            prev: ZERO_ENTRY,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, e: Entry) {
        debug_assert!(self.len == 0 || key(&self.prev) <= key(&e), "runs are (date, id) sorted");
        debug_assert!(
            self.commit.is_none_or(|c| c == e.commit),
            "uniform-commit run got a differing commit"
        );
        if let Some(raw) = &mut self.raw {
            raw.push(e);
        } else {
            if self.scratch_n == BLOCK {
                self.flush_block();
            }
            self.scratch[self.scratch_n] = e;
            self.scratch_n += 1;
        }
        self.prev = e;
        self.len += 1;
    }

    /// Encode the buffered block: compute each column's base and width,
    /// emit the header, then the fixed-width offset columns.
    fn flush_block(&mut self) {
        let n = self.scratch_n;
        debug_assert!(n > 0);
        let block = &self.scratch[..n];
        let first = block[0];
        if self.len as usize > n || !self.anchors.is_empty() {
            // Not block 0: record the anchor. (Block 0 is exactly the
            // first flush of a run whose earlier flushes pushed nothing.)
            self.anchors.push(Anchor { date: first.date, offset: self.bytes.len() as u32 });
        }
        // Dates are sorted: first is the base, last the max.
        let date_range = block[n - 1].date.0.wrapping_sub(first.date.0) as u64;
        let dw = width_for(date_range);
        let (mut min_id, mut max_id) = (block[0].id, block[0].id);
        let (mut min_c, mut max_c) = (block[0].commit, block[0].commit);
        for e in &block[1..] {
            min_id = min_id.min(e.id);
            max_id = max_id.max(e.id);
            min_c = min_c.min(e.commit);
            max_c = max_c.max(e.commit);
        }
        let iw = width_for(max_id - min_id);
        put_varint(&mut self.bytes, zigzag(first.date.0));
        put_varint(&mut self.bytes, min_id);
        self.bytes.push(dw);
        self.bytes.push(iw);
        let cw = if self.commit.is_some() {
            0
        } else {
            let cw = width_for(max_c - min_c);
            put_varint(&mut self.bytes, min_c);
            self.bytes.push(cw);
            cw
        };
        for e in block {
            let doff = e.date.0.wrapping_sub(first.date.0) as u64;
            self.bytes.extend_from_slice(&doff.to_le_bytes()[..dw as usize]);
            self.bytes.extend_from_slice(&(e.id - min_id).to_le_bytes()[..iw as usize]);
        }
        if cw > 0 {
            for e in block {
                self.bytes.extend_from_slice(&(e.commit - min_c).to_le_bytes()[..cw as usize]);
            }
        }
        self.scratch_n = 0;
    }

    pub(crate) fn finish(mut self) -> CompactRun {
        let repr = if let Some(raw) = self.raw.take() {
            Repr::Raw(raw.into_boxed_slice())
        } else {
            if self.scratch_n > 0 {
                self.flush_block();
            }
            if self.len > 0 {
                self.bytes.extend_from_slice(&[0u8; STREAM_PAD]);
            }
            Repr::Packed {
                anchors: self.anchors.into_boxed_slice(),
                bytes: self.bytes.into_boxed_slice(),
            }
        };
        CompactRun { len: self.len, commit: self.commit, last: self.prev, repr }
    }
}

/// Merge two sorted compact runs into a new one (ladder carry; runs under
/// the same stripe lock, so plain two-cursor streaming). The output stays
/// in elided-commit form when its inputs make that sound.
pub(crate) fn merge_compact(a: &CompactRun, b: &CompactRun) -> CompactRun {
    let commit = if a.len == 0 {
        b.commit
    } else if b.len == 0 || a.commit == b.commit {
        a.commit
    } else {
        None
    };
    let mut out = RunBuilder::with_capacity(
        a.len() + b.len(),
        a.heap_bytes() + b.heap_bytes() + BLOCK,
        commit,
    );
    let mut ca = a.cursor();
    let mut cb = b.cursor();
    loop {
        match (ca.peek(), cb.peek()) {
            (Some(x), Some(y)) => {
                if key(&x) <= key(&y) {
                    out.push(x);
                    ca.advance();
                } else {
                    out.push(y);
                    cb.advance();
                }
            }
            (Some(x), None) => {
                out.push(x);
                ca.advance();
            }
            (None, Some(y)) => {
                out.push(y);
                cb.advance();
            }
            (None, None) => break,
        }
    }
    out.finish()
}

/// Forward cursor: serves entries oldest-first. A plain `Copy` struct —
/// one cached [`BlockView`]; `peek` is two masked loads, block crossings
/// re-parse one ~10-byte header. A cursor with no run serves zero or one
/// inline entries — the shape of a level-0 ladder "run" (a single raw
/// tail slot), so the k-way merges treat every lane uniformly.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cursor<'a> {
    run: Option<&'a CompactRun>,
    /// Next rank to yield; `[rank, end)` remain.
    rank: u32,
    /// Rank of the entry memoized in `single` ([`NO_RANK`] = none).
    cached_rank: u32,
    end: u32,
    view: BlockView,
    /// The inline entry for run-less lanes, doubling as the decode memo
    /// for packed runs (`cached_rank` says which rank it holds).
    single: Entry,
}

/// `cached_rank` sentinel: nothing memoized.
const NO_RANK: u32 = u32::MAX;

impl<'a> Cursor<'a> {
    /// An exhausted cursor.
    pub(crate) fn empty() -> Cursor<'static> {
        Cursor {
            run: None,
            rank: 0,
            cached_rank: NO_RANK,
            end: 0,
            view: BlockView::EMPTY,
            single: ZERO_ENTRY,
        }
    }

    /// A one-entry inline lane (level-0 run: one raw tail slot).
    pub(crate) fn single(e: Entry) -> Cursor<'static> {
        Cursor {
            run: None,
            rank: 0,
            cached_rank: NO_RANK,
            end: 1,
            view: BlockView::EMPTY,
            single: e,
        }
    }

    /// Cursor positioned at rank `start` (0 = whole run). O(1): the
    /// landing block's header is parsed on first `peek`.
    pub(crate) fn at(run: &'a CompactRun, start: usize) -> Cursor<'a> {
        if start >= run.len() {
            return Cursor::empty();
        }
        Cursor {
            run: Some(run),
            rank: start as u32,
            cached_rank: NO_RANK,
            end: run.len,
            view: BlockView::EMPTY,
            single: ZERO_ENTRY,
        }
    }

    /// The current entry, or `None` when exhausted. `&mut` because
    /// crossing into a new block re-parses the cached header.
    #[inline]
    pub(crate) fn peek(&mut self) -> Option<Entry> {
        if self.rank >= self.end {
            return None;
        }
        let Some(run) = self.run else {
            return Some(self.single);
        };
        let r = self.rank as usize;
        if let Some(entries) = run.raw() {
            return Some(entries[r]);
        }
        if self.cached_rank == self.rank {
            return Some(self.single);
        }
        let b = (r / BLOCK) as u32;
        if self.view.blk != b {
            self.view = run.parse_block(b as usize);
        }
        let e = self.view.entry(run.stream(), r % BLOCK);
        // Memoize: k-way merges re-peek the same lane head on every
        // rescan, so repeated peeks must not re-decode.
        self.cached_rank = self.rank;
        self.single = e;
        Some(e)
    }

    /// Decode up to `FILL_DATED` entries starting at the current rank into
    /// `out` (ids and dates only), without advancing the cursor. Returns
    /// how many were written (0 = exhausted). Stops at block boundaries —
    /// the refill loop is branch-free per entry, with both column
    /// positions advanced incrementally. This is the forward drain's hot
    /// loop: [`crate::graph::DatedIter`] serves whole-list scans out of
    /// one of these buffers.
    pub(crate) fn fill_dated(&mut self, out: &mut [(u64, SimTime); FILL_DATED]) -> u32 {
        if self.rank >= self.end {
            return 0;
        }
        let Some(run) = self.run else {
            out[0] = (self.single.id, self.single.date);
            return 1;
        };
        let r = self.rank as usize;
        let avail = (self.end - self.rank) as usize;
        if let Some(entries) = run.raw() {
            let n = avail.min(FILL_DATED);
            for (o, e) in out[..n].iter_mut().zip(&entries[r..r + n]) {
                *o = (e.id, e.date);
            }
            return n as u32;
        }
        let b = (r / BLOCK) as u32;
        if self.view.blk != b {
            self.view = run.parse_block(b as usize);
        }
        let i0 = r % BLOCK;
        let n = avail.min(FILL_DATED).min(BLOCK - i0);
        let bytes = run.stream();
        let v = &self.view;
        let mut pos = v.pair_pos(i0);
        for o in out[..n].iter_mut() {
            let (doff, ioff) = v.pair_at(bytes, pos);
            *o = (v.min_id.wrapping_add(ioff), SimTime(v.base_date.wrapping_add(doff as i64)));
            pos += v.stride as usize;
        }
        n as u32
    }

    /// Step to the next entry.
    #[inline]
    pub(crate) fn advance(&mut self) {
        debug_assert!(self.rank < self.end);
        self.rank += 1;
    }

    /// Entries left to yield.
    #[inline]
    pub(crate) fn remaining(&self) -> usize {
        (self.end - self.rank) as usize
    }
}

/// Backward cursor: serves entries newest-first from a rank bound
/// established at construction (`upper_bound_date`). Random access within
/// blocks makes `peek_back` two masked loads — no block pre-decode, so a
/// `take(k)` walk touches exactly `k` entries plus one header per block
/// crossed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RevCursor<'a> {
    run: Option<&'a CompactRun>,
    /// Entries `[0, rem)` remain; the next yield is rank `rem - 1`.
    rem: u32,
    /// Rank of the entry memoized in `single` ([`NO_RANK`] = none).
    cached_rank: u32,
    view: BlockView,
    /// The inline entry for run-less lanes, doubling as the decode memo
    /// for packed runs (`cached_rank` says which rank it holds).
    single: Entry,
}

impl<'a> RevCursor<'a> {
    pub(crate) fn empty() -> RevCursor<'static> {
        RevCursor {
            run: None,
            rem: 0,
            cached_rank: NO_RANK,
            view: BlockView::EMPTY,
            single: ZERO_ENTRY,
        }
    }

    /// A one-entry inline lane.
    pub(crate) fn single(e: Entry) -> RevCursor<'static> {
        RevCursor { run: None, rem: 1, cached_rank: NO_RANK, view: BlockView::EMPTY, single: e }
    }

    /// A lane over `run`'s first `end` entries, consumed from the back.
    pub(crate) fn to_bound(run: &'a CompactRun, end: usize) -> RevCursor<'a> {
        debug_assert!(end <= run.len());
        RevCursor {
            run: Some(run),
            rem: end as u32,
            cached_rank: NO_RANK,
            view: BlockView::EMPTY,
            single: ZERO_ENTRY,
        }
    }

    /// A lane over `run`'s entries dated at or before `d`, consumed from
    /// the back — `to_bound(run, run.upper_bound_date(d))`, fused so the
    /// lane's head entry is already decoded when the cursor is born. Walk
    /// construction plus one head peek is the per-candidate fixed cost of
    /// every "most recent N before date" query, and the lanes that lose
    /// the k-way merge are never peeked past their head, so this keeps
    /// losing lanes from ever touching their byte stream: the
    /// full-coverage case (`d` at or past the run's last entry) seeds the
    /// memo from the run's stored last entry with no parse at all, and the
    /// bounded case reuses the parse the binary search needed anyway.
    pub(crate) fn to_date_bound(run: &'a CompactRun, d: SimTime) -> RevCursor<'a> {
        if run.len == 0 {
            return RevCursor::empty();
        }
        if d >= run.last.date {
            return RevCursor {
                run: Some(run),
                rem: run.len,
                cached_rank: run.len - 1,
                view: BlockView::EMPTY,
                single: run.last,
            };
        }
        let Repr::Packed { anchors, bytes } = &run.repr else {
            return RevCursor::to_bound(
                run,
                run.raw().expect("raw run").partition_point(|e| e.date <= d),
            );
        };
        let block = anchors.partition_point(|a| a.date <= d);
        let v = run.parse_block(block);
        let n = run.block_len(block);
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if v.date(bytes, mid) <= d {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let mut c = RevCursor {
            run: Some(run),
            rem: (block * BLOCK + lo) as u32,
            cached_rank: NO_RANK,
            view: v,
            single: ZERO_ENTRY,
        };
        // Head rank `rem - 1` sits in the block just parsed unless the
        // bound fell on the block edge: decode it into the memo now.
        if lo > 0 {
            c.cached_rank = c.rem - 1;
            c.single = v.entry(bytes, lo - 1);
        }
        c
    }

    /// The newest remaining entry, or `None` when exhausted. `&mut`
    /// because crossing into a new block re-parses the cached header.
    #[inline]
    pub(crate) fn peek_back(&mut self) -> Option<Entry> {
        if self.rem == 0 {
            return None;
        }
        let Some(run) = self.run else {
            return Some(self.single);
        };
        let r = (self.rem - 1) as usize;
        if let Some(entries) = run.raw() {
            return Some(entries[r]);
        }
        if self.cached_rank == self.rem - 1 {
            return Some(self.single);
        }
        let b = (r / BLOCK) as u32;
        if self.view.blk != b {
            self.view = run.parse_block(b as usize);
        }
        let e = self.view.entry(run.stream(), r % BLOCK);
        // Memoize: k-way merges re-peek the same lane head on every
        // rescan, so repeated peeks must not re-decode.
        self.cached_rank = self.rem - 1;
        self.single = e;
        Some(e)
    }

    /// `peek_back` without the commit column — for lanes whose entries
    /// bypass MVCC (the bulk prefix), where the commit load would be dead
    /// work. Reads (but never fills) the decode memo, so a cursor seeded
    /// by [`RevCursor::to_date_bound`] serves its head with no decode.
    #[inline]
    pub(crate) fn peek_back_dated(&mut self) -> Option<(u64, SimTime)> {
        if self.rem == 0 {
            return None;
        }
        let Some(run) = self.run else {
            return Some((self.single.id, self.single.date));
        };
        let r = (self.rem - 1) as usize;
        if let Some(entries) = run.raw() {
            let e = &entries[r];
            return Some((e.id, e.date));
        }
        if self.cached_rank == self.rem - 1 {
            return Some((self.single.id, self.single.date));
        }
        let b = (r / BLOCK) as u32;
        if self.view.blk != b {
            self.view = run.parse_block(b as usize);
        }
        Some(self.view.dated(run.stream(), r % BLOCK))
    }

    /// Consume the entry `peek_back` returned.
    #[inline]
    pub(crate) fn advance_back(&mut self) {
        debug_assert!(self.rem > 0);
        self.rem -= 1;
    }

    #[inline]
    pub(crate) fn remaining(&self) -> usize {
        self.rem as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read byte sizes or flip the process-global
    /// representation switch, so the ablation test can't race them.
    static FORMAT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn e(date: i64, id: u64, commit: u64) -> Entry {
        Entry { date: SimTime(date), id, commit }
    }

    fn roundtrip(entries: &[Entry]) -> CompactRun {
        let run = CompactRun::from_sorted(entries);
        assert_eq!(run.len(), entries.len());
        let decoded = run.to_vec();
        for (a, b) in entries.iter().zip(&decoded) {
            assert_eq!((a.date, a.id, a.commit), (b.date, b.id, b.commit));
        }
        run
    }

    #[test]
    fn varint_boundary_values_roundtrip() {
        for v in [0u64, 1, 127, 128, 129, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_covers_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn width_for_covers_ranges() {
        assert_eq!(width_for(0), 0);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(255), 1);
        assert_eq!(width_for(256), 2);
        assert_eq!(width_for(u32::MAX as u64), 4);
        assert_eq!(width_for(u64::MAX), 8);
    }

    #[test]
    fn empty_and_single_entry_runs() {
        let _fmt = FORMAT_LOCK.lock().unwrap();
        let empty = CompactRun::default();
        assert!(empty.is_empty());
        assert_eq!(empty.upper_bound_date(SimTime(i64::MAX)), 0);
        assert!(empty.cursor().peek().is_none());

        let run = roundtrip(&[e(42, 7, 3)]);
        assert_eq!(run.upper_bound_date(SimTime(41)), 0);
        assert_eq!(run.upper_bound_date(SimTime(42)), 1);
        // A single-entry run: no anchor, zero-width columns, no commit
        // column (uniform) — it must undercut one raw 24-byte entry.
        assert!(run.packed().0.is_empty());
        assert!(run.heap_bytes() < std::mem::size_of::<Entry>());
    }

    #[test]
    fn uniform_commits_are_elided() {
        let _fmt = FORMAT_LOCK.lock().unwrap();
        // Same (date, id) repeated, all at the same commit: every column
        // range is zero, so each block is header-only — base date
        // (2-byte zigzag varint), min id (1 byte), two width bytes — and
        // the run stores no commit bytes anywhere.
        let entries: Vec<Entry> = (0..300).map(|_| e(1000, 5, 9)).collect();
        let run = roundtrip(&entries);
        let blocks = 300usize.div_ceil(BLOCK);
        assert_eq!(run.commit, Some(9));
        assert_eq!(run.packed().0.len(), blocks - 1);
        assert_eq!(run.packed().1.len(), blocks * 5 + STREAM_PAD);

        // One differing commit forces a commit column: each block gains a
        // min-commit varint + width byte, and the block holding the odd
        // entry gains one byte per entry.
        let mut mixed = entries.clone();
        mixed[150].commit = 10;
        let mixed_run = roundtrip(&mixed);
        assert_eq!(mixed_run.commit, None);
        assert_eq!(mixed_run.packed().1.len(), run.packed().1.len() + blocks * 2 + BLOCK);
    }

    #[test]
    fn max_width_values_roundtrip() {
        // Adversarial extremes: i64::MIN/MAX dates, u64 id wrap, max
        // commits — every column at its widest.
        let entries = vec![
            e(i64::MIN, u64::MAX, u64::MAX),
            e(i64::MIN, u64::MAX, u64::MAX - 1),
            e(0, 0, 1),
            e(i64::MAX, 1, u64::MAX),
            e(i64::MAX, u64::MAX, 0),
        ];
        // Not sorted by our comparator? It is: (MIN,MAX) <= (MIN,MAX) <=
        // (0,0) <= (MAX,1) <= (MAX,MAX).
        roundtrip(&entries);
    }

    #[test]
    fn block_boundary_seeks_and_upper_bounds() {
        // 3 full blocks + a partial one; dates rise every other entry so
        // upper_bound_date lands on every parity. Commits vary, so this
        // also covers the commit column.
        let entries: Vec<Entry> =
            (0..(3 * BLOCK + 57)).map(|i| e((i / 2) as i64, i as u64, i as u64 + 1)).collect();
        let run = roundtrip(&entries);
        for probe in [0usize, 1, BLOCK - 1, BLOCK, BLOCK + 1, 2 * BLOCK, 3 * BLOCK + 56] {
            // Seek straight to `probe` and check the cursor agrees with
            // the slice.
            let mut c = Cursor::at(&run, probe);
            assert_eq!(c.remaining(), entries.len() - probe);
            assert_eq!(c.peek().unwrap().id, entries[probe].id, "seek to {probe}");
            // upper_bound_date agrees with partition_point.
            let d = entries[probe].date;
            let expect = entries.partition_point(|x| x.date <= d);
            assert_eq!(run.upper_bound_date(d), expect, "upper bound at {probe}");
        }
        assert_eq!(run.upper_bound_date(SimTime(-1)), 0);
        assert_eq!(run.upper_bound_date(SimTime(i64::MAX)), entries.len());
    }

    #[test]
    fn reverse_cursor_matches_forward_across_blocks() {
        let entries: Vec<Entry> = (0..(2 * BLOCK + 31))
            .map(|i| e(i as i64 / 3, (i * 7) as u64 % 1000 + i as u64, i as u64))
            .collect();
        let mut sorted = entries.clone();
        sorted.sort_by_key(|x| (x.date, x.id));
        let run = CompactRun::from_sorted(&sorted);
        let mut rev = RevCursor::to_bound(&run, run.len());
        let mut got = Vec::new();
        while let Some(x) = rev.peek_back() {
            got.push((x.date, x.id, x.commit));
            rev.advance_back();
        }
        got.reverse();
        let want: Vec<_> = sorted.iter().map(|x| (x.date, x.id, x.commit)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn merge_keeps_commit_elision_when_sound() {
        let a: Vec<Entry> = (0..200).map(|i| e(i * 2, i as u64, 0)).collect();
        let b: Vec<Entry> = (0..150).map(|i| e(i * 3, 1000 + i as u64, 0)).collect();
        let (ra, rb) = (CompactRun::from_sorted(&a), CompactRun::from_sorted(&b));
        assert_eq!(merge_compact(&ra, &rb).commit, Some(0));
        assert_eq!(merge_compact(&ra, &CompactRun::default()).commit, Some(0));
        assert_eq!(merge_compact(&CompactRun::default(), &rb).commit, Some(0));

        let c: Vec<Entry> = (0..10).map(|i| e(i, i as u64, 5)).collect();
        assert_eq!(merge_compact(&ra, &CompactRun::from_sorted(&c)).commit, None);
    }

    #[test]
    fn merge_compact_interleaves_sorted() {
        let a: Vec<Entry> = (0..200).map(|i| e(i * 2, i as u64, 1)).collect();
        let b: Vec<Entry> = (0..150).map(|i| e(i * 3, 1000 + i as u64, 2)).collect();
        let merged = merge_compact(&CompactRun::from_sorted(&a), &CompactRun::from_sorted(&b));
        let got = merged.to_vec();
        let mut want: Vec<Entry> = a.iter().chain(b.iter()).copied().collect();
        want.sort_by_key(|x| (x.date, x.id));
        assert_eq!(got.len(), want.len());
        for (x, y) in got.iter().zip(&want) {
            assert_eq!((x.date, x.id, x.commit), (y.date, y.id, y.commit));
        }
    }

    #[test]
    fn compression_beats_raw_entries_on_typical_data() {
        let _fmt = FORMAT_LOCK.lock().unwrap();
        // Dense dates, clustered ids, one shared commit — the bulk-load
        // shape. Narrow columns and the elided commit should land well
        // past the headline 2x target.
        let entries: Vec<Entry> = (0..10_000)
            .map(|i| e(1_600_000_000_000 + (i * 37) as i64, (i % 500) as u64, 0))
            .collect();
        let mut sorted = entries.clone();
        sorted.sort_by_key(|x| (x.date, x.id));
        let run = CompactRun::from_sorted(&sorted);
        let raw = sorted.len() * std::mem::size_of::<Entry>();
        assert!(run.heap_bytes() * 4 <= raw, "expected >= 4x: {} vs {raw}", run.heap_bytes());
    }

    #[test]
    fn uncompressed_ablation_mode_roundtrips() {
        let _fmt = FORMAT_LOCK.lock().unwrap();
        // The A/B switch: runs built under the flag store plain entries
        // (24 B each), decode identically through both cursors, and merges
        // of mixed representations work — a packed input run is consumed
        // through the same cursor abstraction.
        let entries: Vec<Entry> =
            (0..(BLOCK + 40)).map(|i| e(i as i64, i as u64 * 3, i as u64 % 4)).collect();
        let packed = CompactRun::from_sorted(&entries);
        set_uncompressed_runs(true);
        let raw = CompactRun::from_sorted(&entries);
        let merged = merge_compact(&packed, &raw);
        set_uncompressed_runs(false);

        assert!(matches!(raw.repr, Repr::Raw(_)));
        assert_eq!(raw.heap_bytes(), entries.len() * std::mem::size_of::<Entry>());
        for (x, y) in raw.to_vec().iter().zip(&packed.to_vec()) {
            assert_eq!((x.date, x.id, x.commit), (y.date, y.id, y.commit));
        }
        for probe in [0, BLOCK - 1, BLOCK, BLOCK + 39] {
            let d = entries[probe].date;
            assert_eq!(raw.upper_bound_date(d), packed.upper_bound_date(d));
        }
        // The merge ran under the flag, so its output is raw too, with
        // every entry doubled.
        assert!(matches!(merged.repr, Repr::Raw(_)));
        let want: Vec<Entry> = entries.iter().flat_map(|&x| [x, x]).collect();
        let got = merged.to_vec();
        assert_eq!(got.len(), want.len());
        for (x, y) in got.iter().zip(&want) {
            assert_eq!((x.date, x.id, x.commit), (y.date, y.id, y.commit));
        }

        let mut rev = RevCursor::to_bound(&raw, raw.len());
        let mut back = Vec::new();
        while let Some(x) = rev.peek_back() {
            back.push(x);
            rev.advance_back();
        }
        back.reverse();
        assert_eq!(back.len(), entries.len());
        for (x, y) in back.iter().zip(&entries) {
            assert_eq!((x.date, x.id, x.commit), (y.date, y.id, y.commit));
        }
    }
}
