//! Write-ahead log.
//!
//! Every committed update transaction is appended as one length-prefixed,
//! checksummed binary record. Recovery replays intact records and stops at
//! the first torn/corrupt tail record (crash during append), yielding a
//! prefix-consistent store — the standard redo-log contract.
//!
//! The encoding is hand-rolled and versioned rather than serde-based: the
//! schema structs hold `&'static str` dictionary references, which we
//! re-intern on decode via the dictionary intern helpers.

use snb_core::dict::names::{intern_name, Gender};
use snb_core::dict::places::intern_language;
use snb_core::schema::{
    intern_browser, Comment, Forum, ForumKind, ForumMembership, Knows, Like, Person, Post, StudyAt,
    WorkAt,
};
use snb_core::time::SimTime;
use snb_core::update::UpdateOp;
use snb_core::{ForumId, MessageId, OrganisationId, PersonId, SnbError, SnbResult, TagId};
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Log format version, first byte of every record payload.
const WAL_VERSION: u8 = 1;

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    w: BufWriter<File>,
    path: PathBuf,
    records: u64,
}

impl Wal {
    /// Create (truncate) a log at `path`.
    pub fn create(path: &Path) -> SnbResult<Wal> {
        Ok(Wal { w: BufWriter::new(File::create(path)?), path: path.to_path_buf(), records: 0 })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of records appended so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Append one committed operation. Returns the on-disk record size in
    /// bytes (header included), for write-volume accounting.
    pub fn append(&mut self, op: &UpdateOp) -> SnbResult<u64> {
        let mut payload = Vec::with_capacity(128);
        payload.push(WAL_VERSION);
        encode_op(op, &mut payload);
        let len = payload.len() as u32;
        let sum = checksum(&payload);
        self.w.write_all(&len.to_le_bytes())?;
        self.w.write_all(&sum.to_le_bytes())?;
        self.w.write_all(&payload)?;
        self.records += 1;
        Ok(8 + payload.len() as u64)
    }

    /// Flush buffered records to the OS.
    pub fn flush(&mut self) -> SnbResult<()> {
        self.w.flush()?;
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let _ = self.w.flush();
    }
}

fn checksum(data: &[u8]) -> u32 {
    // FNV-1a, enough to catch torn writes.
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Replay a log: returns all intact operations, stopping silently at a torn
/// or corrupt tail.
pub fn replay(path: &Path) -> SnbResult<Vec<UpdateOp>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut ops = Vec::new();
    let mut cur = &bytes[..];
    while cur.len() >= 8 {
        let len = u32::from_le_bytes(cur[0..4].try_into().unwrap()) as usize;
        let sum = u32::from_le_bytes(cur[4..8].try_into().unwrap());
        if cur.len() < 8 + len {
            break; // torn tail
        }
        let payload = &cur[8..8 + len];
        if checksum(payload) != sum || payload.first() != Some(&WAL_VERSION) {
            break; // corrupt tail
        }
        let mut p = &payload[1..];
        match decode_op(&mut p) {
            Some(op) => ops.push(op),
            None => break,
        }
        cur = &cur[8 + len..];
    }
    Ok(ops)
}

// ---- encoding helpers -----------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_tags(buf: &mut Vec<u8>, tags: &[TagId]) {
    put_u64(buf, tags.len() as u64);
    for t in tags {
        put_u64(buf, t.raw());
    }
}

fn get_u64(p: &mut &[u8]) -> Option<u64> {
    if p.len() < 8 {
        return None;
    }
    let v = u64::from_le_bytes(p[..8].try_into().unwrap());
    *p = &p[8..];
    Some(v)
}

fn get_i64(p: &mut &[u8]) -> Option<i64> {
    get_u64(p).map(|v| v as i64)
}

fn get_str(p: &mut &[u8]) -> Option<String> {
    let len = get_u64(p)? as usize;
    if p.len() < len {
        return None;
    }
    let s = String::from_utf8(p[..len].to_vec()).ok()?;
    *p = &p[len..];
    Some(s)
}

fn get_tags(p: &mut &[u8]) -> Option<Vec<TagId>> {
    let n = get_u64(p)? as usize;
    if n > 1 << 20 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(TagId(get_u64(p)?));
    }
    Some(out)
}

fn encode_person(p: &Person, buf: &mut Vec<u8>) {
    put_u64(buf, p.id.raw());
    put_str(buf, p.first_name);
    put_str(buf, p.last_name);
    buf.push(matches!(p.gender, Gender::Female) as u8);
    put_i64(buf, p.birthday.millis());
    put_i64(buf, p.creation_date.millis());
    put_u64(buf, p.city as u64);
    put_u64(buf, p.country as u64);
    put_str(buf, p.browser);
    put_str(buf, &p.location_ip);
    put_u64(buf, p.languages.len() as u64);
    for l in &p.languages {
        put_str(buf, l);
    }
    put_u64(buf, p.emails.len() as u64);
    for e in &p.emails {
        put_str(buf, e);
    }
    put_tags(buf, &p.interests);
    match p.study_at {
        Some(s) => {
            buf.push(1);
            put_u64(buf, s.university.raw());
            put_i64(buf, s.class_year as i64);
        }
        None => buf.push(0),
    }
    put_u64(buf, p.work_at.len() as u64);
    for w in &p.work_at {
        put_u64(buf, w.company.raw());
        put_i64(buf, w.work_from as i64);
    }
}

fn decode_person(p: &mut &[u8]) -> Option<Person> {
    let id = PersonId(get_u64(p)?);
    let first_name = intern_name(&get_str(p)?)?;
    let last_name = intern_name(&get_str(p)?)?;
    let gender = if take_u8(p)? == 1 { Gender::Female } else { Gender::Male };
    let birthday = SimTime(get_i64(p)?);
    let creation_date = SimTime(get_i64(p)?);
    let city = get_u64(p)? as usize;
    let country = get_u64(p)? as usize;
    let browser = intern_browser(&get_str(p)?)?;
    let location_ip = get_str(p)?;
    let n_langs = get_u64(p)? as usize;
    let mut languages = Vec::with_capacity(n_langs);
    for _ in 0..n_langs {
        languages.push(intern_language(&get_str(p)?)?);
    }
    let n_emails = get_u64(p)? as usize;
    let mut emails = Vec::with_capacity(n_emails);
    for _ in 0..n_emails {
        emails.push(get_str(p)?);
    }
    let interests = get_tags(p)?;
    let study_at = if take_u8(p)? == 1 {
        Some(StudyAt { university: OrganisationId(get_u64(p)?), class_year: get_i64(p)? as i32 })
    } else {
        None
    };
    let n_work = get_u64(p)? as usize;
    let mut work_at = Vec::with_capacity(n_work);
    for _ in 0..n_work {
        work_at
            .push(WorkAt { company: OrganisationId(get_u64(p)?), work_from: get_i64(p)? as i32 });
    }
    Some(Person {
        id,
        first_name,
        last_name,
        gender,
        birthday,
        creation_date,
        city,
        country,
        browser,
        location_ip,
        languages,
        emails,
        interests,
        study_at,
        work_at,
    })
}

fn take_u8(p: &mut &[u8]) -> Option<u8> {
    let (&b, rest) = p.split_first()?;
    *p = rest;
    Some(b)
}

fn encode_op(op: &UpdateOp, buf: &mut Vec<u8>) {
    match op {
        UpdateOp::AddPerson(p) => {
            buf.push(1);
            encode_person(p, buf);
        }
        UpdateOp::AddPostLike(l) => {
            buf.push(2);
            encode_like(l, buf);
        }
        UpdateOp::AddCommentLike(l) => {
            buf.push(3);
            encode_like(l, buf);
        }
        UpdateOp::AddForum(f) => {
            buf.push(4);
            put_u64(buf, f.id.raw());
            put_str(buf, &f.title);
            put_u64(buf, f.moderator.raw());
            put_i64(buf, f.creation_date.millis());
            put_tags(buf, &f.tags);
            buf.push(match f.kind {
                ForumKind::Wall => 0,
                ForumKind::Group => 1,
                ForumKind::Album => 2,
            });
        }
        UpdateOp::AddMembership(m) => {
            buf.push(5);
            put_u64(buf, m.forum.raw());
            put_u64(buf, m.person.raw());
            put_i64(buf, m.join_date.millis());
        }
        UpdateOp::AddPost(post) => {
            buf.push(6);
            put_u64(buf, post.id.raw());
            put_u64(buf, post.author.raw());
            put_u64(buf, post.forum.raw());
            put_i64(buf, post.creation_date.millis());
            put_str(buf, &post.content);
            match &post.image_file {
                Some(f) => {
                    buf.push(1);
                    put_str(buf, f);
                }
                None => buf.push(0),
            }
            put_tags(buf, &post.tags);
            put_str(buf, post.language);
            put_u64(buf, post.country as u64);
        }
        UpdateOp::AddComment(c) => {
            buf.push(7);
            put_u64(buf, c.id.raw());
            put_u64(buf, c.author.raw());
            put_i64(buf, c.creation_date.millis());
            put_str(buf, &c.content);
            put_u64(buf, c.reply_to.raw());
            put_u64(buf, c.root_post.raw());
            put_u64(buf, c.forum.raw());
            put_tags(buf, &c.tags);
            put_u64(buf, c.country as u64);
        }
        UpdateOp::AddFriendship(k) => {
            buf.push(8);
            put_u64(buf, k.a.raw());
            put_u64(buf, k.b.raw());
            put_i64(buf, k.creation_date.millis());
        }
    }
}

fn encode_like(l: &Like, buf: &mut Vec<u8>) {
    put_u64(buf, l.person.raw());
    put_u64(buf, l.message.raw());
    put_i64(buf, l.creation_date.millis());
}

fn decode_like(p: &mut &[u8]) -> Option<Like> {
    Some(Like {
        person: PersonId(get_u64(p)?),
        message: MessageId(get_u64(p)?),
        creation_date: SimTime(get_i64(p)?),
    })
}

fn decode_op(p: &mut &[u8]) -> Option<UpdateOp> {
    match take_u8(p)? {
        1 => Some(UpdateOp::AddPerson(decode_person(p)?)),
        2 => Some(UpdateOp::AddPostLike(decode_like(p)?)),
        3 => Some(UpdateOp::AddCommentLike(decode_like(p)?)),
        4 => {
            let id = ForumId(get_u64(p)?);
            let title = get_str(p)?;
            let moderator = PersonId(get_u64(p)?);
            let creation_date = SimTime(get_i64(p)?);
            let tags = get_tags(p)?;
            let kind = match take_u8(p)? {
                0 => ForumKind::Wall,
                1 => ForumKind::Group,
                _ => ForumKind::Album,
            };
            Some(UpdateOp::AddForum(Forum { id, title, moderator, creation_date, tags, kind }))
        }
        5 => Some(UpdateOp::AddMembership(ForumMembership {
            forum: ForumId(get_u64(p)?),
            person: PersonId(get_u64(p)?),
            join_date: SimTime(get_i64(p)?),
        })),
        6 => {
            let id = MessageId(get_u64(p)?);
            let author = PersonId(get_u64(p)?);
            let forum = ForumId(get_u64(p)?);
            let creation_date = SimTime(get_i64(p)?);
            let content = get_str(p)?;
            let image_file = if take_u8(p)? == 1 { Some(get_str(p)?) } else { None };
            let tags = get_tags(p)?;
            let language = intern_language(&get_str(p)?)?;
            let country = get_u64(p)? as usize;
            Some(UpdateOp::AddPost(Post {
                id,
                author,
                forum,
                creation_date,
                content,
                image_file,
                tags,
                language,
                country,
            }))
        }
        7 => Some(UpdateOp::AddComment(Comment {
            id: MessageId(get_u64(p)?),
            author: PersonId(get_u64(p)?),
            creation_date: SimTime(get_i64(p)?),
            content: get_str(p)?,
            reply_to: MessageId(get_u64(p)?),
            root_post: MessageId(get_u64(p)?),
            forum: ForumId(get_u64(p)?),
            tags: get_tags(p)?,
            country: get_u64(p)? as usize,
        })),
        8 => Some(UpdateOp::AddFriendship(Knows {
            a: PersonId(get_u64(p)?),
            b: PersonId(get_u64(p)?),
            creation_date: SimTime(get_i64(p)?),
        })),
        _ => None,
    }
}

/// Convert an I/O-style decoding failure into a uniform error (exposed for
/// store recovery diagnostics).
pub fn corrupt() -> SnbError {
    SnbError::Constraint("corrupt WAL record".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::dict::Dictionaries;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("snb-wal-{}-{name}", std::process::id()))
    }

    fn sample_ops() -> Vec<UpdateOp> {
        // Use the generator for realistic, fully populated entities.
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(120).activity(0.3))
                .unwrap();
        let stream = ds.update_stream();
        assert!(stream.len() > 20);
        stream.into_iter().map(|s| s.op).collect()
    }

    fn ops_equal(a: &UpdateOp, b: &UpdateOp) -> bool {
        // Structural comparison via the debug representation; entities are
        // plain data so this is faithful.
        format!("{a:?}") == format!("{b:?}")
    }

    #[test]
    fn append_replay_roundtrip() {
        let _ = Dictionaries::global();
        let path = tmp("roundtrip");
        let ops = sample_ops();
        {
            let mut wal = Wal::create(&path).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
            assert_eq!(wal.records(), ops.len() as u64);
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.len(), ops.len());
        for (a, b) in ops.iter().zip(&replayed) {
            assert!(ops_equal(a, b), "mismatch:\n{a:?}\n{b:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn");
        let ops = sample_ops();
        {
            let mut wal = Wal::create(&path).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
        }
        // Truncate mid-record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.len(), ops.len() - 1, "exactly the torn record dropped");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = tmp("corrupt");
        let ops = sample_ops();
        {
            let mut wal = Wal::create(&path).unwrap();
            for op in ops.iter().take(5) {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the middle (inside some record payload).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.len() < 5, "replay must stop at corruption");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_log_replays_empty() {
        let path = tmp("empty");
        Wal::create(&path).unwrap().flush().unwrap();
        assert!(replay(&path).unwrap().is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
