//! Write-ahead log (v2): durable group commit + tail-truncating recovery.
//!
//! Every committed update transaction is appended as one length-prefixed,
//! sequence-numbered, checksummed binary record. The record checksum covers
//! the *header* (length and sequence number) as well as the payload, so a
//! corrupted length field is detected instead of being misparsed as a
//! giant record, and contiguous sequence numbers make any hole or
//! reordering in the record stream detectable. Recovery replays the intact
//! prefix and reports — rather than silently swallowing — how many bytes
//! and records were discarded behind the first torn or corrupt record;
//! [`Wal::open_append`] additionally truncates the torn tail so the log
//! resumes growing from a clean, durable end after a crash.
//!
//! The file is preallocated in sparse chunks and written in place, so the
//! steady-state `fdatasync` flushes data blocks only instead of also
//! journaling an inode size change per sync; the zeroed tail reads back as
//! a clean end of log and a clean close trims it.
//!
//! Durability is governed by [`SyncPolicy`]:
//!
//! - [`SyncPolicy::Never`]: buffered writes only — the OS page cache
//!   decides when data hits disk (the pre-v2 behaviour; fastest, not
//!   crash-durable).
//! - [`SyncPolicy::EveryCommit`]: `fdatasync` before every commit
//!   acknowledgement.
//! - [`SyncPolicy::GroupCommit`]: commits are acknowledged only after
//!   their record is fsynced, but the fsync is shared. The first committer
//!   to find no sync in flight becomes the *leader* and fsyncs once for
//!   every record appended so far while followers block on a condvar;
//!   commits arriving during that fsync pile up and are covered together
//!   by the next leader's sync. This natural piggybacking amortizes the
//!   dominant durability cost across concurrent committers without ever
//!   acknowledging a non-durable commit and without delaying anyone
//!   (`max_delay: ZERO`, the default). A non-zero `max_delay` additionally
//!   holds the sync until `max_batch` records accumulate or the batch
//!   stops growing — fewer, larger fsyncs at the price of commit latency.
//!
//! The encoding is hand-rolled and versioned rather than serde-based: the
//! schema structs hold `&'static str` dictionary references, which we
//! re-intern on decode via the dictionary intern helpers.

use snb_core::dict::names::{intern_name, Gender};
use snb_core::dict::places::intern_language;
use snb_core::schema::{
    intern_browser, Comment, Forum, ForumKind, ForumMembership, Knows, Like, Person, Post, StudyAt,
    WorkAt,
};
use snb_core::time::SimTime;
use snb_core::update::UpdateOp;
use snb_core::{ForumId, MessageId, OrganisationId, PersonId, SnbError, SnbResult, TagId};
use snb_obs::{Counter, LatencyHistogram};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Log format version, first byte of every record payload.
const WAL_VERSION: u8 = 2;
/// File magic at offset 0 (carries the format version).
const WAL_MAGIC: [u8; 8] = *b"SNBWAL2\0";
/// Per-record header: length (4) + sequence number (8) + checksum (4).
const RECORD_HEADER: usize = 16;
/// Records larger than this are rejected as corrupted length fields.
const MAX_RECORD: u32 = 1 << 24;
/// Appends spill the in-memory buffer to the OS once it grows past this.
const SPILL_BYTES: usize = 1 << 20;
/// The file is preallocated (sparse) in chunks of this size, so the
/// steady-state `fdatasync` flushes data blocks only — growing the file on
/// every append would make each sync also journal the inode size change, a
/// full metadata commit on ext4. The zeroed tail reads back as a clean end
/// of log (a record length can never be zero), and a clean close trims it.
const PREALLOC_BYTES: u64 = 1 << 23;

/// When (if ever) the log calls `fdatasync` before a commit is
/// acknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Buffered writes only; acknowledged commits may be lost on a crash.
    Never,
    /// One `fdatasync` per commit — maximal durability, minimal throughput.
    EveryCommit,
    /// Group commit: one `fdatasync` covers every commit in flight. With
    /// `max_delay: ZERO` (the default) the leader syncs immediately and
    /// batching comes from commits piling up behind the in-flight fsync;
    /// a non-zero delay holds the sync until `max_batch` records
    /// accumulate, the batch stops growing, or the delay elapses.
    GroupCommit {
        /// Sync as soon as this many unsynced records have accumulated.
        max_batch: usize,
        /// Sync no later than this after the leader starts collecting.
        max_delay: Duration,
    },
}

impl Default for SyncPolicy {
    fn default() -> SyncPolicy {
        SyncPolicy::GroupCommit { max_batch: 64, max_delay: Duration::ZERO }
    }
}

impl SyncPolicy {
    /// Parse a CLI spelling: `never`, `commit`, `group`, or
    /// `group:<max_batch>:<max_delay_us>`.
    pub fn parse(s: &str) -> Option<SyncPolicy> {
        match s {
            "never" => Some(SyncPolicy::Never),
            "commit" | "every-commit" => Some(SyncPolicy::EveryCommit),
            "group" => Some(SyncPolicy::default()),
            _ => {
                let rest = s.strip_prefix("group:")?;
                let (batch, delay) = rest.split_once(':')?;
                let max_batch: usize = batch.parse().ok().filter(|&b| b > 0)?;
                let max_delay = Duration::from_micros(delay.parse().ok()?);
                Some(SyncPolicy::GroupCommit { max_batch, max_delay })
            }
        }
    }
}

/// Observability handles the log records into (cloned from the owning
/// store's counter registry, or detached in tests).
#[derive(Debug, Clone)]
pub struct WalMetrics {
    /// `store.wal.fsyncs`: `fdatasync` calls issued.
    pub fsyncs: Counter,
    /// `store.wal.group_size`: records made durable, summed over all fsyncs
    /// (mean batch size = `group_size / fsyncs`).
    pub group_size: Counter,
    /// `store.wal.sync_errors`: flush/sync failures, including those that
    /// would otherwise vanish inside `Drop`.
    pub sync_errors: Counter,
    /// `store.wal.recovery_truncated_bytes`: bytes cut off the tail by
    /// [`Wal::open_append`].
    pub recovery_truncated_bytes: Counter,
    /// fsync latency distribution, in microseconds.
    pub fsync_micros: Arc<LatencyHistogram>,
}

impl WalMetrics {
    /// Metrics not attached to any registry.
    pub fn detached() -> WalMetrics {
        WalMetrics {
            fsyncs: Counter::detached(),
            group_size: Counter::detached(),
            sync_errors: Counter::detached(),
            recovery_truncated_bytes: Counter::detached(),
            fsync_micros: Arc::new(LatencyHistogram::new()),
        }
    }
}

/// Receipt for one appended record.
#[derive(Debug, Clone, Copy)]
pub struct Appended {
    /// Sequence number assigned to the record (contiguous from 1).
    pub seq: u64,
    /// On-disk record size in bytes, header included.
    pub bytes: u64,
}

#[derive(Debug)]
struct Writer {
    file: File,
    /// Encoded records not yet handed to the OS.
    buf: Vec<u8>,
    /// Sequence number of the last appended record.
    appended: u64,
    /// Logical end of log: bytes written (or recovered), magic included.
    /// The physical file may extend past this with preallocated zeros.
    pos: u64,
    /// Physical file size (preallocation included).
    allocated: u64,
}

impl Writer {
    /// Hand buffered bytes to the OS (no durability implied), extending the
    /// preallocation when the log would outgrow it.
    fn spill(&mut self) -> SnbResult<()> {
        if !self.buf.is_empty() {
            let end = self.pos + self.buf.len() as u64;
            if end > self.allocated {
                let target = end.div_ceil(PREALLOC_BYTES) * PREALLOC_BYTES;
                self.file.set_len(target)?;
                self.allocated = target;
            }
            self.file.write_all(&self.buf)?;
            self.pos = end;
            self.buf.clear();
        }
        Ok(())
    }
}

#[derive(Debug)]
struct SyncState {
    /// Sequence number of the last record known durable on disk.
    synced: u64,
    /// Whether some committer is currently collecting a batch or fsyncing.
    leader: bool,
}

/// An open write-ahead log. Internally synchronized: [`Wal::append`],
/// [`Wal::wait_durable`] and [`Wal::flush`] take `&self` and may be called
/// from any number of threads.
#[derive(Debug)]
pub struct Wal {
    writer: Mutex<Writer>,
    /// Separate handle for `fdatasync`, so appends can proceed while a
    /// group-commit leader is blocked in the kernel.
    sync_handle: File,
    state: Mutex<SyncState>,
    cond: Condvar,
    policy: SyncPolicy,
    metrics: WalMetrics,
    path: PathBuf,
    records: AtomicU64,
    /// Last appended sequence number, readable without the writer lock
    /// (advanced with `fetch_max`, so racing appends can't regress it).
    appended_hint: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Wal {
    /// Create (truncate) a log at `path` with no durability guarantees and
    /// detached metrics — the pre-v2 constructor, kept for tests and
    /// benchmark-compat stores.
    pub fn create(path: &Path) -> SnbResult<Wal> {
        Wal::create_with(path, SyncPolicy::Never, WalMetrics::detached())
    }

    /// Create (truncate) a log at `path` under `policy`.
    pub fn create_with(path: &Path, policy: SyncPolicy, metrics: WalMetrics) -> SnbResult<Wal> {
        let mut file = File::create(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.set_len(PREALLOC_BYTES)?;
        Wal::from_parts(file, path, policy, metrics, 0, 0, WAL_MAGIC.len() as u64)
    }

    /// Reopen an existing log after a crash: replay it, truncate the torn
    /// or corrupt tail (and make the cut durable), then resume appending at
    /// the next sequence number. Creates the log when `path` does not
    /// exist. Returns the replay of the intact prefix.
    pub fn open_append(
        path: &Path,
        policy: SyncPolicy,
        metrics: WalMetrics,
    ) -> SnbResult<(Wal, Replay)> {
        if !path.exists() {
            let wal = Wal::create_with(path, policy, metrics)?;
            return Ok((wal, Replay::default()));
        }
        let replay = replay(path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut pos = replay.valid_bytes;
        if replay.truncated_bytes > 0 || replay.valid_bytes < WAL_MAGIC.len() as u64 {
            metrics.recovery_truncated_bytes.add(replay.truncated_bytes);
            if replay.valid_bytes < WAL_MAGIC.len() as u64 {
                // Crash mid-create: not even the magic survived. Start over.
                file.set_len(0)?;
                file.write_all(&WAL_MAGIC)?;
                pos = WAL_MAGIC.len() as u64;
            } else {
                file.set_len(replay.valid_bytes)?;
            }
            file.sync_data()?;
        }
        // A clean preallocated tail (all zeros) is kept: appending resumes
        // over it at the logical end of log, not the physical end of file.
        file.seek(SeekFrom::Start(pos))?;
        let records = replay.ops.len() as u64;
        let wal = Wal::from_parts(file, path, policy, metrics, replay.last_seq, records, pos)?;
        Ok((wal, replay))
    }

    #[allow(clippy::too_many_arguments)]
    fn from_parts(
        file: File,
        path: &Path,
        policy: SyncPolicy,
        metrics: WalMetrics,
        last_seq: u64,
        records: u64,
        pos: u64,
    ) -> SnbResult<Wal> {
        let allocated = file.metadata()?.len();
        let sync_handle = file.try_clone()?;
        Ok(Wal {
            writer: Mutex::new(Writer {
                file,
                buf: Vec::with_capacity(SPILL_BYTES),
                appended: last_seq,
                pos,
                allocated,
            }),
            sync_handle,
            state: Mutex::new(SyncState { synced: last_seq, leader: false }),
            cond: Condvar::new(),
            policy,
            metrics,
            path: path.to_path_buf(),
            records: AtomicU64::new(records),
            appended_hint: AtomicU64::new(last_seq),
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Durability policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Number of live records (replayed ones included after
    /// [`Wal::open_append`]).
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Sequence number of the last record known durable.
    pub fn synced_seq(&self) -> u64 {
        lock(&self.state).synced
    }

    /// Append one committed operation. Buffered only — follow with
    /// [`Wal::wait_durable`] on the returned sequence number to honour the
    /// sync policy before acknowledging the commit.
    pub fn append(&self, op: &UpdateOp) -> SnbResult<Appended> {
        let mut payload = Vec::with_capacity(128);
        payload.push(WAL_VERSION);
        encode_op(op, &mut payload);
        let len = payload.len() as u32;
        let mut w = lock(&self.writer);
        let seq = w.appended + 1;
        let sum = record_checksum(len, seq, &payload);
        w.buf.extend_from_slice(&len.to_le_bytes());
        w.buf.extend_from_slice(&seq.to_le_bytes());
        w.buf.extend_from_slice(&sum.to_le_bytes());
        w.buf.extend_from_slice(&payload);
        w.appended = seq;
        if w.buf.len() >= SPILL_BYTES {
            w.spill()?;
        }
        drop(w);
        self.records.fetch_add(1, Ordering::Relaxed);
        self.appended_hint.fetch_max(seq, Ordering::Release);
        // Wake a group-commit leader waiting for its batch to fill.
        self.cond.notify_all();
        Ok(Appended { seq, bytes: RECORD_HEADER as u64 + payload.len() as u64 })
    }

    /// Block until record `seq` is durable per the sync policy (returns
    /// immediately under [`SyncPolicy::Never`]).
    pub fn wait_durable(&self, seq: u64) -> SnbResult<()> {
        let (max_batch, max_delay) = match self.policy {
            SyncPolicy::Never => return Ok(()),
            SyncPolicy::EveryCommit => {
                // The classic baseline: each committer pays for its own
                // fsync, no sharing. (A concurrent sync may already have
                // covered us — re-syncing anyway is exactly this policy's
                // cost model.)
                if lock(&self.state).synced >= seq {
                    return Ok(());
                }
                return self.sync_now();
            }
            SyncPolicy::GroupCommit { max_batch, max_delay } => {
                (max_batch.max(1) as u64, max_delay)
            }
        };
        // Poll slice while collecting a batch: one slice with no new
        // appends means every in-flight committer is already in the batch.
        const SLICE: Duration = Duration::from_micros(20);
        let mut st = lock(&self.state);
        while st.synced < seq {
            if st.leader {
                // Someone is collecting a batch (ours included) or already
                // in fsync; wait for it to publish the new durable horizon.
                st = self.cond.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Become the leader: let the batch fill while it is still
            // growing, up to `max_batch` records or `max_delay` — syncing as
            // soon as growth stalls, because waiting longer would tax the
            // commits already collected for the benefit of hypothetical
            // future ones.
            st.leader = true;
            let start = Instant::now();
            let mut last_hint = self.appended_hint.load(Ordering::Acquire);
            loop {
                if last_hint.saturating_sub(st.synced) >= max_batch {
                    break;
                }
                let elapsed = start.elapsed();
                if elapsed >= max_delay {
                    break;
                }
                let (g, _) = self
                    .cond
                    .wait_timeout(st, SLICE.min(max_delay - elapsed))
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
                let hint = self.appended_hint.load(Ordering::Acquire);
                if hint == last_hint {
                    break;
                }
                last_hint = hint;
            }
            drop(st);
            let res = self.sync_now();
            st = lock(&self.state);
            st.leader = false;
            drop(st);
            self.cond.notify_all();
            res?;
            st = lock(&self.state);
        }
        Ok(())
    }

    /// Spill and fsync everything appended so far, then publish the new
    /// durable horizon to waiting committers.
    fn sync_now(&self) -> SnbResult<()> {
        let res = (|| -> SnbResult<u64> {
            let mut w = lock(&self.writer);
            let target = w.appended;
            w.spill()?;
            drop(w);
            let t0 = Instant::now();
            self.sync_handle.sync_data()?;
            self.metrics.fsync_micros.record(t0.elapsed().as_micros() as u64);
            self.metrics.fsyncs.inc();
            Ok(target)
        })();
        match res {
            Ok(target) => {
                let mut st = lock(&self.state);
                if target > st.synced {
                    self.metrics.group_size.add(target - st.synced);
                    st.synced = target;
                }
                drop(st);
                self.cond.notify_all();
                Ok(())
            }
            Err(e) => {
                self.metrics.sync_errors.inc();
                Err(e)
            }
        }
    }

    /// Flush buffered records to the OS; under any policy other than
    /// [`SyncPolicy::Never`] this is also a full durability point (fsync).
    pub fn flush(&self) -> SnbResult<()> {
        if self.policy == SyncPolicy::Never {
            lock(&self.writer).spill()
        } else {
            self.sync_now()
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        let policy = self.policy;
        let res = (|| -> SnbResult<()> {
            let w = self.writer.get_mut().unwrap_or_else(|e| e.into_inner());
            w.spill()?;
            if w.allocated > w.pos {
                // Clean close: give the preallocated tail back.
                w.file.set_len(w.pos)?;
                w.allocated = w.pos;
            }
            if policy != SyncPolicy::Never {
                w.file.sync_data()?;
            }
            Ok(())
        })();
        if let Err(e) = res {
            // These errors used to vanish; surface them in the counter
            // registry and on stderr.
            self.metrics.sync_errors.inc();
            eprintln!("snb-store: WAL flush on drop failed for {}: {e}", self.path.display());
        }
    }
}

/// FNV-1a over `data`, continuing from state `h`.
fn fnv1a(mut h: u32, data: &[u8]) -> u32 {
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Record checksum covering the header fields (length, sequence number) and
/// the payload, so a corrupted length or sequence number is detected rather
/// than silently misparsed.
fn record_checksum(len: u32, seq: u64, payload: &[u8]) -> u32 {
    let h = fnv1a(0x811c_9dc5, &len.to_le_bytes());
    let h = fnv1a(h, &seq.to_le_bytes());
    fnv1a(h, payload)
}

/// Result of replaying a log: the intact prefix plus an account of what (if
/// anything) was discarded behind the first torn or corrupt record.
#[derive(Debug, Default)]
pub struct Replay {
    /// Operations decoded from the intact prefix, in append order.
    pub ops: Vec<UpdateOp>,
    /// Sequence number of the last intact record (0 when none).
    pub last_seq: u64,
    /// Bytes of the valid prefix, file magic included.
    pub valid_bytes: u64,
    /// Bytes discarded after the valid prefix.
    pub truncated_bytes: u64,
    /// Records (whole or partial, judged by their length fields) among the
    /// discarded bytes — best-effort, since the tail is untrusted.
    pub truncated_records: u64,
}

/// Replay a log read-only: decode the intact prefix and report — never
/// silently swallow — the discarded tail. See [`Wal::open_append`] for the
/// variant that also truncates the file and resumes appending.
pub fn replay(path: &Path) -> SnbResult<Replay> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < WAL_MAGIC.len() {
        // Crash during create: nothing usable, not even the magic.
        return Ok(Replay {
            truncated_bytes: bytes.len() as u64,
            truncated_records: u64::from(!bytes.is_empty()),
            ..Replay::default()
        });
    }
    if bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(SnbError::Constraint(format!(
            "{}: not a v2 WAL file (bad magic)",
            path.display()
        )));
    }
    let mut ops = Vec::new();
    let mut off = WAL_MAGIC.len();
    let mut seq = 0u64;
    loop {
        let rest = &bytes[off..];
        if rest.len() < RECORD_HEADER {
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if len == 0 || len > MAX_RECORD {
            break; // corrupted length field (inside the checksum domain)
        }
        let len = len as usize;
        if rest.len() < RECORD_HEADER + len {
            break; // torn tail
        }
        let rseq = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        let sum = u32::from_le_bytes(rest[12..16].try_into().unwrap());
        let payload = &rest[RECORD_HEADER..RECORD_HEADER + len];
        if record_checksum(len as u32, rseq, payload) != sum {
            break; // corrupt record
        }
        if rseq != seq + 1 || payload.first() != Some(&WAL_VERSION) {
            break; // hole or reordering in the sequence, or foreign version
        }
        let mut p = &payload[1..];
        let Some(op) = decode_op(&mut p) else { break };
        ops.push(op);
        seq = rseq;
        off += RECORD_HEADER + len;
    }
    // An all-zeros tail is the unused part of the preallocated file — a
    // clean end of log (a record length can never be zero), not discarded
    // data. Anything else after the last intact record is a torn or corrupt
    // tail and is reported.
    let tail = &bytes[off..];
    let (truncated_bytes, truncated_records) =
        if tail.iter().all(|&b| b == 0) { (0, 0) } else { tail_account(tail) };
    Ok(Replay { ops, last_seq: seq, valid_bytes: off as u64, truncated_bytes, truncated_records })
}

/// Best-effort account of a discarded tail: walk it by its (untrusted)
/// length fields to estimate how many records are being thrown away.
fn tail_account(tail: &[u8]) -> (u64, u64) {
    let mut records = 0u64;
    let mut cur = tail;
    while cur.len() >= RECORD_HEADER {
        let len = u32::from_le_bytes(cur[0..4].try_into().unwrap());
        if len == 0 || len > MAX_RECORD || cur.len() < RECORD_HEADER + len as usize {
            break;
        }
        records += 1;
        cur = &cur[RECORD_HEADER + len as usize..];
    }
    if !cur.is_empty() {
        records += 1; // trailing partial or garbled record
    }
    (tail.len() as u64, records)
}

// ---- encoding helpers -----------------------------------------------------

/// Encode one update operation in the WAL's versioned binary format
/// (without the record framing). Shared with `snb-net`'s wire protocol so
/// an operation has exactly one on-disk / on-wire encoding.
pub fn encode_update(op: &UpdateOp, buf: &mut Vec<u8>) {
    encode_op(op, buf);
}

/// Decode one update operation encoded by [`encode_update`], advancing
/// `p` past it. `None` on truncation or an unknown dictionary reference.
pub fn decode_update(p: &mut &[u8]) -> Option<UpdateOp> {
    decode_op(p)
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn put_tags(buf: &mut Vec<u8>, tags: &[TagId]) {
    put_u64(buf, tags.len() as u64);
    for t in tags {
        put_u64(buf, t.raw());
    }
}

fn get_u64(p: &mut &[u8]) -> Option<u64> {
    if p.len() < 8 {
        return None;
    }
    let v = u64::from_le_bytes(p[..8].try_into().unwrap());
    *p = &p[8..];
    Some(v)
}

fn get_i64(p: &mut &[u8]) -> Option<i64> {
    get_u64(p).map(|v| v as i64)
}

fn get_str(p: &mut &[u8]) -> Option<String> {
    let len = get_u64(p)? as usize;
    if p.len() < len {
        return None;
    }
    let s = String::from_utf8(p[..len].to_vec()).ok()?;
    *p = &p[len..];
    Some(s)
}

fn get_tags(p: &mut &[u8]) -> Option<Vec<TagId>> {
    let n = get_u64(p)? as usize;
    if n > 1 << 20 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(TagId(get_u64(p)?));
    }
    Some(out)
}

fn encode_person(p: &Person, buf: &mut Vec<u8>) {
    put_u64(buf, p.id.raw());
    put_str(buf, p.first_name);
    put_str(buf, p.last_name);
    buf.push(matches!(p.gender, Gender::Female) as u8);
    put_i64(buf, p.birthday.millis());
    put_i64(buf, p.creation_date.millis());
    put_u64(buf, p.city as u64);
    put_u64(buf, p.country as u64);
    put_str(buf, p.browser);
    put_str(buf, &p.location_ip);
    put_u64(buf, p.languages.len() as u64);
    for l in &p.languages {
        put_str(buf, l);
    }
    put_u64(buf, p.emails.len() as u64);
    for e in &p.emails {
        put_str(buf, e);
    }
    put_tags(buf, &p.interests);
    match p.study_at {
        Some(s) => {
            buf.push(1);
            put_u64(buf, s.university.raw());
            put_i64(buf, s.class_year as i64);
        }
        None => buf.push(0),
    }
    put_u64(buf, p.work_at.len() as u64);
    for w in &p.work_at {
        put_u64(buf, w.company.raw());
        put_i64(buf, w.work_from as i64);
    }
}

fn decode_person(p: &mut &[u8]) -> Option<Person> {
    let id = PersonId(get_u64(p)?);
    let first_name = intern_name(&get_str(p)?)?;
    let last_name = intern_name(&get_str(p)?)?;
    let gender = if take_u8(p)? == 1 { Gender::Female } else { Gender::Male };
    let birthday = SimTime(get_i64(p)?);
    let creation_date = SimTime(get_i64(p)?);
    let city = get_u64(p)? as usize;
    let country = get_u64(p)? as usize;
    let browser = intern_browser(&get_str(p)?)?;
    let location_ip = get_str(p)?;
    let n_langs = get_u64(p)? as usize;
    let mut languages = Vec::with_capacity(n_langs);
    for _ in 0..n_langs {
        languages.push(intern_language(&get_str(p)?)?);
    }
    let n_emails = get_u64(p)? as usize;
    let mut emails = Vec::with_capacity(n_emails);
    for _ in 0..n_emails {
        emails.push(get_str(p)?);
    }
    let interests = get_tags(p)?;
    let study_at = if take_u8(p)? == 1 {
        Some(StudyAt { university: OrganisationId(get_u64(p)?), class_year: get_i64(p)? as i32 })
    } else {
        None
    };
    let n_work = get_u64(p)? as usize;
    let mut work_at = Vec::with_capacity(n_work);
    for _ in 0..n_work {
        work_at
            .push(WorkAt { company: OrganisationId(get_u64(p)?), work_from: get_i64(p)? as i32 });
    }
    Some(Person {
        id,
        first_name,
        last_name,
        gender,
        birthday,
        creation_date,
        city,
        country,
        browser,
        location_ip,
        languages,
        emails,
        interests,
        study_at,
        work_at,
    })
}

fn take_u8(p: &mut &[u8]) -> Option<u8> {
    let (&b, rest) = p.split_first()?;
    *p = rest;
    Some(b)
}

fn encode_op(op: &UpdateOp, buf: &mut Vec<u8>) {
    match op {
        UpdateOp::AddPerson(p) => {
            buf.push(1);
            encode_person(p, buf);
        }
        UpdateOp::AddPostLike(l) => {
            buf.push(2);
            encode_like(l, buf);
        }
        UpdateOp::AddCommentLike(l) => {
            buf.push(3);
            encode_like(l, buf);
        }
        UpdateOp::AddForum(f) => {
            buf.push(4);
            put_u64(buf, f.id.raw());
            put_str(buf, &f.title);
            put_u64(buf, f.moderator.raw());
            put_i64(buf, f.creation_date.millis());
            put_tags(buf, &f.tags);
            buf.push(match f.kind {
                ForumKind::Wall => 0,
                ForumKind::Group => 1,
                ForumKind::Album => 2,
            });
        }
        UpdateOp::AddMembership(m) => {
            buf.push(5);
            put_u64(buf, m.forum.raw());
            put_u64(buf, m.person.raw());
            put_i64(buf, m.join_date.millis());
        }
        UpdateOp::AddPost(post) => {
            buf.push(6);
            put_u64(buf, post.id.raw());
            put_u64(buf, post.author.raw());
            put_u64(buf, post.forum.raw());
            put_i64(buf, post.creation_date.millis());
            put_str(buf, &post.content);
            match &post.image_file {
                Some(f) => {
                    buf.push(1);
                    put_str(buf, f);
                }
                None => buf.push(0),
            }
            put_tags(buf, &post.tags);
            put_str(buf, post.language);
            put_u64(buf, post.country as u64);
        }
        UpdateOp::AddComment(c) => {
            buf.push(7);
            put_u64(buf, c.id.raw());
            put_u64(buf, c.author.raw());
            put_i64(buf, c.creation_date.millis());
            put_str(buf, &c.content);
            put_u64(buf, c.reply_to.raw());
            put_u64(buf, c.root_post.raw());
            put_u64(buf, c.forum.raw());
            put_tags(buf, &c.tags);
            put_u64(buf, c.country as u64);
        }
        UpdateOp::AddFriendship(k) => {
            buf.push(8);
            put_u64(buf, k.a.raw());
            put_u64(buf, k.b.raw());
            put_i64(buf, k.creation_date.millis());
        }
    }
}

fn encode_like(l: &Like, buf: &mut Vec<u8>) {
    put_u64(buf, l.person.raw());
    put_u64(buf, l.message.raw());
    put_i64(buf, l.creation_date.millis());
}

fn decode_like(p: &mut &[u8]) -> Option<Like> {
    Some(Like {
        person: PersonId(get_u64(p)?),
        message: MessageId(get_u64(p)?),
        creation_date: SimTime(get_i64(p)?),
    })
}

fn decode_op(p: &mut &[u8]) -> Option<UpdateOp> {
    match take_u8(p)? {
        1 => Some(UpdateOp::AddPerson(decode_person(p)?)),
        2 => Some(UpdateOp::AddPostLike(decode_like(p)?)),
        3 => Some(UpdateOp::AddCommentLike(decode_like(p)?)),
        4 => {
            let id = ForumId(get_u64(p)?);
            let title = get_str(p)?;
            let moderator = PersonId(get_u64(p)?);
            let creation_date = SimTime(get_i64(p)?);
            let tags = get_tags(p)?;
            let kind = match take_u8(p)? {
                0 => ForumKind::Wall,
                1 => ForumKind::Group,
                _ => ForumKind::Album,
            };
            Some(UpdateOp::AddForum(Forum { id, title, moderator, creation_date, tags, kind }))
        }
        5 => Some(UpdateOp::AddMembership(ForumMembership {
            forum: ForumId(get_u64(p)?),
            person: PersonId(get_u64(p)?),
            join_date: SimTime(get_i64(p)?),
        })),
        6 => {
            let id = MessageId(get_u64(p)?);
            let author = PersonId(get_u64(p)?);
            let forum = ForumId(get_u64(p)?);
            let creation_date = SimTime(get_i64(p)?);
            let content = get_str(p)?;
            let image_file = if take_u8(p)? == 1 { Some(get_str(p)?) } else { None };
            let tags = get_tags(p)?;
            let language = intern_language(&get_str(p)?)?;
            let country = get_u64(p)? as usize;
            Some(UpdateOp::AddPost(Post {
                id,
                author,
                forum,
                creation_date,
                content,
                image_file,
                tags,
                language,
                country,
            }))
        }
        7 => Some(UpdateOp::AddComment(Comment {
            id: MessageId(get_u64(p)?),
            author: PersonId(get_u64(p)?),
            creation_date: SimTime(get_i64(p)?),
            content: get_str(p)?,
            reply_to: MessageId(get_u64(p)?),
            root_post: MessageId(get_u64(p)?),
            forum: ForumId(get_u64(p)?),
            tags: get_tags(p)?,
            country: get_u64(p)? as usize,
        })),
        8 => Some(UpdateOp::AddFriendship(Knows {
            a: PersonId(get_u64(p)?),
            b: PersonId(get_u64(p)?),
            creation_date: SimTime(get_i64(p)?),
        })),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::dict::Dictionaries;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("snb-wal-{}-{name}", std::process::id()))
    }

    fn sample_ops() -> Vec<UpdateOp> {
        // Use the generator for realistic, fully populated entities.
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(120).activity(0.3))
                .unwrap();
        let stream = ds.update_stream();
        assert!(stream.len() > 20);
        stream.into_iter().map(|s| s.op).collect()
    }

    fn ops_equal(a: &UpdateOp, b: &UpdateOp) -> bool {
        // Structural comparison via the debug representation; entities are
        // plain data so this is faithful.
        format!("{a:?}") == format!("{b:?}")
    }

    #[test]
    fn append_replay_roundtrip() {
        let _ = Dictionaries::global();
        let path = tmp("roundtrip");
        let ops = sample_ops();
        {
            let wal = Wal::create(&path).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
            assert_eq!(wal.records(), ops.len() as u64);
        }
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops.len(), ops.len());
        assert_eq!(replayed.last_seq, ops.len() as u64);
        assert_eq!(replayed.truncated_bytes, 0);
        for (a, b) in ops.iter().zip(&replayed.ops) {
            assert!(ops_equal(a, b), "mismatch:\n{a:?}\n{b:?}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_reported_not_swallowed() {
        let path = tmp("torn");
        let ops = sample_ops();
        {
            let wal = Wal::create(&path).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
        }
        // Truncate mid-record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops.len(), ops.len() - 1, "exactly the torn record dropped");
        assert_eq!(replayed.last_seq, ops.len() as u64 - 1);
        assert!(replayed.truncated_bytes > 0, "discarded tail must be reported");
        assert_eq!(replayed.truncated_records, 1);
        assert_eq!(
            replayed.valid_bytes + replayed.truncated_bytes,
            bytes.len() as u64 - 3,
            "valid prefix + discarded tail must cover the file"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = tmp("corrupt");
        let ops = sample_ops();
        {
            let wal = Wal::create(&path).unwrap();
            for op in ops.iter().take(5) {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the middle (inside some record).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.ops.len() < 5, "replay must stop at corruption");
        assert!(replayed.truncated_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_length_field_is_detected() {
        // The v1 regression this format fixes: the checksum now covers the
        // length field, so a flipped length byte kills exactly that record
        // instead of desynchronizing the parse or being read as a huge
        // bogus record.
        let path = tmp("badlen");
        let ops = sample_ops();
        {
            let wal = Wal::create(&path).unwrap();
            for op in ops.iter().take(5) {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Locate record 3's length field by walking the clean file.
        let mut off = WAL_MAGIC.len();
        for _ in 0..2 {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += RECORD_HEADER + len;
        }
        bytes[off] ^= 0x55; // low byte of record 3's length
        std::fs::write(&path, &bytes).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.ops.len(), 2, "replay must stop exactly before the bad length");
        assert!(replayed.truncated_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_log_replays_empty() {
        let path = tmp("empty");
        Wal::create(&path).unwrap().flush().unwrap();
        let replayed = replay(&path).unwrap();
        assert!(replayed.ops.is_empty());
        assert_eq!(replayed.valid_bytes, WAL_MAGIC.len() as u64);
        assert_eq!(replayed.truncated_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_append_truncates_tail_and_resumes() {
        let path = tmp("resume");
        let ops = sample_ops();
        {
            let wal = Wal::create(&path).unwrap();
            for op in ops.iter().take(6) {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
        }
        // Tear the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let metrics = WalMetrics::detached();
        let (wal, rep) = Wal::open_append(&path, SyncPolicy::Never, metrics.clone()).unwrap();
        assert_eq!(rep.ops.len(), 5);
        assert_eq!(rep.last_seq, 5);
        assert!(rep.truncated_bytes > 0);
        assert_eq!(metrics.recovery_truncated_bytes.get(), rep.truncated_bytes);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            rep.valid_bytes,
            "torn tail must be physically truncated"
        );
        // Appending resumes at the next sequence number…
        for op in ops.iter().skip(6).take(2) {
            wal.append(op).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // …and a second recovery sees a clean log with all 7 records.
        let rep2 = replay(&path).unwrap();
        assert_eq!(rep2.ops.len(), 7);
        assert_eq!(rep2.last_seq, 7);
        assert_eq!(rep2.truncated_bytes, 0);
        for (a, b) in ops.iter().take(5).chain(ops.iter().skip(6).take(2)).zip(&rep2.ops) {
            assert!(ops_equal(a, b));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn preallocated_zero_tail_is_a_clean_end() {
        let path = tmp("prealloc");
        let ops = sample_ops();
        {
            let wal = Wal::create(&path).unwrap();
            for op in ops.iter().take(4) {
                wal.append(op).unwrap();
            }
            wal.flush().unwrap();
            // Crash before the clean close: the preallocated tail stays.
            std::mem::forget(wal);
        }
        assert_eq!(std::fs::metadata(&path).unwrap().len(), PREALLOC_BYTES);
        let rep = replay(&path).unwrap();
        assert_eq!(rep.ops.len(), 4);
        assert_eq!(rep.truncated_bytes, 0, "a zeroed tail is unused space, not torn data");

        let metrics = WalMetrics::detached();
        let (wal, rep) = Wal::open_append(&path, SyncPolicy::Never, metrics.clone()).unwrap();
        assert_eq!(rep.ops.len(), 4);
        assert_eq!(metrics.recovery_truncated_bytes.get(), 0);
        for op in ops.iter().skip(4).take(3) {
            wal.append(op).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // The clean close gives the preallocation back; all 7 records replay.
        let len = std::fs::metadata(&path).unwrap().len();
        assert!(len < PREALLOC_BYTES, "clean close must trim, got {len}");
        let rep = replay(&path).unwrap();
        assert_eq!(rep.ops.len(), 7);
        assert_eq!(rep.last_seq, 7);
        assert_eq!(rep.valid_bytes, len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_commit_policy_fsyncs_each_commit() {
        let path = tmp("everycommit");
        let metrics = WalMetrics::detached();
        let ops = sample_ops();
        {
            let wal = Wal::create_with(&path, SyncPolicy::EveryCommit, metrics.clone()).unwrap();
            for op in ops.iter().take(10) {
                let a = wal.append(op).unwrap();
                wal.wait_durable(a.seq).unwrap();
            }
            assert_eq!(wal.synced_seq(), 10);
        }
        assert!(metrics.fsyncs.get() >= 10, "one fsync per commit at minimum");
        assert_eq!(metrics.group_size.get(), 10);
        assert!(metrics.fsync_micros.count() >= 10);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_shares_fsyncs_across_threads() {
        let path = tmp("groupcommit");
        let metrics = WalMetrics::detached();
        let ops = sample_ops();
        let per_thread = 10usize;
        let threads = 4usize;
        assert!(ops.len() >= per_thread * threads);
        {
            let wal = Wal::create_with(
                &path,
                SyncPolicy::GroupCommit { max_batch: 8, max_delay: Duration::from_millis(5) },
                metrics.clone(),
            )
            .unwrap();
            std::thread::scope(|s| {
                for t in 0..threads {
                    let wal = &wal;
                    let chunk = &ops[t * per_thread..(t + 1) * per_thread];
                    s.spawn(move || {
                        for op in chunk {
                            let a = wal.append(op).unwrap();
                            wal.wait_durable(a.seq).unwrap();
                        }
                    });
                }
            });
            let total = (per_thread * threads) as u64;
            assert_eq!(wal.synced_seq(), total, "every acknowledged commit durable");
            assert_eq!(metrics.group_size.get(), total);
            assert!(metrics.fsyncs.get() >= 1);
            assert!(metrics.fsyncs.get() <= total, "fsyncs bounded by commits");
        }
        // All records intact and in sequence order on disk.
        let rep = replay(&path).unwrap();
        assert_eq!(rep.ops.len(), per_thread * threads);
        assert_eq!(rep.truncated_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sync_policy_parses_cli_spellings() {
        assert_eq!(SyncPolicy::parse("never"), Some(SyncPolicy::Never));
        assert_eq!(SyncPolicy::parse("commit"), Some(SyncPolicy::EveryCommit));
        assert_eq!(SyncPolicy::parse("every-commit"), Some(SyncPolicy::EveryCommit));
        assert_eq!(SyncPolicy::parse("group"), Some(SyncPolicy::default()));
        assert_eq!(
            SyncPolicy::parse("group:32:250"),
            Some(SyncPolicy::GroupCommit { max_batch: 32, max_delay: Duration::from_micros(250) })
        );
        assert_eq!(SyncPolicy::parse("group:0:250"), None);
        assert_eq!(SyncPolicy::parse("group:x"), None);
        assert_eq!(SyncPolicy::parse("always"), None);
    }
}
