//! Parallel sorted bulk loader.
//!
//! The serial loader builds every date-ordered index with per-item
//! `sorted_insert` — a binary search plus an `O(n)` memmove per entry,
//! `O(n²)` per list in the worst case, all on one thread. Bulk-load time is
//! a first-class benchmark dimension (§4: "32 months are bulkloaded at
//! benchmark start"), so this module builds the same [`Tables`] a different
//! way:
//!
//! 1. every id space (persons, forums, messages) is split into contiguous
//!    ranges, one per worker thread;
//! 2. each worker scans the (read-only) dataset and materializes *only*
//!    the table slots and index lists whose owning id falls in its ranges;
//! 3. each list is sorted **once** with `sort_unstable_by_key` at the end
//!    instead of being kept incrementally sorted;
//! 4. each worker installs its chunk directly into the shared [`Tables`]
//!    (stable [`SegVec`][crate::graph::SegVec] addresses make concurrent
//!    disjoint-slot installs safe), and the table bounds are published
//!    once, after all workers join.
//!
//! Every list is owned by exactly one worker and sorted by the same
//! `(date, id)` key the serial path maintains, and a counting pre-pass
//! replicates the serial `ensure` calls slot for slot *and* records each
//! list's exact final length, so workers allocate every list at final
//! capacity (no growth reallocs) — and the result is identical to a serial
//! load regardless of thread count (asserted by `tests/recovery.rs` and
//! the workspace end-to-end suite).

use crate::graph::{
    comment_row, post_row, Entry, IndexList, IndexTable, MessageRow, Tables, Versioned,
};
use crate::mvcc::BULK_TS;
use snb_core::schema::{Forum, Person};
use snb_core::shard::ShardMap;
use snb_core::time::SimTime;
use snb_core::{ForumId, MessageId};
use snb_datagen::Dataset;
use std::ops::Range;

/// Ownership filter for a shard-local bulk load (`snb serve --shard i/N`).
///
/// Persons and the friendship graph always load — they are replicated on
/// every shard so 2-hop traversals never cross a process boundary. Forums
/// and their activity trees (memberships, posts, comments, likes) load
/// only when the owning forum falls in this shard's id range. Likes name
/// only a message, so their ownership resolves through the dataset's
/// message → forum index — the same co-location [`snb_core::update::StreamKey`]
/// relies on for causal ordering.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShardSel {
    map: ShardMap,
    shard: u32,
}

impl ShardSel {
    pub(crate) fn new(map: ShardMap, shard: u32) -> ShardSel {
        ShardSel { map, shard }
    }

    fn forum(&self, f: ForumId) -> bool {
        self.map.owns_forum(f, self.shard)
    }

    fn message(&self, ds: &Dataset, m: MessageId) -> bool {
        self.forum(ds.forum_of_message(m))
    }
}

/// `sel` keeps everything when absent; otherwise only this shard's slice.
fn keep_forum(sel: Option<&ShardSel>, f: ForumId) -> bool {
    sel.is_none_or(|s| s.forum(f))
}

fn keep_message(sel: Option<&ShardSel>, ds: &Dataset, m: MessageId) -> bool {
    sel.is_none_or(|s| s.message(ds, m))
}

/// The sizing pre-pass result: exact final bound of every [`Tables`]
/// table (replicating the serial loader's `ensure` calls so slot counts —
/// and thus `*_slots()` scan bounds — match the serial path exactly), and
/// the exact number of entries each index list will receive, so workers
/// allocate every list at final capacity and never pay a growth realloc.
#[derive(Debug, Default)]
struct Plan {
    persons: usize,
    forums: usize,
    messages: usize,
    knows: Vec<u32>,
    person_messages: Vec<u32>,
    person_posts: Vec<u32>,
    person_forums: Vec<u32>,
    person_likes: Vec<u32>,
    forum_posts: Vec<u32>,
    forum_members: Vec<u32>,
    message_replies: Vec<u32>,
    message_likes: Vec<u32>,
}

fn bump(slot: &mut usize, idx: usize) {
    *slot = (*slot).max(idx + 1);
}

/// Extend the count vector so slot `idx` exists (an `ensure` without an
/// entry: the serial loader also materializes empty lists up to the
/// highest referenced id).
fn ensure(v: &mut Vec<u32>, idx: usize) {
    if idx >= v.len() {
        v.resize(idx + 1, 0);
    }
}

/// `ensure` plus: one more entry will land in slot `idx`.
fn tick(v: &mut Vec<u32>, idx: usize) {
    ensure(v, idx);
    v[idx] += 1;
}

fn plan(ds: &Dataset, cut: SimTime, sel: Option<&ShardSel>) -> Plan {
    let mut s = Plan::default();
    for p in ds.persons.iter().filter(|p| p.creation_date <= cut) {
        let i = p.id.index();
        bump(&mut s.persons, i);
        ensure(&mut s.knows, i);
        ensure(&mut s.person_messages, i);
        ensure(&mut s.person_posts, i);
        ensure(&mut s.person_forums, i);
        ensure(&mut s.person_likes, i);
    }
    for k in ds.knows.iter().filter(|k| k.creation_date <= cut) {
        tick(&mut s.knows, k.a.index());
        tick(&mut s.knows, k.b.index());
    }
    for f in ds.forums.iter().filter(|f| f.creation_date <= cut && keep_forum(sel, f.id)) {
        let i = f.id.index();
        bump(&mut s.forums, i);
        ensure(&mut s.forum_posts, i);
        ensure(&mut s.forum_members, i);
    }
    for m in ds.memberships.iter().filter(|m| m.join_date <= cut && keep_forum(sel, m.forum)) {
        tick(&mut s.forum_members, m.forum.index());
        tick(&mut s.person_forums, m.person.index());
    }
    for p in ds.posts.iter().filter(|p| p.creation_date <= cut && keep_forum(sel, p.forum)) {
        tick(&mut s.forum_posts, p.forum.index());
        tick(&mut s.person_messages, p.author.index());
        tick(&mut s.person_posts, p.author.index());
        let i = p.id.index();
        bump(&mut s.messages, i);
        ensure(&mut s.message_replies, i);
        ensure(&mut s.message_likes, i);
    }
    for c in ds.comments.iter().filter(|c| c.creation_date <= cut && keep_forum(sel, c.forum)) {
        tick(&mut s.message_replies, c.reply_to.index());
        tick(&mut s.person_messages, c.author.index());
        let i = c.id.index();
        bump(&mut s.messages, i);
        ensure(&mut s.message_replies, i);
        ensure(&mut s.message_likes, i);
    }
    for l in ds.likes.iter().filter(|l| l.creation_date <= cut && keep_message(sel, ds, l.message))
    {
        tick(&mut s.message_likes, l.message.index());
        tick(&mut s.person_likes, l.person.index());
    }
    s
}

/// Contiguous slice of `0..len` owned by worker `t` of `threads` (empty
/// for trailing workers when `len < threads`).
fn range_of(len: usize, threads: usize, t: usize) -> Range<usize> {
    let chunk = len.div_ceil(threads).max(1);
    (t * chunk).min(len)..((t + 1) * chunk).min(len)
}

/// One worker's contiguous slice of every table.
#[derive(Debug, Default)]
struct Shard {
    persons: Vec<Option<Versioned<Person>>>,
    forums: Vec<Option<Versioned<Forum>>>,
    messages: Vec<Option<Versioned<MessageRow>>>,
    knows: Vec<Vec<Entry>>,
    person_messages: Vec<Vec<Entry>>,
    person_posts: Vec<Vec<Entry>>,
    forum_posts: Vec<Vec<Entry>>,
    forum_members: Vec<Vec<Entry>>,
    person_forums: Vec<Vec<Entry>>,
    message_replies: Vec<Vec<Entry>>,
    message_likes: Vec<Vec<Entry>>,
    person_likes: Vec<Vec<Entry>>,
}

fn entry(date: SimTime, id: u64) -> Entry {
    Entry { date, id, commit: BULK_TS }
}

/// Each list allocated at its exact final capacity, so pushes never
/// realloc (capacity is invisible to the identical-results contract).
fn with_caps(counts: &[u32]) -> Vec<Vec<Entry>> {
    counts.iter().map(|&c| Vec::with_capacity(c as usize)).collect()
}

fn build_shard(
    ds: &Dataset,
    cut: SimTime,
    sel: Option<&ShardSel>,
    s: &Plan,
    threads: usize,
    t: usize,
) -> Shard {
    let persons_r = range_of(s.persons, threads, t);
    let knows_r = range_of(s.knows.len(), threads, t);
    let person_messages_r = range_of(s.person_messages.len(), threads, t);
    let person_posts_r = range_of(s.person_posts.len(), threads, t);
    let person_forums_r = range_of(s.person_forums.len(), threads, t);
    let person_likes_r = range_of(s.person_likes.len(), threads, t);
    let forums_r = range_of(s.forums, threads, t);
    let forum_posts_r = range_of(s.forum_posts.len(), threads, t);
    let forum_members_r = range_of(s.forum_members.len(), threads, t);
    let messages_r = range_of(s.messages, threads, t);
    let message_replies_r = range_of(s.message_replies.len(), threads, t);
    let message_likes_r = range_of(s.message_likes.len(), threads, t);

    let mut sh = Shard {
        persons: vec![None; persons_r.len()],
        forums: vec![None; forums_r.len()],
        messages: vec![None; messages_r.len()],
        knows: with_caps(&s.knows[knows_r.clone()]),
        person_messages: with_caps(&s.person_messages[person_messages_r.clone()]),
        person_posts: with_caps(&s.person_posts[person_posts_r.clone()]),
        forum_posts: with_caps(&s.forum_posts[forum_posts_r.clone()]),
        forum_members: with_caps(&s.forum_members[forum_members_r.clone()]),
        person_forums: with_caps(&s.person_forums[person_forums_r.clone()]),
        message_replies: with_caps(&s.message_replies[message_replies_r.clone()]),
        message_likes: with_caps(&s.message_likes[message_likes_r.clone()]),
        person_likes: with_caps(&s.person_likes[person_likes_r.clone()]),
    };

    for p in ds.persons.iter().filter(|p| p.creation_date <= cut) {
        let i = p.id.index();
        if persons_r.contains(&i) {
            sh.persons[i - persons_r.start] = Some(Versioned { commit: BULK_TS, row: p.clone() });
        }
    }
    for k in ds.knows.iter().filter(|k| k.creation_date <= cut) {
        let (a, b) = (k.a.index(), k.b.index());
        if knows_r.contains(&a) {
            sh.knows[a - knows_r.start].push(entry(k.creation_date, k.b.raw()));
        }
        if knows_r.contains(&b) {
            sh.knows[b - knows_r.start].push(entry(k.creation_date, k.a.raw()));
        }
    }
    for f in ds.forums.iter().filter(|f| f.creation_date <= cut && keep_forum(sel, f.id)) {
        let i = f.id.index();
        if forums_r.contains(&i) {
            sh.forums[i - forums_r.start] = Some(Versioned { commit: BULK_TS, row: f.clone() });
        }
    }
    for m in ds.memberships.iter().filter(|m| m.join_date <= cut && keep_forum(sel, m.forum)) {
        let (f, p) = (m.forum.index(), m.person.index());
        if forum_members_r.contains(&f) {
            sh.forum_members[f - forum_members_r.start].push(entry(m.join_date, m.person.raw()));
        }
        if person_forums_r.contains(&p) {
            sh.person_forums[p - person_forums_r.start].push(entry(m.join_date, m.forum.raw()));
        }
    }
    for p in ds.posts.iter().filter(|p| p.creation_date <= cut && keep_forum(sel, p.forum)) {
        let f = p.forum.index();
        if forum_posts_r.contains(&f) {
            sh.forum_posts[f - forum_posts_r.start].push(entry(p.creation_date, p.id.raw()));
        }
        let a = p.author.index();
        if person_messages_r.contains(&a) {
            sh.person_messages[a - person_messages_r.start]
                .push(entry(p.creation_date, p.id.raw()));
        }
        if person_posts_r.contains(&a) {
            sh.person_posts[a - person_posts_r.start].push(entry(p.creation_date, p.id.raw()));
        }
        let i = p.id.index();
        if messages_r.contains(&i) {
            sh.messages[i - messages_r.start] =
                Some(Versioned { commit: BULK_TS, row: post_row(p) });
        }
    }
    for c in ds.comments.iter().filter(|c| c.creation_date <= cut && keep_forum(sel, c.forum)) {
        let parent = c.reply_to.index();
        if message_replies_r.contains(&parent) {
            sh.message_replies[parent - message_replies_r.start]
                .push(entry(c.creation_date, c.id.raw()));
        }
        let a = c.author.index();
        if person_messages_r.contains(&a) {
            sh.person_messages[a - person_messages_r.start]
                .push(entry(c.creation_date, c.id.raw()));
        }
        let i = c.id.index();
        if messages_r.contains(&i) {
            sh.messages[i - messages_r.start] =
                Some(Versioned { commit: BULK_TS, row: comment_row(c) });
        }
    }
    for l in ds.likes.iter().filter(|l| l.creation_date <= cut && keep_message(sel, ds, l.message))
    {
        let m = l.message.index();
        if message_likes_r.contains(&m) {
            sh.message_likes[m - message_likes_r.start]
                .push(entry(l.creation_date, l.person.raw()));
        }
        let p = l.person.index();
        if person_likes_r.contains(&p) {
            sh.person_likes[p - person_likes_r.start].push(entry(l.creation_date, l.message.raw()));
        }
    }

    // Sort each index list once — same `(date, id)` order `sorted_insert`
    // maintains incrementally.
    let lists = sh
        .knows
        .iter_mut()
        .chain(sh.person_messages.iter_mut())
        .chain(sh.person_posts.iter_mut())
        .chain(sh.forum_posts.iter_mut())
        .chain(sh.forum_members.iter_mut())
        .chain(sh.person_forums.iter_mut())
        .chain(sh.message_replies.iter_mut())
        .chain(sh.message_likes.iter_mut())
        .chain(sh.person_likes.iter_mut());
    for list in lists {
        list.sort_unstable_by_key(|e| (e.date, e.id));
    }
    sh
}

/// Install `lists` as immutable bulk prefixes at `table[start..]`.
///
/// Uses [`SegVec::set_slot`][crate::graph::SegVec] (no bound bump): slots
/// stay invisible to readers until the final publication pass in
/// [`build_into`] raises each table's high-water mark.
fn put_lists(table: &IndexTable, start: usize, lists: Vec<Vec<Entry>>) {
    for (j, list) in lists.into_iter().enumerate() {
        table.set_slot(start + j, IndexList::from_bulk(list));
    }
}

/// Install one worker's shard into the shared tables. Ranges are
/// recomputed from the same `(len, threads, t)` inputs `build_shard` used,
/// so every slot index lands exactly where the serial loader would put it.
fn install_shard(tables: &Tables, sh: Shard, s: &Plan, threads: usize, t: usize) {
    let persons_r = range_of(s.persons, threads, t);
    for (j, p) in sh.persons.into_iter().enumerate() {
        if let Some(v) = p {
            tables.persons.set_slot(persons_r.start + j, v);
        }
    }
    let forums_r = range_of(s.forums, threads, t);
    for (j, f) in sh.forums.into_iter().enumerate() {
        if let Some(v) = f {
            tables.forums.set_slot(forums_r.start + j, v);
        }
    }
    let messages_r = range_of(s.messages, threads, t);
    for (j, m) in sh.messages.into_iter().enumerate() {
        if let Some(v) = m {
            tables.messages.set_slot(messages_r.start + j, v);
        }
    }
    put_lists(&tables.knows, range_of(s.knows.len(), threads, t).start, sh.knows);
    put_lists(
        &tables.person_messages,
        range_of(s.person_messages.len(), threads, t).start,
        sh.person_messages,
    );
    put_lists(
        &tables.person_posts,
        range_of(s.person_posts.len(), threads, t).start,
        sh.person_posts,
    );
    put_lists(&tables.forum_posts, range_of(s.forum_posts.len(), threads, t).start, sh.forum_posts);
    put_lists(
        &tables.forum_members,
        range_of(s.forum_members.len(), threads, t).start,
        sh.forum_members,
    );
    put_lists(
        &tables.person_forums,
        range_of(s.person_forums.len(), threads, t).start,
        sh.person_forums,
    );
    put_lists(
        &tables.message_replies,
        range_of(s.message_replies.len(), threads, t).start,
        sh.message_replies,
    );
    put_lists(
        &tables.message_likes,
        range_of(s.message_likes.len(), threads, t).start,
        sh.message_likes,
    );
    put_lists(
        &tables.person_likes,
        range_of(s.person_likes.len(), threads, t).start,
        sh.person_likes,
    );
}

/// Build `ds` (entities dated at or before `cut`) straight into `tables`
/// using `threads` workers. `tables` must be empty. Every loader entry
/// carries `BULK_TS`, so each list's bulk-prefix fast lane covers it
/// entirely.
pub(crate) fn build_into(tables: &Tables, ds: &Dataset, cut: SimTime, threads: usize) {
    build_into_sharded(tables, ds, cut, threads, None)
}

/// [`build_into`] restricted to one shard's slice when `sel` is set:
/// persons and knows load fully (replicated), forum-rooted activity loads
/// only when [`ShardSel`] owns its forum. The per-thread range split and
/// sort order are unchanged, so a shard's tables are byte-identical to a
/// full load with the foreign activity simply absent.
pub(crate) fn build_into_sharded(
    tables: &Tables,
    ds: &Dataset,
    cut: SimTime,
    threads: usize,
    sel: Option<ShardSel>,
) {
    let threads = threads.max(1);
    let sel = sel.as_ref();
    let s = plan(ds, cut, sel);
    std::thread::scope(|scope| {
        let s = &s;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let sh = build_shard(ds, cut, sel, s, threads, t);
                    install_shard(tables, sh, s, threads, t);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("bulk-load worker panicked");
        }
    });
    // Publish the bounds last: `SegVec::get` gates on `high`, so nothing
    // installed above is reachable until these stores land. (Bulk load is
    // not atomic with respect to concurrent readers — see
    // `Store::bulk_load_until_threads` — but the bound-last order still
    // guarantees no reader can reach an uninitialized slot.)
    tables.persons.bump(s.persons);
    tables.forums.bump(s.forums);
    tables.messages.bump(s.messages);
    tables.knows.bump(s.knows.len());
    tables.person_messages.bump(s.person_messages.len());
    tables.person_posts.bump(s.person_posts.len());
    tables.forum_posts.bump(s.forum_posts.len());
    tables.forum_members.bump(s.forum_members.len());
    tables.person_forums.bump(s.person_forums.len());
    tables.message_replies.bump(s.message_replies.len());
    tables.message_likes.bump(s.message_likes.len());
    tables.person_likes.bump(s.person_likes.len());
}
