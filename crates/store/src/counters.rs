//! Store-level runtime counters.
//!
//! One [`StoreCounters`] instance lives in each [`crate::Store`]; hot paths
//! hold pre-registered [`Counter`] handles so recording is a single relaxed
//! atomic add. Names follow the workspace `layer.subsystem.metric`
//! convention so they land sorted and greppable in the full-disclosure
//! export.

use crate::stats::StorageStats;
use crate::wal::WalMetrics;
use snb_obs::{Counter, Counters, Gauge, HistogramSnapshot, LatencyHistogram};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Stripes in the writer lock map (shared with `graph.rs`; also the length
/// of the per-stripe telemetry arrays below).
pub const STRIPES: usize = 64;

/// Latency histograms for each named stage of the write pipeline, in
/// **nanoseconds** — most stages are sub-microsecond, and nanosecond
/// samples keep the histogram sums exact. Stages tile `Store::apply` end-to-end (stage sums ≈
/// measured op latency), so the full-disclosure table can attribute
/// multi-writer collapse to a specific stage instead of an aggregate
/// "writes got slower".
#[derive(Debug, Default)]
pub struct StageHistograms {
    /// Time blocked acquiring the op's stripe locks
    /// (`store.stage.stripe_wait_nanos`).
    pub stripe_wait: LatencyHistogram,
    /// Pre-image validation under the stripe locks
    /// (`store.stage.validate_nanos`).
    pub validate: LatencyHistogram,
    /// WAL record append, excluding fsync (`store.stage.wal_append_nanos`).
    pub wal_append: LatencyHistogram,
    /// CommitClock timestamp reservation (`store.stage.reserve_nanos`).
    pub reserve: LatencyHistogram,
    /// Row/index insertion at the reserved timestamp
    /// (`store.stage.apply_nanos`).
    pub apply: LatencyHistogram,
    /// Out-of-order publication on the CommitClock: marking the commit in
    /// the publication ring, helping the watermark advance, and (rarely)
    /// parking for ring-wraparound room
    /// (`store.stage.publish_wait_nanos`).
    pub publish_wait: LatencyHistogram,
    /// Group-commit durability wait after publish, outside the stripe
    /// locks (`store.stage.durable_wait_nanos`).
    pub durable_wait: LatencyHistogram,
    /// Stripe-held time of transactions *rejected* by validation
    /// (`store.stage.validate_failed_nanos`). Deliberately outside
    /// [`StageHistograms::named`]'s committed-path tiling: failed ops burn
    /// `stripe_wait` plus this, and splitting the sample keeps conflict
    /// pressure visible without skewing the commit attribution.
    pub validate_failed: LatencyHistogram,
}

impl StageHistograms {
    /// `(name, histogram)` for each stage, in pipeline order.
    pub fn named(&self) -> [(&'static str, &LatencyHistogram); 7] {
        [
            ("store.stage.stripe_wait_nanos", &self.stripe_wait),
            ("store.stage.validate_nanos", &self.validate),
            ("store.stage.wal_append_nanos", &self.wal_append),
            ("store.stage.reserve_nanos", &self.reserve),
            ("store.stage.apply_nanos", &self.apply),
            ("store.stage.publish_wait_nanos", &self.publish_wait),
            ("store.stage.durable_wait_nanos", &self.durable_wait),
        ]
    }
}

/// Per-stripe contention telemetry: how often each of the [`STRIPES`]
/// writer locks was found contended, and how long contended acquisitions
/// waited. Indexed by stripe, so hot stripes show up as a heatmap rather
/// than vanishing into a global total.
#[derive(Debug)]
pub struct StripeTelemetry {
    conflicts: Box<[AtomicU64]>,
    wait: Box<[LatencyHistogram]>,
}

impl Default for StripeTelemetry {
    fn default() -> Self {
        StripeTelemetry {
            conflicts: (0..STRIPES).map(|_| AtomicU64::new(0)).collect(),
            wait: (0..STRIPES).map(|_| LatencyHistogram::new()).collect(),
        }
    }
}

impl StripeTelemetry {
    /// Record a contended acquisition of `stripe` that blocked for
    /// `wait_nanos` before getting the lock.
    #[inline]
    pub fn note_conflict(&self, stripe: usize, wait_nanos: u64) {
        self.conflicts[stripe].fetch_add(1, Ordering::Relaxed);
        self.wait[stripe].record(wait_nanos);
    }

    /// Conflict count per stripe index (the heatmap).
    pub fn conflict_counts(&self) -> Vec<u64> {
        self.conflicts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }

    /// Acquire-wait distribution for one stripe.
    pub fn wait_hist(&self, stripe: usize) -> &LatencyHistogram {
        &self.wait[stripe]
    }

    /// All stripes' waits folded into one store-wide distribution.
    pub fn merged_wait(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for h in self.wait.iter() {
            merged.merge(&h.snapshot());
        }
        merged
    }
}

/// Index-table order shared by [`MemGauges::run_bytes`] and the store's
/// per-index footprint walk — the two sides `debug_assert` against each
/// other at refresh time so names can't drift.
pub const MEM_INDEX_NAMES: [&str; 9] = [
    "knows",
    "person_messages",
    "person_posts",
    "forum_posts",
    "forum_members",
    "person_forums",
    "message_replies",
    "message_likes",
    "person_likes",
];

/// The `store.mem.*` gauge family: real measured memory, refreshed on
/// demand (a full walk of the tables is too expensive per write, so
/// [`crate::Store::refresh_mem_gauges`] runs right before counters are
/// snapshot — the numbers in any report are current as of that report).
/// Registered in the same registry as the counters, so they ride every
/// existing export path: `snapshot()`, the counters RPC, and `--json`
/// full disclosure.
#[derive(Debug)]
pub struct MemGauges {
    /// Compact run bytes per index table (`store.mem.run_bytes.<index>`,
    /// ordered as [`MEM_INDEX_NAMES`]): bulk prefix + ladder runs, anchors
    /// + delta streams.
    pub run_bytes: [Gauge; 9],
    /// Raw (uncompressed) tail slot bytes across all indexes
    /// (`store.mem.tail_bytes`).
    pub tail_bytes: Gauge,
    /// Entity-row heap bytes: persons + forums + messages including string
    /// content (`store.mem.entity_bytes`).
    pub entity_bytes: Gauge,
    /// Global dictionary heap bytes (`store.mem.dict_bytes`) — shared
    /// process-wide, reported once.
    pub dict_bytes: Gauge,
    /// Total index bytes, runs + tails (`store.mem.index_bytes`).
    pub index_bytes: Gauge,
    /// Resident bytes per visible person (`store.mem.bytes_per_person`).
    pub bytes_per_person: Gauge,
    /// Resident bytes per visible message
    /// (`store.mem.bytes_per_message`).
    pub bytes_per_message: Gauge,
}

impl MemGauges {
    fn new(registry: &Counters) -> MemGauges {
        const RUN_NAMES: [&str; 9] = [
            "store.mem.run_bytes.knows",
            "store.mem.run_bytes.person_messages",
            "store.mem.run_bytes.person_posts",
            "store.mem.run_bytes.forum_posts",
            "store.mem.run_bytes.forum_members",
            "store.mem.run_bytes.person_forums",
            "store.mem.run_bytes.message_replies",
            "store.mem.run_bytes.message_likes",
            "store.mem.run_bytes.person_likes",
        ];
        MemGauges {
            run_bytes: std::array::from_fn(|i| registry.gauge(RUN_NAMES[i])),
            tail_bytes: registry.gauge("store.mem.tail_bytes"),
            entity_bytes: registry.gauge("store.mem.entity_bytes"),
            dict_bytes: registry.gauge("store.mem.dict_bytes"),
            index_bytes: registry.gauge("store.mem.index_bytes"),
            bytes_per_person: registry.gauge("store.mem.bytes_per_person"),
            bytes_per_message: registry.gauge("store.mem.bytes_per_message"),
        }
    }

    /// Overwrite every gauge from a fresh [`StorageStats`] walk.
    pub(crate) fn refresh(&self, stats: &StorageStats, dict_bytes: usize) {
        for (i, (name, f)) in stats.per_index.iter().enumerate() {
            debug_assert_eq!(*name, MEM_INDEX_NAMES[i], "gauge/footprint order drift");
            self.run_bytes[i].set(f.run_bytes as u64);
        }
        self.tail_bytes.set(stats.index.tail_bytes as u64);
        self.entity_bytes.set(stats.entity_bytes as u64);
        self.dict_bytes.set(dict_bytes as u64);
        self.index_bytes.set(stats.index.bytes() as u64);
        self.bytes_per_person.set(stats.bytes_per_person() as u64);
        self.bytes_per_message.set(stats.bytes_per_message() as u64);
    }
}

/// Counter handles for every store subsystem.
#[derive(Debug)]
pub struct StoreCounters {
    registry: Counters,
    /// Snapshots opened (`store.mvcc.snapshots`).
    pub snapshots: Counter,
    /// Version-stamped entries examined by snapshot reads
    /// (`store.mvcc.versions_walked`) — the MVCC walk length.
    pub versions_walked: Counter,
    /// Entries skipped because they were invisible to the reading snapshot
    /// (`store.mvcc.versions_skipped`).
    pub versions_skipped: Counter,
    /// Committed transactions (`store.txn.commits`).
    pub commits: Counter,
    /// Transactions rejected by validation (`store.txn.conflicts`).
    pub conflicts: Counter,
    /// Index entries served from the bulk-prefix fast lane — no `visible()`
    /// check needed (`store.read.fastlane_entries`). Renamed from the
    /// pre-PR-5 `store.read.fastpath_entries` to match the "fast lane"
    /// terminology used everywhere else.
    pub read_fastlane_entries: Counter,
    /// Latch-free read snapshots opened (`store.read.latchfree_reads`):
    /// pinned snapshots that never touch a lock — readers see the store
    /// through release/acquire tail publication alone. Replaces the
    /// pre-latch-free `store.read.guard_pins`.
    pub read_latchfree: Counter,
    /// Writer stripe-lock acquisitions that found the stripe contended and
    /// had to block (`store.write.shard_conflicts`) — the residual
    /// serialization between shard-colliding transactions.
    pub write_shard_conflicts: Counter,
    /// Park rounds publishers spent waiting for publication-ring room
    /// (`store.write.publish_parks`): nonzero only when a commit ran more
    /// than the ring capacity ahead of the visibility watermark — a
    /// straggler-pathology signal, not a steady-state cost.
    pub publish_parks: Counter,
    /// Watermark lag observed at publish (`store.write.watermark_lag`):
    /// how many earlier reservations were still unpublished when each
    /// commit published, i.e. how far out of order commits complete.
    /// Samples are timestamp counts, not nanoseconds.
    pub watermark_lag: LatencyHistogram,
    /// WAL records appended (`store.wal.appends`).
    pub wal_appends: Counter,
    /// WAL bytes written including record headers (`store.wal.bytes`).
    pub wal_bytes: Counter,
    /// `fdatasync` calls issued by the WAL (`store.wal.fsyncs`).
    pub wal_fsyncs: Counter,
    /// Records made durable summed over all fsyncs (`store.wal.group_size`);
    /// mean commit-group size = `group_size / fsyncs`.
    pub wal_group_size: Counter,
    /// WAL flush/sync failures, including those surfaced from `Drop`
    /// (`store.wal.sync_errors`).
    pub wal_sync_errors: Counter,
    /// Bytes cut off the WAL tail during crash recovery
    /// (`store.wal.recovery_truncated_bytes`).
    pub wal_recovery_truncated_bytes: Counter,
    /// WAL fsync latency distribution, in microseconds.
    pub wal_fsync_micros: Arc<LatencyHistogram>,
    /// Write-pipeline stage latency breakdown (see [`StageHistograms`]).
    pub stages: StageHistograms,
    /// Per-stripe conflict heatmap + acquire-wait distributions.
    pub stripes: StripeTelemetry,
    /// Measured memory gauges (see [`MemGauges`]).
    pub mem: MemGauges,
}

impl Default for StoreCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreCounters {
    pub fn new() -> StoreCounters {
        let registry = Counters::new();
        StoreCounters {
            snapshots: registry.counter("store.mvcc.snapshots"),
            versions_walked: registry.counter("store.mvcc.versions_walked"),
            versions_skipped: registry.counter("store.mvcc.versions_skipped"),
            commits: registry.counter("store.txn.commits"),
            conflicts: registry.counter("store.txn.conflicts"),
            read_fastlane_entries: registry.counter("store.read.fastlane_entries"),
            read_latchfree: registry.counter("store.read.latchfree_reads"),
            write_shard_conflicts: registry.counter("store.write.shard_conflicts"),
            publish_parks: registry.counter("store.write.publish_parks"),
            watermark_lag: LatencyHistogram::new(),
            wal_appends: registry.counter("store.wal.appends"),
            wal_bytes: registry.counter("store.wal.bytes"),
            wal_fsyncs: registry.counter("store.wal.fsyncs"),
            wal_group_size: registry.counter("store.wal.group_size"),
            wal_sync_errors: registry.counter("store.wal.sync_errors"),
            wal_recovery_truncated_bytes: registry.counter("store.wal.recovery_truncated_bytes"),
            wal_fsync_micros: Arc::new(LatencyHistogram::new()),
            stages: StageHistograms::default(),
            stripes: StripeTelemetry::default(),
            mem: MemGauges::new(&registry),
            registry,
        }
    }

    /// Every store-side latency distribution by name: the seven write
    /// stages, the failed-validation split, the watermark-lag distribution
    /// (timestamp counts, not time), the WAL fsync distribution, and the
    /// merged per-stripe acquire-wait. This is what the full-disclosure
    /// export and the counters RPC ship.
    pub fn histogram_snapshots(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut out: Vec<(String, HistogramSnapshot)> =
            self.stages.named().iter().map(|(name, h)| (name.to_string(), h.snapshot())).collect();
        out.push((
            "store.stage.validate_failed_nanos".to_string(),
            self.stages.validate_failed.snapshot(),
        ));
        out.push(("store.write.watermark_lag".to_string(), self.watermark_lag.snapshot()));
        out.push(("store.wal.fsync_micros".to_string(), self.wal_fsync_micros.snapshot()));
        out.push(("store.stripe.wait_nanos".to_string(), self.stripes.merged_wait()));
        out
    }

    /// Handles for the WAL to record into (shared with this registry, so
    /// WAL activity shows up in [`StoreCounters::snapshot`]).
    pub fn wal_metrics(&self) -> WalMetrics {
        WalMetrics {
            fsyncs: self.wal_fsyncs.clone(),
            group_size: self.wal_group_size.clone(),
            sync_errors: self.wal_sync_errors.clone(),
            recovery_truncated_bytes: self.wal_recovery_truncated_bytes.clone(),
            fsync_micros: Arc::clone(&self.wal_fsync_micros),
        }
    }

    /// Current values in sorted name order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_all_counters_sorted() {
        let c = StoreCounters::new();
        c.snapshots.inc();
        c.wal_bytes.add(100);
        let snap = c.snapshot();
        let names: Vec<&str> = snap.iter().map(|&(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), 30);
        assert!(snap.contains(&("store.mvcc.snapshots", 1)));
        // The store.mem.* gauge family registers eagerly so remote and
        // local disclosures agree on the name set even before a refresh.
        for idx in MEM_INDEX_NAMES {
            assert!(names.iter().any(|n| n.strip_prefix("store.mem.run_bytes.") == Some(idx)));
        }
        assert!(names.contains(&"store.mem.tail_bytes"));
        assert!(names.contains(&"store.mem.dict_bytes"));
        assert!(names.contains(&"store.mem.index_bytes"));
        assert!(names.contains(&"store.mem.entity_bytes"));
        assert!(names.contains(&"store.mem.bytes_per_person"));
        assert!(names.contains(&"store.mem.bytes_per_message"));
        assert!(names.contains(&"store.read.fastlane_entries"));
        assert!(!names.contains(&"store.read.fastpath_entries"), "pre-PR-5 name must be gone");
        assert!(names.contains(&"store.read.latchfree_reads"));
        assert!(names.contains(&"store.write.shard_conflicts"));
        assert!(names.contains(&"store.write.publish_parks"));
        assert!(snap.contains(&("store.wal.bytes", 100)));
    }

    #[test]
    fn histogram_snapshots_cover_stages_wal_and_stripes() {
        let c = StoreCounters::new();
        c.stages.publish_wait.record(120);
        c.stages.validate_failed.record(90);
        c.watermark_lag.record(3);
        c.stripes.note_conflict(3, 55);
        c.stripes.note_conflict(3, 70);
        c.stripes.note_conflict(9, 10);
        let snaps = c.histogram_snapshots();
        let names: Vec<&str> = snaps.iter().map(|(n, _)| n.as_str()).collect();
        for expect in [
            "store.stage.stripe_wait_nanos",
            "store.stage.validate_nanos",
            "store.stage.wal_append_nanos",
            "store.stage.reserve_nanos",
            "store.stage.apply_nanos",
            "store.stage.publish_wait_nanos",
            "store.stage.durable_wait_nanos",
            "store.stage.validate_failed_nanos",
            "store.write.watermark_lag",
            "store.wal.fsync_micros",
            "store.stripe.wait_nanos",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
        let publish = &snaps.iter().find(|(n, _)| n.ends_with("publish_wait_nanos")).unwrap().1;
        assert_eq!(publish.count, 1);
        let stripe_wait = &snaps.iter().find(|(n, _)| n.starts_with("store.stripe")).unwrap().1;
        assert_eq!(stripe_wait.count, 3, "merged wait folds every stripe");
        assert_eq!(stripe_wait.max, 70);
        let heat = c.stripes.conflict_counts();
        assert_eq!(heat.len(), STRIPES);
        assert_eq!(heat[3], 2);
        assert_eq!(heat[9], 1);
        assert_eq!(heat.iter().sum::<u64>(), 3);
    }
}
