//! Store-level runtime counters.
//!
//! One [`StoreCounters`] instance lives in each [`crate::Store`]; hot paths
//! hold pre-registered [`Counter`] handles so recording is a single relaxed
//! atomic add. Names follow the workspace `layer.subsystem.metric`
//! convention so they land sorted and greppable in the full-disclosure
//! export.

use crate::wal::WalMetrics;
use snb_obs::{Counter, Counters, LatencyHistogram};
use std::sync::Arc;

/// Counter handles for every store subsystem.
#[derive(Debug)]
pub struct StoreCounters {
    registry: Counters,
    /// Snapshots opened (`store.mvcc.snapshots`).
    pub snapshots: Counter,
    /// Version-stamped entries examined by snapshot reads
    /// (`store.mvcc.versions_walked`) — the MVCC walk length.
    pub versions_walked: Counter,
    /// Entries skipped because they were invisible to the reading snapshot
    /// (`store.mvcc.versions_skipped`).
    pub versions_skipped: Counter,
    /// Committed transactions (`store.txn.commits`).
    pub commits: Counter,
    /// Transactions rejected by validation (`store.txn.conflicts`).
    pub conflicts: Counter,
    /// Index entries served from the bulk-prefix fast lane — no `visible()`
    /// check needed (`store.read.fastpath_entries`).
    pub read_fastpath_entries: Counter,
    /// Latch-free read snapshots opened (`store.read.latchfree_reads`):
    /// pinned snapshots that never touch a lock — readers see the store
    /// through release/acquire tail publication alone. Replaces the
    /// pre-latch-free `store.read.guard_pins`.
    pub read_latchfree: Counter,
    /// Writer stripe-lock acquisitions that found the stripe contended and
    /// had to block (`store.write.shard_conflicts`) — the residual
    /// serialization between shard-colliding transactions.
    pub write_shard_conflicts: Counter,
    /// WAL records appended (`store.wal.appends`).
    pub wal_appends: Counter,
    /// WAL bytes written including record headers (`store.wal.bytes`).
    pub wal_bytes: Counter,
    /// `fdatasync` calls issued by the WAL (`store.wal.fsyncs`).
    pub wal_fsyncs: Counter,
    /// Records made durable summed over all fsyncs (`store.wal.group_size`);
    /// mean commit-group size = `group_size / fsyncs`.
    pub wal_group_size: Counter,
    /// WAL flush/sync failures, including those surfaced from `Drop`
    /// (`store.wal.sync_errors`).
    pub wal_sync_errors: Counter,
    /// Bytes cut off the WAL tail during crash recovery
    /// (`store.wal.recovery_truncated_bytes`).
    pub wal_recovery_truncated_bytes: Counter,
    /// WAL fsync latency distribution, in microseconds.
    pub wal_fsync_micros: Arc<LatencyHistogram>,
}

impl Default for StoreCounters {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreCounters {
    pub fn new() -> StoreCounters {
        let registry = Counters::new();
        StoreCounters {
            snapshots: registry.counter("store.mvcc.snapshots"),
            versions_walked: registry.counter("store.mvcc.versions_walked"),
            versions_skipped: registry.counter("store.mvcc.versions_skipped"),
            commits: registry.counter("store.txn.commits"),
            conflicts: registry.counter("store.txn.conflicts"),
            read_fastpath_entries: registry.counter("store.read.fastpath_entries"),
            read_latchfree: registry.counter("store.read.latchfree_reads"),
            write_shard_conflicts: registry.counter("store.write.shard_conflicts"),
            wal_appends: registry.counter("store.wal.appends"),
            wal_bytes: registry.counter("store.wal.bytes"),
            wal_fsyncs: registry.counter("store.wal.fsyncs"),
            wal_group_size: registry.counter("store.wal.group_size"),
            wal_sync_errors: registry.counter("store.wal.sync_errors"),
            wal_recovery_truncated_bytes: registry.counter("store.wal.recovery_truncated_bytes"),
            wal_fsync_micros: Arc::new(LatencyHistogram::new()),
            registry,
        }
    }

    /// Handles for the WAL to record into (shared with this registry, so
    /// WAL activity shows up in [`StoreCounters::snapshot`]).
    pub fn wal_metrics(&self) -> WalMetrics {
        WalMetrics {
            fsyncs: self.wal_fsyncs.clone(),
            group_size: self.wal_group_size.clone(),
            sync_errors: self.wal_sync_errors.clone(),
            recovery_truncated_bytes: self.wal_recovery_truncated_bytes.clone(),
            fsync_micros: Arc::clone(&self.wal_fsync_micros),
        }
    }

    /// Current values in sorted name order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_all_counters_sorted() {
        let c = StoreCounters::new();
        c.snapshots.inc();
        c.wal_bytes.add(100);
        let snap = c.snapshot();
        let names: Vec<&str> = snap.iter().map(|&(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(names.len(), 14);
        assert!(snap.contains(&("store.mvcc.snapshots", 1)));
        assert!(names.contains(&"store.read.fastpath_entries"));
        assert!(names.contains(&"store.read.latchfree_reads"));
        assert!(names.contains(&"store.write.shard_conflicts"));
        assert!(snap.contains(&("store.wal.bytes", 100)));
    }
}
