//! Multi-version concurrency control for an insert-only workload.
//!
//! The SNB-Interactive rules require ACID transactions with serializability,
//! and note that "given the nature of the update workload, systems providing
//! snapshot isolation behave identically to serializable" (§4, Rules and
//! Metrics). The workload only ever *inserts* new entities, which makes MVCC
//! particularly simple and particularly strong:
//!
//! - every row and index entry carries the `commit_ts` of the transaction
//!   that created it;
//! - a read transaction pins a snapshot timestamp `ts` and sees exactly the
//!   rows with `commit_ts ≤ ts`;
//! - a write transaction stamps all its rows with one timestamp and
//!   publishes that timestamp only after all rows are in place, so readers
//!   observe each transaction entirely or not at all.
//!
//! With no updates-in-place and no deletes there are no write-write
//! conflicts, no lost updates and no anti-dependency cycles: snapshot
//! isolation here *is* serializable (the serial order is commit-timestamp
//! order).
//!
//! ## Out-of-order publication behind a visibility watermark
//!
//! Writers finish in whatever order the scheduler lets them, not in
//! reservation order. The clock therefore decouples *publication* (this
//! writer's rows are in place) from *visibility* (readers may see them):
//! a committer marks its own timestamp in a fixed-size publication ring
//! and returns immediately, and the visible horizon — the watermark
//! returned by [`CommitClock::snapshot_ts`] — advances only over the
//! contiguous prefix of published timestamps. A descheduled writer no
//! longer stalls every later committer (the head-of-line-blocking collapse
//! attributed in PR 6); it only delays how far the watermark can advance.
//! The only wait left is ring wraparound — a publisher more than
//! [`PUBLICATION_RING`] timestamps ahead of the watermark parks on a
//! condvar until the slot it needs has been absorbed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Commit timestamp; `BULK_TS` marks bulk-loaded rows visible to every
/// snapshot.
pub type CommitTs = u64;

/// Timestamp of bulk-loaded data.
pub const BULK_TS: CommitTs = 0;

/// Slots in the publication ring (power of two). A publisher whose
/// timestamp is more than this far ahead of the watermark must park until
/// the watermark catches up, so the ring bounds how many commits can be
/// in flight past a stalled one: 1024 is ~two orders of magnitude more
/// than any plausible writer count, making wraparound parks a pathology
/// signal (`store.write.publish_parks`), not a steady-state cost.
pub const PUBLICATION_RING: usize = 1024;

/// What one [`CommitClock::publish`] call observed, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Publication {
    /// Earlier reservations still unpublished when this publish started
    /// (`ts - watermark - 1`): how far out of order this commit completed.
    pub lag: u64,
    /// Park rounds spent waiting for ring room (nonzero only when the
    /// publisher ran more than [`PUBLICATION_RING`] ahead of the
    /// watermark).
    pub parked: u64,
}

/// The global commit clock.
#[derive(Debug)]
pub struct CommitClock {
    /// The visibility watermark: every timestamp `≤ latest` is published,
    /// so readers snapshotting `latest` see only whole transactions.
    latest: AtomicU64,
    /// Next timestamp to hand out (≥ latest + 1; they differ while write
    /// transactions are in flight).
    next: AtomicU64,
    /// Publication ring: slot `ts & (PUBLICATION_RING - 1)` holds `ts`
    /// once that timestamp's rows are all in place. Storing the full
    /// timestamp (not a flag) makes stale occupants harmless: the
    /// watermark only advances over a slot whose value *equals* the
    /// expected next timestamp.
    ring: Box<[AtomicU64]>,
    /// Publishers parked waiting for ring room. Checked by the watermark
    /// advance path so the (rare) notify is paid only when someone waits.
    waiters: AtomicU64,
    /// Park/unpark for ring-wraparound waits: parking instead of
    /// spin-yielding keeps a far-ahead publisher off the CPU that the
    /// straggler it waits on needs.
    park: Mutex<()>,
    unpark: Condvar,
}

impl Default for CommitClock {
    fn default() -> Self {
        CommitClock {
            latest: AtomicU64::new(BULK_TS),
            next: AtomicU64::new(BULK_TS + 1),
            ring: (0..PUBLICATION_RING).map(|_| AtomicU64::new(BULK_TS)).collect(),
            waiters: AtomicU64::new(0),
            park: Mutex::new(()),
            unpark: Condvar::new(),
        }
    }
}

impl CommitClock {
    /// A fresh clock at the bulk timestamp.
    pub fn new() -> CommitClock {
        CommitClock::default()
    }

    /// Snapshot timestamp for a new reader: the watermark, i.e. everything
    /// contiguously published so far. The acquire load pairs with the
    /// release edge of the watermark advance, which itself acquired every
    /// publication it absorbed — so a snapshot at `ts` happens-after the
    /// row writes of *every* transaction with a timestamp `≤ ts`.
    #[inline]
    pub fn snapshot_ts(&self) -> CommitTs {
        self.latest.load(Ordering::Acquire)
    }

    /// Reserve the next commit timestamp (call while holding the writer
    /// lock, before writing rows).
    #[inline]
    pub fn reserve(&self) -> CommitTs {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Publish `ts` as committed (call after all of the transaction's rows
    /// are in place). Publication is **out of order**: this marks `ts` in
    /// the publication ring with a release store and returns — it never
    /// waits for earlier reservations. Visibility is what stays in order:
    /// the watermark ([`CommitClock::snapshot_ts`]) advances only over the
    /// contiguous published prefix, so `snapshot_ts()` returning `h` still
    /// guarantees every transaction `≤ h` has finished writing its rows
    /// and a reader can never observe a half-applied earlier transaction
    /// through a newer horizon.
    ///
    /// The one residual wait is ring wraparound: `ts` shares its slot with
    /// `ts - PUBLICATION_RING`, so a publisher that far ahead of the
    /// watermark parks (condvar, not spin-yield) until the watermark
    /// absorbs the old occupant. Every reserved timestamp MUST be
    /// published (validation and WAL appends happen before `reserve`),
    /// otherwise the watermark wedges at the gap.
    ///
    /// Monotonicity stays a hard invariant, enforced in release builds
    /// too: publishing a timestamp at or below the watermark (or twice
    /// while pending) would un-commit or re-commit visible transactions,
    /// so it panics instead.
    #[inline]
    pub fn publish(&self, ts: CommitTs) -> Publication {
        let latest = self.latest.load(Ordering::SeqCst);
        assert!(latest < ts, "CommitClock::publish went backwards: publishing {ts} over {latest}");
        let lag = ts - latest - 1;
        let parked =
            if ts - latest > PUBLICATION_RING as u64 { self.park_for_ring_room(ts) } else { 0 };
        let slot = &self.ring[ts as usize & (PUBLICATION_RING - 1)];
        assert!(
            slot.load(Ordering::Relaxed) != ts,
            "CommitClock::publish: timestamp {ts} published twice"
        );
        // Release-publish: the advancer's acquire load of this slot makes
        // this transaction's row writes visible to whoever then reads the
        // advanced watermark.
        slot.store(ts, Ordering::Release);
        self.advance_watermark();
        Publication { lag, parked }
    }

    /// Park until `ts`'s ring slot is free, i.e. the watermark has
    /// absorbed `ts - PUBLICATION_RING`. Rare by construction (the ring
    /// is far larger than any writer count); returns the number of wait
    /// rounds for `store.write.publish_parks`.
    #[cold]
    fn park_for_ring_room(&self, ts: CommitTs) -> u64 {
        let mut rounds = 0u64;
        let mut guard = self.park.lock().unwrap();
        // SeqCst pairs with the advance path's `waiters` check (Dekker
        // pattern): either we see the advanced watermark here, or the
        // advancer sees our registration and notifies.
        self.waiters.fetch_add(1, Ordering::SeqCst);
        while ts - self.latest.load(Ordering::SeqCst) > PUBLICATION_RING as u64 {
            rounds += 1;
            // The timed wait is a backstop only; the mutex + SeqCst
            // protocol already rules out lost wakeups.
            guard = self.unpark.wait_timeout(guard, Duration::from_millis(1)).unwrap().0;
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        drop(guard);
        rounds
    }

    /// Advance the watermark over the contiguous published prefix: while
    /// the slot for `latest + 1` holds exactly `latest + 1`, CAS the
    /// watermark forward. Any publisher may do the advancing (whoever
    /// filled the gap usually drags the watermark over everything queued
    /// behind it); losing a CAS just means another thread advanced past
    /// us, so we re-read and keep helping.
    fn advance_watermark(&self) {
        let mut advanced = false;
        let mut latest = self.latest.load(Ordering::Acquire);
        loop {
            let next = latest + 1;
            if self.ring[next as usize & (PUBLICATION_RING - 1)].load(Ordering::Acquire) != next {
                break;
            }
            match self.latest.compare_exchange(latest, next, Ordering::SeqCst, Ordering::Acquire) {
                Ok(_) => {
                    advanced = true;
                    latest = next;
                }
                Err(current) => latest = current,
            }
        }
        if advanced && self.waiters.load(Ordering::SeqCst) > 0 {
            // Taking the mutex orders this notify after any waiter's
            // predicate check, closing the check-then-wait window.
            drop(self.park.lock().unwrap());
            self.unpark.notify_all();
        }
    }

    /// Restore the clock after recovery to `ts`. Requires no publisher to
    /// be in flight, and enforces the same direction invariant `publish`
    /// has: moving the watermark backwards would un-commit transactions
    /// already visible to readers, so it panics instead (restoring to the
    /// current watermark is an allowed no-op). Stale ring occupants are
    /// harmless across a restore — every future expected value exceeds
    /// every past timestamp, and the watermark only moves over exact
    /// matches.
    pub fn restore(&self, ts: CommitTs) {
        let latest = self.latest.load(Ordering::SeqCst);
        assert!(
            latest <= ts,
            "CommitClock::restore went backwards: restoring {ts} under watermark {latest}"
        );
        self.latest.store(ts, Ordering::SeqCst);
        self.next.store(ts + 1, Ordering::SeqCst);
    }
}

/// Visibility test shared by all versioned containers.
#[inline]
pub fn visible(commit_ts: CommitTs, snapshot_ts: CommitTs) -> bool {
    commit_ts <= snapshot_ts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_rows_are_always_visible() {
        let clock = CommitClock::new();
        assert!(visible(BULK_TS, clock.snapshot_ts()));
    }

    #[test]
    fn uncommitted_rows_are_invisible() {
        let clock = CommitClock::new();
        let ts = clock.reserve();
        let snap = clock.snapshot_ts();
        assert!(!visible(ts, snap), "in-flight txn must be invisible");
        clock.publish(ts);
        assert!(visible(ts, clock.snapshot_ts()));
    }

    #[test]
    fn timestamps_are_monotone() {
        let clock = CommitClock::new();
        let a = clock.reserve();
        let b = clock.reserve();
        assert!(b > a);
        clock.publish(a);
        clock.publish(b);
        assert_eq!(clock.snapshot_ts(), b);
    }

    #[test]
    #[should_panic(expected = "publish went backwards")]
    fn republishing_an_absorbed_timestamp_panics_in_release_too() {
        let clock = CommitClock::new();
        let a = clock.reserve();
        clock.publish(a);
        clock.publish(a); // would regress the snapshot horizon
    }

    #[test]
    #[should_panic(expected = "published twice")]
    fn republishing_a_pending_timestamp_panics() {
        let clock = CommitClock::new();
        let _a = clock.reserve();
        let b = clock.reserve();
        clock.publish(b); // pending: `a` still holds the watermark back
        clock.publish(b); // double publish must be caught, not absorbed
    }

    /// Two writers publishing out of reservation order: the later
    /// timestamp publishes immediately (no head-of-line blocking), but the
    /// watermark defers its visibility until the earlier one lands.
    #[test]
    fn out_of_order_publish_is_deferred_behind_the_watermark() {
        let clock = CommitClock::new();
        let a = clock.reserve();
        let b = clock.reserve();
        // Publishing `b` first returns without blocking — under the old
        // in-order barrier this call spun until `a` published.
        let publication = clock.publish(b);
        assert_eq!(publication.lag, 1, "one unpublished predecessor (a)");
        assert_eq!(publication.parked, 0);
        assert_eq!(clock.snapshot_ts(), BULK_TS, "b must stay invisible behind the gap at a");
        // Filling the gap drags the watermark over both.
        let publication = clock.publish(a);
        assert_eq!(publication.lag, 0);
        assert_eq!(clock.snapshot_ts(), b);
    }

    /// The watermark never exposes a gap: with a random-ish publish order
    /// the horizon equals the longest contiguous published prefix after
    /// every single publish.
    #[test]
    fn watermark_tracks_contiguous_prefix_exactly() {
        let clock = CommitClock::new();
        let ts: Vec<CommitTs> = (0..32).map(|_| clock.reserve()).collect();
        // Deterministic scatter: stride 7 over 32 slots visits every
        // timestamp once in a thoroughly out-of-order sequence.
        let mut published = vec![false; ts.len() + 1];
        for i in 0..ts.len() {
            let t = ts[(i * 7) % ts.len()];
            clock.publish(t);
            published[t as usize] = true;
            let prefix = (1..published.len()).take_while(|&j| published[j]).count() as u64;
            assert_eq!(clock.snapshot_ts(), prefix, "horizon must equal the published prefix");
        }
        assert_eq!(clock.snapshot_ts(), ts.len() as u64);
    }

    /// A publisher more than `PUBLICATION_RING` ahead of the watermark
    /// parks until the watermark frees its slot, then lands normally.
    #[test]
    fn ring_wraparound_parks_until_room() {
        use std::sync::Arc;

        let clock = Arc::new(CommitClock::new());
        let n = PUBLICATION_RING as u64 + 1;
        let ts: Vec<CommitTs> = (0..n).map(|_| clock.reserve()).collect();
        let far = *ts.last().unwrap(); // shares a slot with ts[0]
        let t = {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || clock.publish(far))
        };
        // The far publisher cannot land while its slot's old occupant is
        // unabsorbed; give it a moment to park, then drain the prefix.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(clock.snapshot_ts(), BULK_TS);
        for &t in &ts[..ts.len() - 1] {
            clock.publish(t);
        }
        let publication = t.join().unwrap();
        assert!(publication.parked > 0, "wrapped publisher must have parked");
        assert_eq!(clock.snapshot_ts(), far);
    }

    #[test]
    fn restore_resets_both_counters() {
        let clock = CommitClock::new();
        clock.restore(41);
        assert_eq!(clock.snapshot_ts(), 41);
        assert_eq!(clock.reserve(), 42);
    }

    #[test]
    fn restore_to_the_current_watermark_is_a_noop() {
        let clock = CommitClock::new();
        clock.restore(17);
        clock.restore(17); // idempotent recovery replay must not panic
        assert_eq!(clock.snapshot_ts(), 17);
        assert_eq!(clock.reserve(), 18);
    }

    #[test]
    #[should_panic(expected = "restore went backwards")]
    fn restore_below_the_watermark_panics() {
        let clock = CommitClock::new();
        let a = clock.reserve();
        let b = clock.reserve();
        clock.publish(a);
        clock.publish(b);
        // Un-committing `b` by restoring to `a` would hand out `b` again
        // and expose readers to a horizon that went backwards.
        clock.restore(a);
    }
}
