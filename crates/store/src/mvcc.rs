//! Multi-version concurrency control for an insert-only workload.
//!
//! The SNB-Interactive rules require ACID transactions with serializability,
//! and note that "given the nature of the update workload, systems providing
//! snapshot isolation behave identically to serializable" (§4, Rules and
//! Metrics). The workload only ever *inserts* new entities, which makes MVCC
//! particularly simple and particularly strong:
//!
//! - every row and index entry carries the `commit_ts` of the transaction
//!   that created it;
//! - a read transaction pins a snapshot timestamp `ts` and sees exactly the
//!   rows with `commit_ts ≤ ts`;
//! - a write transaction stamps all its rows with one timestamp and
//!   publishes that timestamp only after all rows are in place, so readers
//!   observe each transaction entirely or not at all.
//!
//! With no updates-in-place and no deletes there are no write-write
//! conflicts, no lost updates and no anti-dependency cycles: snapshot
//! isolation here *is* serializable (the serial order is commit-timestamp
//! order).

use std::sync::atomic::{AtomicU64, Ordering};

/// Commit timestamp; `BULK_TS` marks bulk-loaded rows visible to every
/// snapshot.
pub type CommitTs = u64;

/// Timestamp of bulk-loaded data.
pub const BULK_TS: CommitTs = 0;

/// The global commit clock.
#[derive(Debug)]
pub struct CommitClock {
    /// Latest published commit timestamp.
    latest: AtomicU64,
    /// Next timestamp to hand out (≥ latest + 1; they differ while a write
    /// transaction is in flight).
    next: AtomicU64,
}

impl Default for CommitClock {
    fn default() -> Self {
        CommitClock { latest: AtomicU64::new(BULK_TS), next: AtomicU64::new(BULK_TS + 1) }
    }
}

impl CommitClock {
    /// A fresh clock at the bulk timestamp.
    pub fn new() -> CommitClock {
        CommitClock::default()
    }

    /// Snapshot timestamp for a new reader: everything committed so far.
    #[inline]
    pub fn snapshot_ts(&self) -> CommitTs {
        self.latest.load(Ordering::Acquire)
    }

    /// Reserve the next commit timestamp (call while holding the writer
    /// lock, before writing rows).
    #[inline]
    pub fn reserve(&self) -> CommitTs {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Publish `ts` as committed (call after all of the transaction's rows
    /// are in place). This is the write path's **single global
    /// serialization point**: with the store's write latch replaced by
    /// striped per-shard locks, two shard-disjoint transactions reach here
    /// concurrently, so `publish` itself enforces timestamp-order
    /// publication — it waits (spin, then yield) until every earlier
    /// reserved timestamp has been published, then advances the horizon
    /// with a release store.
    ///
    /// In-order publication is what keeps the snapshot rule sound under
    /// concurrent writers: `snapshot_ts()` returning `ts` guarantees every
    /// transaction with a timestamp `≤ ts` has finished writing its rows
    /// (its publish happened, and its row writes happen-before its
    /// publish), so a reader can never observe a half-applied earlier
    /// transaction through a newer horizon. The wait is short by
    /// construction: between `reserve` and `publish` a writer only places
    /// in-memory rows — WAL appends and fsyncs happen before reservation
    /// and after publication respectively.
    ///
    /// Monotonicity stays a hard invariant, enforced in release builds
    /// too: publishing a timestamp at or below the horizon would un-commit
    /// visible transactions, so it panics instead. Every reserved
    /// timestamp MUST be published (validation and WAL appends happen
    /// before `reserve`), otherwise later publishers would wait forever.
    #[inline]
    pub fn publish(&self, ts: CommitTs) {
        let mut spins = 0u32;
        loop {
            let latest = self.latest.load(Ordering::Acquire);
            assert!(
                latest < ts,
                "CommitClock::publish went backwards: publishing {ts} over {latest}"
            );
            if latest + 1 == ts {
                break;
            }
            // An earlier timestamp is still writing its rows: wait for our
            // turn. Spin briefly (the predecessor is mid-insert), then
            // yield so a descheduled predecessor can run.
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        self.latest.store(ts, Ordering::Release);
    }

    /// Restore the clock after recovery to `ts`.
    pub fn restore(&self, ts: CommitTs) {
        self.latest.store(ts, Ordering::Release);
        self.next.store(ts + 1, Ordering::Release);
    }
}

/// Visibility test shared by all versioned containers.
#[inline]
pub fn visible(commit_ts: CommitTs, snapshot_ts: CommitTs) -> bool {
    commit_ts <= snapshot_ts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_rows_are_always_visible() {
        let clock = CommitClock::new();
        assert!(visible(BULK_TS, clock.snapshot_ts()));
    }

    #[test]
    fn uncommitted_rows_are_invisible() {
        let clock = CommitClock::new();
        let ts = clock.reserve();
        let snap = clock.snapshot_ts();
        assert!(!visible(ts, snap), "in-flight txn must be invisible");
        clock.publish(ts);
        assert!(visible(ts, clock.snapshot_ts()));
    }

    #[test]
    fn timestamps_are_monotone() {
        let clock = CommitClock::new();
        let a = clock.reserve();
        let b = clock.reserve();
        assert!(b > a);
        clock.publish(a);
        clock.publish(b);
        assert_eq!(clock.snapshot_ts(), b);
    }

    #[test]
    #[should_panic(expected = "publish went backwards")]
    fn republishing_a_timestamp_panics_in_release_too() {
        let clock = CommitClock::new();
        let a = clock.reserve();
        clock.publish(a);
        clock.publish(a); // would regress the snapshot horizon
    }

    /// Two writers publishing out of reservation order: the later timestamp
    /// must wait for the earlier one, so the horizon never exposes `b`
    /// before `a` is fully published.
    #[test]
    fn publish_waits_for_earlier_timestamps() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let clock = Arc::new(CommitClock::new());
        let a = clock.reserve();
        let b = clock.reserve();
        let b_published = Arc::new(AtomicBool::new(false));
        let t = {
            let clock = Arc::clone(&clock);
            let b_published = Arc::clone(&b_published);
            std::thread::spawn(move || {
                clock.publish(b); // blocks until `a` is published
                b_published.store(true, Ordering::SeqCst);
            })
        };
        // Give the thread a chance to run: `b` must not become visible
        // while `a` is outstanding.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(clock.snapshot_ts(), BULK_TS, "b published before a");
        assert!(!b_published.load(Ordering::SeqCst));
        clock.publish(a);
        t.join().unwrap();
        assert_eq!(clock.snapshot_ts(), b);
    }

    #[test]
    fn restore_resets_both_counters() {
        let clock = CommitClock::new();
        clock.restore(41);
        assert_eq!(clock.snapshot_ts(), 41);
        assert_eq!(clock.reserve(), 42);
    }
}
