//! The transactional property-graph store.
//!
//! This is the substrate the paper's evaluation ran on closed systems
//! (Sparksee, Virtuoso): an in-memory graph store with ACID inserts and
//! snapshot reads (see [`crate::mvcc`] for why snapshot isolation is
//! serializable on this workload), primary-key tables dense in the
//! creation-ordered id space, and the adjacency/secondary indexes the
//! Interactive queries need:
//!
//! - `knows` adjacency with friendship dates (Q1-Q14, S3)
//! - per-person messages ordered by creation date (Q2, Q8, Q9, S2)
//! - per-forum posts and members, per-person forum joins (Q5, S6)
//! - reply trees (Q8, Q12, S7) and like edges in both directions (Q7)
//!
//! Date-ordered index entries make the "top-20 most recent before date"
//! pattern — the backbone of half the complex reads — a reverse scan with
//! early termination, which is exactly the locality §3 says systems should
//! exploit when ids correlate with time.

use crate::counters::StoreCounters;
use crate::mvcc::{visible, CommitClock, CommitTs, BULK_TS};
use crate::wal::{SyncPolicy, Wal};
use parking_lot::{RwLock, RwLockReadGuard};
use snb_core::schema::{Comment, Forum, ForumMembership, Knows, Like, Person, Post};
use snb_core::time::SimTime;
use snb_core::update::UpdateOp;
use snb_core::{ForumId, MessageId, PersonId, SnbError, SnbResult, TagId};
use snb_obs::{tick_index_probes, tick_versions_walked};
use std::path::Path;

/// A stored message: posts and comments share one table and id space.
#[derive(Debug, Clone)]
pub struct MessageRow {
    /// Author.
    pub author: PersonId,
    /// Containing forum.
    pub forum: ForumId,
    /// Creation date.
    pub creation_date: SimTime,
    /// Content (empty for photos).
    pub content: Box<str>,
    /// Image file for photos.
    pub image_file: Option<Box<str>>,
    /// Topic tags.
    pub tags: Box<[TagId]>,
    /// Content language (posts only; comments inherit "").
    pub language: &'static str,
    /// Country the message was sent from.
    pub country: u32,
    /// `None` for posts; `Some((reply_to, root_post))` for comments.
    pub reply_info: Option<(MessageId, MessageId)>,
}

impl MessageRow {
    /// Whether this message is a comment.
    #[inline]
    pub fn is_comment(&self) -> bool {
        self.reply_info.is_some()
    }
}

/// Versioned row wrapper.
#[derive(Debug, Clone)]
pub(crate) struct Versioned<T> {
    pub(crate) commit: CommitTs,
    pub(crate) row: T,
}

/// A dated, versioned index entry pointing at an entity.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) date: SimTime,
    pub(crate) id: u64,
    pub(crate) commit: CommitTs,
}

/// A date-ordered index list with an immutable-bulk fast lane.
///
/// `entries` is sorted by `(date, id)`. The first `bulk` entries all carry
/// [`BULK_TS`] — they were bulk-loaded, are immutable, and are visible to
/// *every* snapshot (`visible(BULK_TS, ts)` is true for any `ts`), so scans
/// over the prefix skip the `visible()` check entirely. The invariant is
/// maintained on insert: a bulk entry landing inside (or right after) the
/// prefix extends it; a post-load commit landing inside the prefix splits
/// it at the insertion point. Under the SNB workload updates carry
/// post-split dates, so in practice the prefix covers the 32 bulk-loaded
/// months and never shrinks.
#[derive(Debug, Default, Clone)]
pub(crate) struct IndexList {
    pub(crate) entries: Vec<Entry>,
    /// Length of the always-visible bulk prefix.
    pub(crate) bulk: usize,
}

impl IndexList {
    /// A list whose entries are all bulk-loaded (already `(date, id)`
    /// sorted, all stamped [`BULK_TS`]).
    pub(crate) fn from_bulk(entries: Vec<Entry>) -> IndexList {
        debug_assert!(entries.iter().all(|e| e.commit == BULK_TS));
        debug_assert!(entries.windows(2).all(|w| (w[0].date, w[0].id) <= (w[1].date, w[1].id)));
        let bulk = entries.len();
        IndexList { entries, bulk }
    }

    /// Insert keeping the list sorted by `(date, id)` and the bulk-prefix
    /// invariant intact.
    pub(crate) fn insert(&mut self, e: Entry) {
        let pos = self.entries.partition_point(|x| (x.date, x.id) < (e.date, e.id));
        if e.commit == BULK_TS && pos <= self.bulk {
            self.bulk += 1;
        } else {
            self.bulk = self.bulk.min(pos);
        }
        self.entries.insert(pos, e);
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[derive(Debug, Default)]
pub(crate) struct Inner {
    pub(crate) persons: Vec<Option<Versioned<Person>>>,
    pub(crate) forums: Vec<Option<Versioned<Forum>>>,
    pub(crate) messages: Vec<Option<Versioned<MessageRow>>>,
    /// knows adjacency, both directions; Entry.id = other person.
    pub(crate) knows: Vec<IndexList>,
    /// per-person authored messages; Entry.id = message.
    pub(crate) person_messages: Vec<IndexList>,
    /// per-forum posts; Entry.id = message.
    pub(crate) forum_posts: Vec<IndexList>,
    /// per-forum members; Entry.id = person, date = join date.
    pub(crate) forum_members: Vec<IndexList>,
    /// per-person joined forums; Entry.id = forum, date = join date.
    pub(crate) person_forums: Vec<IndexList>,
    /// per-message direct replies; Entry.id = replying comment.
    pub(crate) message_replies: Vec<IndexList>,
    /// per-message likes; Entry.id = liking person.
    pub(crate) message_likes: Vec<IndexList>,
    /// per-person given likes; Entry.id = liked message.
    pub(crate) person_likes: Vec<IndexList>,
}

fn ensure<T: Default>(v: &mut Vec<T>, idx: usize) {
    if v.len() <= idx {
        v.resize_with(idx + 1, T::default);
    }
}

/// Default bulk-load parallelism: the machine's cores, capped — loading is
/// memory-bound well before 8 threads.
fn default_load_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// [`MessageRow`] for a post — shared by the incremental insert path and
/// the parallel bulk loader so both produce identical rows.
pub(crate) fn post_row(p: &Post) -> MessageRow {
    MessageRow {
        author: p.author,
        forum: p.forum,
        creation_date: p.creation_date,
        content: p.content.as_str().into(),
        image_file: p.image_file.as_deref().map(Into::into),
        tags: p.tags.clone().into_boxed_slice(),
        language: p.language,
        country: p.country as u32,
        reply_info: None,
    }
}

/// [`MessageRow`] for a comment — shared like [`post_row`].
pub(crate) fn comment_row(c: &Comment) -> MessageRow {
    MessageRow {
        author: c.author,
        forum: c.forum,
        creation_date: c.creation_date,
        content: c.content.as_str().into(),
        image_file: None,
        tags: c.tags.clone().into_boxed_slice(),
        language: "",
        country: c.country as u32,
        reply_info: Some((c.reply_to, c.root_post)),
    }
}

/// What [`Store::recover`] found in (and trimmed off) the write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions replayed from the intact prefix.
    pub replayed: u64,
    /// Bytes truncated off the torn or corrupt tail (0 on a clean log).
    pub truncated_bytes: u64,
    /// Best-effort count of records among the truncated bytes.
    pub truncated_records: u64,
    /// Sequence number of the last replayed record.
    pub last_seq: u64,
}

/// The store.
#[derive(Debug)]
pub struct Store {
    inner: RwLock<Inner>,
    clock: CommitClock,
    wal: Option<Wal>,
    counters: StoreCounters,
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

impl Store {
    /// Empty store without durability.
    pub fn new() -> Store {
        Store {
            inner: RwLock::new(Inner::default()),
            clock: CommitClock::new(),
            wal: None,
            counters: StoreCounters::new(),
        }
    }

    /// Empty store logging every committed transaction to a write-ahead log
    /// at `path` (created or truncated), without fsync — the historical
    /// behaviour, equivalent to [`SyncPolicy::Never`].
    pub fn with_wal(path: &Path) -> SnbResult<Store> {
        Store::with_wal_policy(path, SyncPolicy::Never)
    }

    /// Empty store logging to a write-ahead log at `path` (created or
    /// truncated) under `policy`: commits are acknowledged only once the
    /// policy's durability requirement holds for their record.
    pub fn with_wal_policy(path: &Path, policy: SyncPolicy) -> SnbResult<Store> {
        let counters = StoreCounters::new();
        let wal = Wal::create_with(path, policy, counters.wal_metrics())?;
        Ok(Store {
            inner: RwLock::new(Inner::default()),
            clock: CommitClock::new(),
            wal: Some(wal),
            counters,
        })
    }

    /// Runtime counters for this store instance.
    pub fn counters(&self) -> &StoreCounters {
        &self.counters
    }

    /// Recover a store by bulk-loading `bulk` and replaying the WAL at
    /// `path`, without keeping the log attached for further durability
    /// (reopens it under [`SyncPolicy::Never`]).
    pub fn recover(bulk: &snb_datagen::Dataset, path: &Path) -> SnbResult<(Store, RecoveryReport)> {
        Store::recover_with_policy(bulk, path, SyncPolicy::Never)
    }

    /// Recover a store and keep appending to the same log: bulk-load
    /// `bulk`, replay the WAL's intact prefix, physically truncate its torn
    /// tail (reported and counted in `store.wal.recovery_truncated_bytes`),
    /// and resume the log at the next sequence number under `policy`.
    pub fn recover_with_policy(
        bulk: &snb_datagen::Dataset,
        path: &Path,
        policy: SyncPolicy,
    ) -> SnbResult<(Store, RecoveryReport)> {
        let counters = StoreCounters::new();
        let (wal, replay) = Wal::open_append(path, policy, counters.wal_metrics())?;
        let report = RecoveryReport {
            replayed: replay.ops.len() as u64,
            truncated_bytes: replay.truncated_bytes,
            truncated_records: replay.truncated_records,
            last_seq: replay.last_seq,
        };
        let store = Store {
            inner: RwLock::new(Inner::default()),
            clock: CommitClock::new(),
            wal: Some(wal),
            counters,
        };
        store.bulk_load(bulk);
        for op in &replay.ops {
            store.apply_internal(op, false)?;
        }
        Ok((store, report))
    }

    /// Bulk-load every entity of `ds` with a creation date at or before the
    /// configured update split (§4: "32 months are bulkloaded at benchmark
    /// start"). Bulk rows carry [`BULK_TS`] and are visible to every
    /// snapshot. Uses the parallel sorted loader on an empty store.
    pub fn bulk_load(&self, ds: &snb_datagen::Dataset) {
        self.bulk_load_until(ds, ds.config.update_split)
    }

    /// Bulk-load everything (useful for query-only experiments).
    pub fn load_full(&self, ds: &snb_datagen::Dataset) {
        self.bulk_load_until(ds, ds.config.end)
    }

    /// Bulk-load all entities created at or before `cut`, with the default
    /// degree of load parallelism.
    pub fn bulk_load_until(&self, ds: &snb_datagen::Dataset, cut: SimTime) {
        self.bulk_load_until_threads(ds, cut, default_load_threads())
    }

    /// Bulk-load all entities created at or before `cut` using `threads`
    /// loader threads.
    ///
    /// On an empty store with `threads > 1` this takes the parallel sorted
    /// path ([`crate::loader`]): partition every id space into contiguous
    /// per-thread ranges, build each table slice and adjacency list on its
    /// owning thread, sort every date-ordered index **once**, and
    /// concatenate — instead of per-item `sorted_insert` memmoves on one
    /// thread. The result is identical to the serial path. A non-empty
    /// store (incremental top-up loads, as used by a few experiments) falls
    /// back to the serial path, which composes with existing contents.
    pub fn bulk_load_until_threads(&self, ds: &snb_datagen::Dataset, cut: SimTime, threads: usize) {
        let mut g = self.inner.write();
        if threads > 1 && g.is_empty() {
            *g = crate::loader::build(ds, cut, threads);
            return;
        }
        for p in &ds.persons {
            if p.creation_date <= cut {
                g.insert_person(p.clone(), BULK_TS);
            }
        }
        for k in &ds.knows {
            if k.creation_date <= cut {
                g.insert_knows(k, BULK_TS);
            }
        }
        for f in &ds.forums {
            if f.creation_date <= cut {
                g.insert_forum(f.clone(), BULK_TS);
            }
        }
        for m in &ds.memberships {
            if m.join_date <= cut {
                g.insert_membership(m, BULK_TS);
            }
        }
        for p in &ds.posts {
            if p.creation_date <= cut {
                g.insert_post(p, BULK_TS);
            }
        }
        for c in &ds.comments {
            if c.creation_date <= cut {
                g.insert_comment(c, BULK_TS);
            }
        }
        for l in &ds.likes {
            if l.creation_date <= cut {
                g.insert_like(l, BULK_TS);
            }
        }
    }

    /// Execute one update operation as an ACID transaction: validate,
    /// WAL-append, apply, publish — then, outside the writer lock, wait for
    /// the WAL's [`SyncPolicy`] to make the record durable before
    /// acknowledging.
    ///
    /// Because the append happens under the writer lock, WAL order equals
    /// commit order, so prefix-consistent recovery preserves every
    /// dependency. The durability wait happens *after* the lock is
    /// released (early lock release): group commit batches fsyncs across
    /// concurrent committers without serializing the in-memory work behind
    /// the disk. A commit may be briefly visible to snapshots before it is
    /// durable, but it is never acknowledged to the caller until it is —
    /// the standard group-commit contract.
    pub fn apply(&self, op: &UpdateOp) -> SnbResult<()> {
        let seq = self.apply_async(op)?;
        self.wait_durable(seq)
    }

    /// Pipelined commit, phase one: WAL-append, apply, publish — and return
    /// without waiting for durability. The commit is immediately visible to
    /// new snapshots (so causally dependent operations can proceed), but it
    /// MUST NOT be acknowledged until [`Store::wait_durable`] has been
    /// called on the returned sequence number. Because WAL order equals
    /// commit order, a crash before the sync loses only a suffix of
    /// unacknowledged commits — never a dependency of a surviving record.
    pub fn apply_async(&self, op: &UpdateOp) -> SnbResult<Option<u64>> {
        self.apply_internal(op, true)
    }

    /// Pipelined commit, phase two: block until the WAL record `seq` (and,
    /// the durable horizon being cumulative, every record before it) is
    /// durable per the [`SyncPolicy`]. `None` — an op applied with no WAL
    /// attached — and stores without a WAL return immediately.
    pub fn wait_durable(&self, seq: Option<u64>) -> SnbResult<()> {
        if let (Some(wal), Some(seq)) = (&self.wal, seq) {
            wal.wait_durable(seq)?;
        }
        Ok(())
    }

    /// Locked phase of [`Store::apply`]. Returns the WAL sequence number to
    /// await when a log append happened.
    fn apply_internal(&self, op: &UpdateOp, log: bool) -> SnbResult<Option<u64>> {
        let mut g = self.inner.write();
        if let Err(e) = g.validate(op) {
            self.counters.conflicts.inc();
            return Err(e);
        }
        let mut seq = None;
        if log {
            if let Some(wal) = &self.wal {
                let appended = wal.append(op)?;
                self.counters.wal_appends.inc();
                self.counters.wal_bytes.add(appended.bytes);
                seq = Some(appended.seq);
            }
        }
        let ts = self.clock.reserve();
        match op {
            UpdateOp::AddPerson(p) => g.insert_person(p.clone(), ts),
            UpdateOp::AddPostLike(l) | UpdateOp::AddCommentLike(l) => g.insert_like(l, ts),
            UpdateOp::AddForum(f) => g.insert_forum(f.clone(), ts),
            UpdateOp::AddMembership(m) => g.insert_membership(m, ts),
            UpdateOp::AddPost(p) => g.insert_post(p, ts),
            UpdateOp::AddComment(c) => g.insert_comment(c, ts),
            UpdateOp::AddFriendship(k) => g.insert_knows(k, ts),
        }
        // Publish while still holding the writer lock so commit order equals
        // timestamp order.
        self.clock.publish(ts);
        self.counters.commits.inc();
        Ok(seq)
    }

    /// Flush the WAL (an fsync durability point under any policy other than
    /// [`SyncPolicy::Never`]).
    pub fn flush_wal(&self) -> SnbResult<()> {
        if let Some(wal) = &self.wal {
            wal.flush()?;
        }
        Ok(())
    }

    /// Open a read snapshot: sees every transaction committed before this
    /// call, and nothing that commits after.
    pub fn snapshot(&self) -> Snapshot<'_> {
        self.counters.snapshots.inc();
        Snapshot { store: self, ts: self.clock.snapshot_ts() }
    }

    /// Open a *pinned* read snapshot: acquires the store's read latch once
    /// and holds it for the snapshot's whole lifetime, so every accessor —
    /// and the zero-allocation borrowing iterators — runs latch-free.
    ///
    /// This is the query path's snapshot. Its MVCC semantics are identical
    /// to [`Store::snapshot`] (same timestamp rule, same visibility
    /// filter); only the blocking granularity differs: writers wait for
    /// the whole pinned snapshot to drop rather than for individual
    /// accessor calls. Do not hold one across a call to [`Store::apply`]
    /// on the same thread, and do not interleave two pinned snapshots on
    /// one thread — the underlying `RwLock` is not reentrant (see
    /// DESIGN.md, "Read path").
    pub fn pinned(&self) -> PinnedSnapshot<'_> {
        self.counters.snapshots.inc();
        self.counters.read_guard_pins.inc();
        let guard = self.inner.read();
        // Read the horizon while holding the latch: no commit can be in
        // flight (publish happens under the write latch), so this sees
        // exactly the transactions whose rows are in `guard`.
        let ts = self.clock.snapshot_ts();
        PinnedSnapshot { guard, ts, counters: &self.counters }
    }
}

impl Inner {
    /// Whether no entity has ever been inserted (the parallel loader can
    /// only build a store from scratch).
    fn is_empty(&self) -> bool {
        self.persons.is_empty() && self.forums.is_empty() && self.messages.is_empty()
    }

    fn validate(&self, op: &UpdateOp) -> SnbResult<()> {
        let person_exists = |id: PersonId| -> SnbResult<()> {
            self.persons
                .get(id.index())
                .and_then(|s| s.as_ref())
                .map(|_| ())
                .ok_or(SnbError::NotFound { entity: "person", id: id.raw() })
        };
        let forum_exists = |id: ForumId| -> SnbResult<()> {
            self.forums
                .get(id.index())
                .and_then(|s| s.as_ref())
                .map(|_| ())
                .ok_or(SnbError::NotFound { entity: "forum", id: id.raw() })
        };
        let message_exists = |id: MessageId| -> SnbResult<()> {
            self.messages
                .get(id.index())
                .and_then(|s| s.as_ref())
                .map(|_| ())
                .ok_or(SnbError::NotFound { entity: "message", id: id.raw() })
        };
        match op {
            UpdateOp::AddPerson(p) => {
                if self.persons.get(p.id.index()).and_then(|s| s.as_ref()).is_some() {
                    return Err(SnbError::Constraint(format!("duplicate person {}", p.id)));
                }
            }
            UpdateOp::AddFriendship(k) => {
                if k.a == k.b {
                    return Err(SnbError::Constraint("self-friendship".into()));
                }
                person_exists(k.a)?;
                person_exists(k.b)?;
            }
            UpdateOp::AddForum(f) => {
                person_exists(f.moderator)?;
                if self.forums.get(f.id.index()).and_then(|s| s.as_ref()).is_some() {
                    return Err(SnbError::Constraint(format!("duplicate forum {}", f.id)));
                }
            }
            UpdateOp::AddMembership(m) => {
                person_exists(m.person)?;
                forum_exists(m.forum)?;
            }
            UpdateOp::AddPost(p) => {
                person_exists(p.author)?;
                forum_exists(p.forum)?;
                if self.messages.get(p.id.index()).and_then(|s| s.as_ref()).is_some() {
                    return Err(SnbError::Constraint(format!("duplicate message {}", p.id)));
                }
            }
            UpdateOp::AddComment(c) => {
                person_exists(c.author)?;
                forum_exists(c.forum)?;
                message_exists(c.reply_to)?;
                message_exists(c.root_post)?;
                if self.messages.get(c.id.index()).and_then(|s| s.as_ref()).is_some() {
                    return Err(SnbError::Constraint(format!("duplicate message {}", c.id)));
                }
            }
            UpdateOp::AddPostLike(l) | UpdateOp::AddCommentLike(l) => {
                person_exists(l.person)?;
                message_exists(l.message)?;
            }
        }
        Ok(())
    }

    fn insert_person(&mut self, p: Person, ts: CommitTs) {
        let i = p.id.index();
        ensure(&mut self.persons, i);
        ensure(&mut self.knows, i);
        ensure(&mut self.person_messages, i);
        ensure(&mut self.person_forums, i);
        ensure(&mut self.person_likes, i);
        self.persons[i] = Some(Versioned { commit: ts, row: p });
    }

    fn insert_knows(&mut self, k: &Knows, ts: CommitTs) {
        let (a, b) = (k.a.index(), k.b.index());
        ensure(&mut self.knows, a.max(b));
        self.knows[a].insert(Entry { date: k.creation_date, id: k.b.raw(), commit: ts });
        self.knows[b].insert(Entry { date: k.creation_date, id: k.a.raw(), commit: ts });
    }

    fn insert_forum(&mut self, f: Forum, ts: CommitTs) {
        let i = f.id.index();
        ensure(&mut self.forums, i);
        ensure(&mut self.forum_posts, i);
        ensure(&mut self.forum_members, i);
        self.forums[i] = Some(Versioned { commit: ts, row: f });
    }

    fn insert_membership(&mut self, m: &ForumMembership, ts: CommitTs) {
        ensure(&mut self.forum_members, m.forum.index());
        ensure(&mut self.person_forums, m.person.index());
        self.forum_members[m.forum.index()].insert(Entry {
            date: m.join_date,
            id: m.person.raw(),
            commit: ts,
        });
        self.person_forums[m.person.index()].insert(Entry {
            date: m.join_date,
            id: m.forum.raw(),
            commit: ts,
        });
    }

    fn insert_message_row(&mut self, id: MessageId, row: MessageRow, ts: CommitTs) {
        let i = id.index();
        ensure(&mut self.messages, i);
        ensure(&mut self.message_replies, i);
        ensure(&mut self.message_likes, i);
        ensure(&mut self.person_messages, row.author.index());
        self.person_messages[row.author.index()].insert(Entry {
            date: row.creation_date,
            id: id.raw(),
            commit: ts,
        });
        self.messages[i] = Some(Versioned { commit: ts, row });
    }

    fn insert_post(&mut self, p: &Post, ts: CommitTs) {
        ensure(&mut self.forum_posts, p.forum.index());
        self.forum_posts[p.forum.index()].insert(Entry {
            date: p.creation_date,
            id: p.id.raw(),
            commit: ts,
        });
        self.insert_message_row(p.id, post_row(p), ts);
    }

    fn insert_comment(&mut self, c: &Comment, ts: CommitTs) {
        ensure(&mut self.message_replies, c.reply_to.index().max(c.id.index()));
        self.message_replies[c.reply_to.index()].insert(Entry {
            date: c.creation_date,
            id: c.id.raw(),
            commit: ts,
        });
        self.insert_message_row(c.id, comment_row(c), ts);
    }

    fn insert_like(&mut self, l: &Like, ts: CommitTs) {
        ensure(&mut self.message_likes, l.message.index());
        ensure(&mut self.person_likes, l.person.index());
        self.message_likes[l.message.index()].insert(Entry {
            date: l.creation_date,
            id: l.person.raw(),
            commit: ts,
        });
        self.person_likes[l.person.index()].insert(Entry {
            date: l.creation_date,
            id: l.message.raw(),
            commit: ts,
        });
    }
}

/// A consistent read view of the store.
///
/// The snapshot pins a commit timestamp and acquires the store latch only
/// briefly inside each accessor — never across caller code — so writers
/// keep committing while long queries run. Consistency comes from MVCC
/// visibility, not from the latch: every accessor filters by the pinned
/// timestamp, so the snapshot observes exactly the transactions committed
/// before it was opened, no matter how many commit during the query.
///
/// This per-call-latch variant is safe to hold across [`Store::apply`] on
/// the same thread (tests and mixed read/write code rely on that). The
/// query hot path uses [`PinnedSnapshot`] instead, which trades that
/// freedom for latch-free accessors.
pub struct Snapshot<'a> {
    store: &'a Store,
    ts: CommitTs,
}

/// A consistent read view that holds the store's read latch for its whole
/// lifetime (see [`Store::pinned`]).
///
/// Pinning buys two things over [`Snapshot`]: accessors skip the per-call
/// latch acquisition (a single Q9 makes hundreds of them), and the
/// borrowing APIs ([`PinnedSnapshot::friends_iter`],
/// [`PinnedSnapshot::recent_messages_walk`], [`PinnedSnapshot::person_ref`]
/// …) can hand out references and iterators tied to the guard — zero
/// allocation per scan. MVCC visibility is byte-identical to [`Snapshot`]:
/// the latch only pins the memory, the timestamp still decides what is
/// seen.
pub struct PinnedSnapshot<'a> {
    guard: RwLockReadGuard<'a, Inner>,
    ts: CommitTs,
    counters: &'a StoreCounters,
}

/// `(entity id, date)` pair yielded by index scans.
pub type Dated = (u64, SimTime);

/// Fixed-size message header for traversal-heavy queries; cloning the full
/// [`MessageRow`] (content included) is reserved for result materialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageMeta {
    /// Author.
    pub author: PersonId,
    /// Containing forum.
    pub forum: ForumId,
    /// Creation date.
    pub creation_date: SimTime,
    /// Country the message was sent from.
    pub country: u32,
    /// `None` for posts; `Some((reply_to, root_post))` for comments.
    pub reply_info: Option<(MessageId, MessageId)>,
}

/// The shared read-path implementation: all primitives over a borrowed
/// [`Inner`], parameterized by the snapshot timestamp. [`Snapshot`]
/// constructs one per accessor call (acquire latch, delegate, drop);
/// [`PinnedSnapshot`] constructs one over its long-lived guard, which is
/// what lets it return borrows.
#[derive(Clone, Copy)]
struct ReadView<'g> {
    inner: &'g Inner,
    ts: CommitTs,
    counters: &'g StoreCounters,
}

impl<'g> ReadView<'g> {
    /// Account one keyed point lookup: `examined` when a versioned row was
    /// present, `kept` when it was visible to this snapshot. Ticks the
    /// store counters and the current query profile (if any).
    fn note_probe(&self, examined: bool, kept: bool) {
        tick_index_probes(1);
        if examined {
            let c = self.counters;
            c.versions_walked.add(1);
            if !kept {
                c.versions_skipped.inc();
            }
            tick_versions_walked(1);
        }
    }

    /// Account one index scan: `fast` entries served from the bulk-prefix
    /// fast lane (no visibility check), `examined` version-stamped entries
    /// walked of which `kept` were visible. Both the fast-lane and the
    /// MVCC-walk paths funnel through here so the two lanes stay
    /// consistently accounted: every touched entry lands in exactly one of
    /// `store.read.fastpath_entries` or `store.mvcc.versions_walked`.
    fn note_scan(&self, fast: usize, examined: usize, kept: usize) {
        let c = self.counters;
        if fast > 0 {
            c.read_fastpath_entries.add(fast as u64);
        }
        if examined > 0 {
            c.versions_walked.add(examined as u64);
            c.versions_skipped.add((examined - kept) as u64);
            tick_versions_walked(examined as u64);
        }
    }

    fn person_ref(&self, id: PersonId) -> Option<&'g Person> {
        let slot = self.inner.persons.get(id.index()).and_then(|s| s.as_ref());
        let vis = slot.filter(|v| visible(v.commit, self.ts));
        self.note_probe(slot.is_some(), vis.is_some());
        vis.map(|v| &v.row)
    }

    fn forum_ref(&self, id: ForumId) -> Option<&'g Forum> {
        let slot = self.inner.forums.get(id.index()).and_then(|s| s.as_ref());
        let vis = slot.filter(|v| visible(v.commit, self.ts));
        self.note_probe(slot.is_some(), vis.is_some());
        vis.map(|v| &v.row)
    }

    fn message_ref(&self, id: MessageId) -> Option<&'g MessageRow> {
        let slot = self.inner.messages.get(id.index()).and_then(|s| s.as_ref());
        let vis = slot.filter(|v| visible(v.commit, self.ts));
        self.note_probe(slot.is_some(), vis.is_some());
        vis.map(|v| &v.row)
    }

    fn message_meta(&self, id: MessageId) -> Option<MessageMeta> {
        self.message_ref(id).map(|row| MessageMeta {
            author: row.author,
            forum: row.forum,
            creation_date: row.creation_date,
            country: row.country,
            reply_info: row.reply_info,
        })
    }

    /// Materialize a whole index list, skipping `visible()` over the bulk
    /// prefix and preallocating from the list length.
    ///
    /// Deliberately NOT written as `self.iter(list).collect()`: this loop
    /// and [`DatedIter`] are independent implementations of the same scan,
    /// so the property test comparing the `Vec` API against the iterator
    /// API actually checks something.
    fn collect(&self, list: Option<&IndexList>) -> Vec<Dated> {
        let Some(list) = list else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(list.len());
        for e in &list.entries[..list.bulk] {
            out.push((e.id, e.date));
        }
        let mut kept = 0usize;
        for e in &list.entries[list.bulk..] {
            if visible(e.commit, self.ts) {
                out.push((e.id, e.date));
                kept += 1;
            }
        }
        self.note_scan(list.bulk, list.len() - list.bulk, kept);
        out
    }

    /// Borrowing scan over a whole index list, ascending `(date, id)`.
    fn iter(&self, list: Option<&'g IndexList>) -> DatedIter<'g> {
        let (prefix, tail) = match list {
            Some(l) => (&l.entries[..l.bulk], &l.entries[l.bulk..]),
            None => (&[][..], &[][..]),
        };
        DatedIter {
            prefix: prefix.iter(),
            tail: tail.iter(),
            ts: self.ts,
            counters: self.counters,
            fast: 0,
            examined: 0,
            kept: 0,
        }
    }

    /// Borrowing reverse scan (newest first) over the entries dated at or
    /// before `max_date`.
    fn recent_walk(&self, list: Option<&'g IndexList>, max_date: SimTime) -> RecentWalk<'g> {
        let (entries, bulk) = match list {
            Some(l) => (&l.entries[..l.entries.partition_point(|e| e.date <= max_date)], l.bulk),
            None => (&[][..], 0),
        };
        RecentWalk {
            entries,
            bulk,
            ts: self.ts,
            counters: self.counters,
            fast: 0,
            examined: 0,
            kept: 0,
        }
    }

    fn recent_messages_of(&self, id: PersonId, max_date: SimTime, k: usize) -> Vec<Dated> {
        let Some(list) = self.inner.person_messages.get(id.index()) else {
            return Vec::new();
        };
        let end = list.entries.partition_point(|e| e.date <= max_date);
        let mut out = Vec::with_capacity(k.min(end));
        let mut fast = 0usize;
        let mut examined = 0usize;
        let mut kept = 0usize;
        for (i, e) in list.entries[..end].iter().enumerate().rev() {
            if i < list.bulk {
                fast += 1;
            } else {
                examined += 1;
                if !visible(e.commit, self.ts) {
                    continue;
                }
                kept += 1;
            }
            out.push((e.id, e.date));
            if out.len() == k {
                break;
            }
        }
        self.note_scan(fast, examined, kept);
        out
    }

    fn forums_of_after(&self, id: PersonId, min_date: SimTime) -> Vec<Dated> {
        let Some(list) = self.inner.person_forums.get(id.index()) else {
            return Vec::new();
        };
        let start = list.entries.partition_point(|e| e.date <= min_date);
        let mut out = Vec::with_capacity(list.len() - start);
        let mut fast = 0usize;
        let mut kept = 0usize;
        for (i, e) in list.entries.iter().enumerate().skip(start) {
            if i < list.bulk {
                fast += 1;
                out.push((e.id, e.date));
            } else if visible(e.commit, self.ts) {
                kept += 1;
                out.push((e.id, e.date));
            }
        }
        self.note_scan(fast, list.len() - start - fast, kept);
        out
    }

    fn are_friends(&self, a: PersonId, b: PersonId) -> bool {
        let Some(list) = self.inner.knows.get(a.index()) else {
            self.note_scan(0, 0, 0);
            return false;
        };
        let mut fast = 0usize;
        let mut examined = 0usize;
        let mut found = false;
        for (i, e) in list.entries.iter().enumerate() {
            if i < list.bulk {
                fast += 1;
                if e.id == b.raw() {
                    found = true;
                    break;
                }
            } else {
                examined += 1;
                if e.id == b.raw() && visible(e.commit, self.ts) {
                    found = true;
                    break;
                }
            }
        }
        self.note_scan(fast, examined, if found && examined > 0 { 1 } else { 0 });
        found
    }
}

/// Zero-allocation iterator over the visible entries of one index list,
/// ascending `(date, id)` — the bulk prefix is yielded without visibility
/// checks, the versioned tail is MVCC-filtered. Accounting is batched
/// locally and flushed to the store counters once, on drop, so a scan
/// costs one atomic add per counter regardless of length.
pub struct DatedIter<'g> {
    prefix: std::slice::Iter<'g, Entry>,
    tail: std::slice::Iter<'g, Entry>,
    ts: CommitTs,
    counters: &'g StoreCounters,
    fast: u64,
    examined: u64,
    kept: u64,
}

impl Iterator for DatedIter<'_> {
    type Item = Dated;

    #[inline]
    fn next(&mut self) -> Option<Dated> {
        if let Some(e) = self.prefix.next() {
            self.fast += 1;
            return Some((e.id, e.date));
        }
        for e in self.tail.by_ref() {
            self.examined += 1;
            if visible(e.commit, self.ts) {
                self.kept += 1;
                return Some((e.id, e.date));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (p, t) = (self.prefix.len(), self.tail.len());
        (p, Some(p + t))
    }
}

impl Drop for DatedIter<'_> {
    fn drop(&mut self) {
        let c = self.counters;
        if self.fast > 0 {
            c.read_fastpath_entries.add(self.fast);
        }
        if self.examined > 0 {
            c.versions_walked.add(self.examined);
            c.versions_skipped.add(self.examined - self.kept);
            tick_versions_walked(self.examined);
        }
    }
}

/// Zero-allocation reverse scan (newest first) over the entries of one
/// date-ordered index list at or before a date bound — the borrowing form
/// of the "top-k most recent before date" primitive. Same fast-lane and
/// drop-flushed accounting as [`DatedIter`].
pub struct RecentWalk<'g> {
    /// Remaining entries, already bounded to dates `<= max_date`; consumed
    /// from the back.
    entries: &'g [Entry],
    bulk: usize,
    ts: CommitTs,
    counters: &'g StoreCounters,
    fast: u64,
    examined: u64,
    kept: u64,
}

impl Iterator for RecentWalk<'_> {
    type Item = Dated;

    #[inline]
    fn next(&mut self) -> Option<Dated> {
        while let Some((e, rest)) = self.entries.split_last() {
            self.entries = rest;
            if rest.len() < self.bulk {
                self.fast += 1;
                return Some((e.id, e.date));
            }
            self.examined += 1;
            if visible(e.commit, self.ts) {
                self.kept += 1;
                return Some((e.id, e.date));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.entries.len().min(self.bulk), Some(self.entries.len()))
    }
}

impl Drop for RecentWalk<'_> {
    fn drop(&mut self) {
        let c = self.counters;
        if self.fast > 0 {
            c.read_fastpath_entries.add(self.fast);
        }
        if self.examined > 0 {
            c.versions_walked.add(self.examined);
            c.versions_skipped.add(self.examined - self.kept);
            tick_versions_walked(self.examined);
        }
    }
}

impl Snapshot<'_> {
    fn read(&self) -> RwLockReadGuard<'_, Inner> {
        self.store.inner.read()
    }

    fn view<'g>(&self, g: &'g Inner) -> ReadView<'g>
    where
        Self: 'g,
    {
        ReadView { inner: g, ts: self.ts, counters: &self.store.counters }
    }

    /// The snapshot's commit timestamp.
    pub fn ts(&self) -> CommitTs {
        self.ts
    }

    /// Person by id, if visible (cloned row).
    pub fn person(&self, id: PersonId) -> Option<Person> {
        let g = self.read();
        self.view(&g).person_ref(id).cloned()
    }

    /// Forum by id, if visible (cloned row).
    pub fn forum(&self, id: ForumId) -> Option<Forum> {
        let g = self.read();
        self.view(&g).forum_ref(id).cloned()
    }

    /// Full message row (content included), if visible.
    pub fn message(&self, id: MessageId) -> Option<MessageRow> {
        let g = self.read();
        self.view(&g).message_ref(id).cloned()
    }

    /// Fixed-size message header, if visible.
    pub fn message_meta(&self, id: MessageId) -> Option<MessageMeta> {
        let g = self.read();
        self.view(&g).message_meta(id)
    }

    /// Tags of a message (empty if the message is not visible).
    pub fn message_tags(&self, id: MessageId) -> Vec<TagId> {
        let g = self.read();
        self.view(&g).message_ref(id).map(|row| row.tags.to_vec()).unwrap_or_default()
    }

    /// Upper bound of the person id space (for scans; slots may be empty).
    pub fn person_slots(&self) -> usize {
        self.read().persons.len()
    }

    /// Upper bound of the forum id space.
    pub fn forum_slots(&self) -> usize {
        self.read().forums.len()
    }

    /// Upper bound of the message id space.
    pub fn message_slots(&self) -> usize {
        self.read().messages.len()
    }

    /// Friends of `id` with friendship dates, ascending by date.
    pub fn friends(&self, id: PersonId) -> Vec<Dated> {
        let g = self.read();
        self.view(&g).collect(g.knows.get(id.index()))
    }

    /// Messages authored by `id`, ascending by creation date.
    pub fn messages_of(&self, id: PersonId) -> Vec<Dated> {
        let g = self.read();
        self.view(&g).collect(g.person_messages.get(id.index()))
    }

    /// The up-to-`k` most recent messages of `id` created at or before
    /// `max_date`, newest first — the intended-plan primitive behind
    /// Q2/Q9/S2 ("top-20 most recent before date" with early termination
    /// on the date-ordered index).
    pub fn recent_messages_of(&self, id: PersonId, max_date: SimTime, k: usize) -> Vec<Dated> {
        let g = self.read();
        self.view(&g).recent_messages_of(id, max_date, k)
    }

    /// Posts in forum `id`, ascending by creation date.
    pub fn posts_in_forum(&self, id: ForumId) -> Vec<Dated> {
        let g = self.read();
        self.view(&g).collect(g.forum_posts.get(id.index()))
    }

    /// Members of forum `id` with join dates.
    pub fn members_of(&self, id: ForumId) -> Vec<Dated> {
        let g = self.read();
        self.view(&g).collect(g.forum_members.get(id.index()))
    }

    /// Forums `id` has joined, with join dates.
    pub fn forums_of(&self, id: PersonId) -> Vec<Dated> {
        let g = self.read();
        self.view(&g).collect(g.person_forums.get(id.index()))
    }

    /// Forums `id` joined strictly after `min_date` (date-index range scan).
    pub fn forums_of_after(&self, id: PersonId, min_date: SimTime) -> Vec<Dated> {
        let g = self.read();
        self.view(&g).forums_of_after(id, min_date)
    }

    /// Direct replies to message `id`, ascending by date.
    pub fn replies_of(&self, id: MessageId) -> Vec<Dated> {
        let g = self.read();
        self.view(&g).collect(g.message_replies.get(id.index()))
    }

    /// Likes on message `id` as `(person, like date)`.
    pub fn likes_of(&self, id: MessageId) -> Vec<Dated> {
        let g = self.read();
        self.view(&g).collect(g.message_likes.get(id.index()))
    }

    /// Likes given by person `id` as `(message, like date)`.
    pub fn likes_by(&self, id: PersonId) -> Vec<Dated> {
        let g = self.read();
        self.view(&g).collect(g.person_likes.get(id.index()))
    }

    /// Whether persons `a` and `b` are friends in this snapshot.
    pub fn are_friends(&self, a: PersonId, b: PersonId) -> bool {
        let g = self.read();
        self.view(&g).are_friends(a, b)
    }

    /// Storage statistics for the Table 8 experiment.
    pub fn storage_stats(&self) -> crate::stats::StorageStats {
        crate::stats::from_raw(self.read().sizes())
    }
}

impl PinnedSnapshot<'_> {
    fn view(&self) -> ReadView<'_> {
        ReadView { inner: &self.guard, ts: self.ts, counters: self.counters }
    }

    /// The snapshot's commit timestamp.
    pub fn ts(&self) -> CommitTs {
        self.ts
    }

    /// Person by id, if visible — borrowed from the pinned guard.
    pub fn person_ref(&self, id: PersonId) -> Option<&Person> {
        self.view().person_ref(id)
    }

    /// Forum by id, if visible — borrowed from the pinned guard.
    pub fn forum_ref(&self, id: ForumId) -> Option<&Forum> {
        self.view().forum_ref(id)
    }

    /// Full message row, if visible — borrowed from the pinned guard.
    pub fn message_ref(&self, id: MessageId) -> Option<&MessageRow> {
        self.view().message_ref(id)
    }

    /// Person by id, if visible (cloned row).
    pub fn person(&self, id: PersonId) -> Option<Person> {
        self.person_ref(id).cloned()
    }

    /// Forum by id, if visible (cloned row).
    pub fn forum(&self, id: ForumId) -> Option<Forum> {
        self.forum_ref(id).cloned()
    }

    /// Full message row (content included), if visible (cloned row).
    pub fn message(&self, id: MessageId) -> Option<MessageRow> {
        self.message_ref(id).cloned()
    }

    /// Fixed-size message header, if visible.
    pub fn message_meta(&self, id: MessageId) -> Option<MessageMeta> {
        self.view().message_meta(id)
    }

    /// Tags of a message, borrowed (empty if the message is not visible).
    pub fn message_tags(&self, id: MessageId) -> &[TagId] {
        self.message_ref(id).map(|row| &row.tags[..]).unwrap_or(&[])
    }

    /// Upper bound of the person id space (for scans; slots may be empty).
    pub fn person_slots(&self) -> usize {
        self.guard.persons.len()
    }

    /// Upper bound of the forum id space.
    pub fn forum_slots(&self) -> usize {
        self.guard.forums.len()
    }

    /// Upper bound of the message id space.
    pub fn message_slots(&self) -> usize {
        self.guard.messages.len()
    }

    /// Friends of `id`, ascending by date — zero-allocation iterator.
    pub fn friends_iter(&self, id: PersonId) -> DatedIter<'_> {
        self.view().iter(self.guard.knows.get(id.index()))
    }

    /// Messages authored by `id`, ascending by date — zero-allocation.
    pub fn messages_of_iter(&self, id: PersonId) -> DatedIter<'_> {
        self.view().iter(self.guard.person_messages.get(id.index()))
    }

    /// Posts in forum `id`, ascending by date — zero-allocation.
    pub fn posts_in_forum_iter(&self, id: ForumId) -> DatedIter<'_> {
        self.view().iter(self.guard.forum_posts.get(id.index()))
    }

    /// Members of forum `id` with join dates — zero-allocation.
    pub fn members_of_iter(&self, id: ForumId) -> DatedIter<'_> {
        self.view().iter(self.guard.forum_members.get(id.index()))
    }

    /// Forums `id` has joined, with join dates — zero-allocation.
    pub fn forums_of_iter(&self, id: PersonId) -> DatedIter<'_> {
        self.view().iter(self.guard.person_forums.get(id.index()))
    }

    /// Direct replies to message `id`, ascending by date — zero-allocation.
    pub fn replies_of_iter(&self, id: MessageId) -> DatedIter<'_> {
        self.view().iter(self.guard.message_replies.get(id.index()))
    }

    /// Likes on message `id` as `(person, like date)` — zero-allocation.
    pub fn likes_of_iter(&self, id: MessageId) -> DatedIter<'_> {
        self.view().iter(self.guard.message_likes.get(id.index()))
    }

    /// Likes given by person `id` as `(message, like date)` —
    /// zero-allocation.
    pub fn likes_by_iter(&self, id: PersonId) -> DatedIter<'_> {
        self.view().iter(self.guard.person_likes.get(id.index()))
    }

    /// The messages of `id` created at or before `max_date`, newest first —
    /// the borrowing form of [`PinnedSnapshot::recent_messages_of`]; bound
    /// it with `.take(k)` or a threshold-based early break.
    pub fn recent_messages_walk(&self, id: PersonId, max_date: SimTime) -> RecentWalk<'_> {
        self.view().recent_walk(self.guard.person_messages.get(id.index()), max_date)
    }

    /// Friends of `id` with friendship dates, ascending by date.
    pub fn friends(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.guard.knows.get(id.index()))
    }

    /// Messages authored by `id`, ascending by creation date.
    pub fn messages_of(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.guard.person_messages.get(id.index()))
    }

    /// The up-to-`k` most recent messages of `id` created at or before
    /// `max_date`, newest first.
    pub fn recent_messages_of(&self, id: PersonId, max_date: SimTime, k: usize) -> Vec<Dated> {
        self.view().recent_messages_of(id, max_date, k)
    }

    /// Posts in forum `id`, ascending by creation date.
    pub fn posts_in_forum(&self, id: ForumId) -> Vec<Dated> {
        self.view().collect(self.guard.forum_posts.get(id.index()))
    }

    /// Members of forum `id` with join dates.
    pub fn members_of(&self, id: ForumId) -> Vec<Dated> {
        self.view().collect(self.guard.forum_members.get(id.index()))
    }

    /// Forums `id` has joined, with join dates.
    pub fn forums_of(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.guard.person_forums.get(id.index()))
    }

    /// Forums `id` joined strictly after `min_date` (date-index range scan).
    pub fn forums_of_after(&self, id: PersonId, min_date: SimTime) -> Vec<Dated> {
        self.view().forums_of_after(id, min_date)
    }

    /// Direct replies to message `id`, ascending by date.
    pub fn replies_of(&self, id: MessageId) -> Vec<Dated> {
        self.view().collect(self.guard.message_replies.get(id.index()))
    }

    /// Likes on message `id` as `(person, like date)`.
    pub fn likes_of(&self, id: MessageId) -> Vec<Dated> {
        self.view().collect(self.guard.message_likes.get(id.index()))
    }

    /// Likes given by person `id` as `(message, like date)`.
    pub fn likes_by(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.guard.person_likes.get(id.index()))
    }

    /// Whether persons `a` and `b` are friends in this snapshot.
    pub fn are_friends(&self, a: PersonId, b: PersonId) -> bool {
        self.view().are_friends(a, b)
    }

    /// Storage statistics for the Table 8 experiment.
    pub fn storage_stats(&self) -> crate::stats::StorageStats {
        crate::stats::from_raw(self.guard.sizes())
    }
}

impl Inner {
    /// Raw element counts and byte sizes per table for storage statistics.
    fn sizes(&self) -> crate::stats::RawSizes {
        let inner = self;
        let entry_bytes = std::mem::size_of::<Entry>();
        let list_bytes =
            |lists: &Vec<IndexList>| lists.iter().map(|l| l.len() * entry_bytes).sum::<usize>();
        let msg_content: usize = inner
            .messages
            .iter()
            .flatten()
            .map(|v| v.row.content.len() + v.row.tags.len() * 8 + 64)
            .sum();
        crate::stats::RawSizes {
            persons: inner.persons.iter().flatten().count(),
            person_bytes: inner
                .persons
                .iter()
                .flatten()
                .map(|v| {
                    160 + v.row.location_ip.len()
                        + v.row.emails.iter().map(|e| e.len()).sum::<usize>()
                        + v.row.interests.len() * 8
                        + v.row.work_at.len() * 16
                })
                .sum(),
            forums: inner.forums.iter().flatten().count(),
            forum_bytes: inner
                .forums
                .iter()
                .flatten()
                .map(|v| 64 + v.row.title.len() + v.row.tags.len() * 8)
                .sum(),
            messages: inner.messages.iter().flatten().count(),
            message_bytes: msg_content,
            knows_entries: inner.knows.iter().map(|l| l.len()).sum(),
            knows_bytes: list_bytes(&inner.knows),
            likes_entries: inner.message_likes.iter().map(|l| l.len()).sum(),
            likes_bytes: list_bytes(&inner.message_likes) + list_bytes(&inner.person_likes),
            membership_entries: inner.forum_members.iter().map(|l| l.len()).sum(),
            membership_bytes: list_bytes(&inner.forum_members) + list_bytes(&inner.person_forums),
            person_message_bytes: list_bytes(&inner.person_messages),
            forum_post_bytes: list_bytes(&inner.forum_posts),
            reply_bytes: list_bytes(&inner.message_replies),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::dict::names::Gender;
    use snb_core::schema::ForumKind;

    fn person(id: u64, t: i64) -> Person {
        Person {
            id: PersonId(id),
            first_name: "Karl",
            last_name: "Muller",
            gender: Gender::Male,
            birthday: SimTime(0),
            creation_date: SimTime(t),
            city: 0,
            country: 0,
            browser: "Chrome",
            location_ip: "1.2.3.4".into(),
            languages: vec!["de"],
            emails: vec![],
            interests: vec![TagId(1)],
            study_at: None,
            work_at: vec![],
        }
    }

    fn forum(id: u64, moderator: u64, t: i64) -> Forum {
        Forum {
            id: ForumId(id),
            title: "wall".into(),
            moderator: PersonId(moderator),
            creation_date: SimTime(t),
            tags: vec![TagId(1)],
            kind: ForumKind::Wall,
        }
    }

    fn post(id: u64, author: u64, forum: u64, t: i64) -> Post {
        Post {
            id: MessageId(id),
            author: PersonId(author),
            forum: ForumId(forum),
            creation_date: SimTime(t),
            content: "hello".into(),
            image_file: None,
            tags: vec![TagId(1)],
            language: "de",
            country: 0,
        }
    }

    #[test]
    fn insert_and_read_roundtrip() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        s.apply(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        s.apply(&UpdateOp::AddFriendship(Knows {
            a: PersonId(0),
            b: PersonId(1),
            creation_date: SimTime(30),
        }))
        .unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.person(PersonId(0)).unwrap().creation_date, SimTime(10));
        assert_eq!(snap.friends(PersonId(0)).len(), 1);
        assert!(snap.are_friends(PersonId(1), PersonId(0)));
    }

    #[test]
    fn snapshots_do_not_see_later_commits() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        let snap = s.snapshot();
        s.apply(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        assert!(snap.person(PersonId(1)).is_none(), "later commit leaked into snapshot");
        assert!(s.snapshot().person(PersonId(1)).is_some());
    }

    #[test]
    fn constraint_violations_are_rejected() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        // Duplicate person.
        assert!(matches!(
            s.apply(&UpdateOp::AddPerson(person(0, 10))),
            Err(SnbError::Constraint(_))
        ));
        // Friendship with missing endpoint.
        assert!(matches!(
            s.apply(&UpdateOp::AddFriendship(Knows {
                a: PersonId(0),
                b: PersonId(9),
                creation_date: SimTime(1),
            })),
            Err(SnbError::NotFound { .. })
        ));
        // Self-friendship.
        assert!(s
            .apply(&UpdateOp::AddFriendship(Knows {
                a: PersonId(0),
                b: PersonId(0),
                creation_date: SimTime(1),
            }))
            .is_err());
        // Post into missing forum.
        assert!(s.apply(&UpdateOp::AddPost(post(0, 0, 5, 50))).is_err());
    }

    #[test]
    fn counters_track_commits_conflicts_snapshots_and_walks() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        s.apply(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        // Conflict: duplicate person.
        let _ = s.apply(&UpdateOp::AddPerson(person(0, 10)));
        assert_eq!(s.counters().commits.get(), 2);
        assert_eq!(s.counters().conflicts.get(), 1);

        let early = s.snapshot();
        s.apply(&UpdateOp::AddFriendship(Knows {
            a: PersonId(0),
            b: PersonId(1),
            creation_date: SimTime(30),
        }))
        .unwrap();
        assert_eq!(s.counters().snapshots.get(), 1);

        // The friendship committed after `early`: walking it is one
        // examined, one skipped version.
        let walked_before = s.counters().versions_walked.get();
        let skipped_before = s.counters().versions_skipped.get();
        assert!(early.friends(PersonId(0)).is_empty());
        assert_eq!(s.counters().versions_walked.get(), walked_before + 1);
        assert_eq!(s.counters().versions_skipped.get(), skipped_before + 1);

        // A fresh snapshot sees it: examined but not skipped.
        let now = s.snapshot();
        assert_eq!(now.friends(PersonId(0)).len(), 1);
        assert_eq!(s.counters().versions_skipped.get(), skipped_before + 1);

        // Point probes count index probes via the profile scope.
        let profile = std::sync::Arc::new(snb_obs::QueryProfile::new());
        {
            let _guard = snb_obs::QueryProfile::enter(std::sync::Arc::clone(&profile));
            assert!(now.person(PersonId(0)).is_some());
            now.friends(PersonId(0));
        }
        let snap = profile.snapshot();
        assert_eq!(snap.index_probes, 1);
        assert_eq!(snap.versions_walked, 2);
    }

    #[test]
    fn wal_counters_track_appends_and_bytes() {
        let path =
            std::env::temp_dir().join(format!("snb-graph-counters-{}.wal", std::process::id()));
        let s = Store::with_wal(&path).unwrap();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        s.apply(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        s.flush_wal().unwrap();
        assert_eq!(s.counters().wal_appends.get(), 2);
        let logged = s.counters().wal_bytes.get();
        drop(s); // the clean close trims the preallocated tail
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert_eq!(logged + 8, on_disk, "counted bytes + file magic must match the file size");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_policy_fsyncs_before_acknowledging() {
        let path =
            std::env::temp_dir().join(format!("snb-graph-durable-{}.wal", std::process::id()));
        let s = Store::with_wal_policy(&path, crate::wal::SyncPolicy::EveryCommit).unwrap();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        s.apply(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        // One fsync per acknowledged commit, latency recorded, no errors.
        assert!(s.counters().wal_fsyncs.get() >= 2);
        assert_eq!(s.counters().wal_group_size.get(), 2);
        assert!(s.counters().wal_fsync_micros.count() >= 2);
        assert_eq!(s.counters().wal_sync_errors.get(), 0);
        drop(s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pipelined_apply_defers_the_durability_barrier() {
        let path =
            std::env::temp_dir().join(format!("snb-graph-pipeline-{}.wal", std::process::id()));
        let s = Store::with_wal_policy(
            &path,
            crate::wal::SyncPolicy::GroupCommit {
                max_batch: 64,
                max_delay: std::time::Duration::ZERO,
            },
        )
        .unwrap();
        // Phase one only: both commits visible, neither necessarily synced.
        let s0 = s.apply_async(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        let s1 = s.apply_async(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        assert_eq!((s0, s1), (Some(1), Some(2)));
        assert!(s.snapshot().person(PersonId(1)).is_some(), "visible before durable");
        // One barrier on the newest seq covers the whole window.
        s.wait_durable(s1).unwrap();
        assert!(s.counters().wal_fsyncs.get() >= 1);
        assert_eq!(s.counters().wal_group_size.get(), 2, "horizon covers both records");
        drop(s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parallel_bulk_load_matches_serial_indexes() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(150).activity(0.4))
                .unwrap();
        let serial = Store::new();
        serial.bulk_load_until_threads(&ds, ds.config.end, 1);
        let parallel = Store::new();
        parallel.bulk_load_until_threads(&ds, ds.config.end, 4);
        let ss = serial.snapshot();
        let sp = parallel.snapshot();
        assert_eq!(ss.person_slots(), sp.person_slots());
        assert_eq!(ss.forum_slots(), sp.forum_slots());
        assert_eq!(ss.message_slots(), sp.message_slots());
        for i in 0..ss.person_slots() as u64 {
            let p = PersonId(i);
            assert_eq!(ss.friends(p), sp.friends(p), "friends of {p}");
            assert_eq!(ss.messages_of(p), sp.messages_of(p), "messages of {p}");
            assert_eq!(ss.forums_of(p), sp.forums_of(p), "forums of {p}");
            assert_eq!(ss.likes_by(p), sp.likes_by(p), "likes by {p}");
        }
        for i in 0..ss.message_slots() as u64 {
            let m = MessageId(i);
            assert_eq!(ss.replies_of(m), sp.replies_of(m), "replies of {m}");
            assert_eq!(ss.likes_of(m), sp.likes_of(m), "likes of {m}");
            let (a, b) = (ss.message(m), sp.message(m));
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "row of {m}");
        }
        for i in 0..ss.forum_slots() as u64 {
            let f = ForumId(i);
            assert_eq!(ss.posts_in_forum(f), sp.posts_in_forum(f), "posts in {f}");
            assert_eq!(ss.members_of(f), sp.members_of(f), "members of {f}");
        }
    }

    #[test]
    fn bulk_prefix_tracks_inserts() {
        let mut list = IndexList::from_bulk(vec![
            Entry { date: SimTime(10), id: 0, commit: BULK_TS },
            Entry { date: SimTime(30), id: 1, commit: BULK_TS },
        ]);
        assert_eq!(list.bulk, 2);
        // A bulk entry inside the prefix extends it (serial bulk load).
        list.insert(Entry { date: SimTime(20), id: 2, commit: BULK_TS });
        assert_eq!(list.bulk, 3);
        // A versioned entry appended after the prefix leaves it intact.
        list.insert(Entry { date: SimTime(40), id: 3, commit: 5 });
        assert_eq!(list.bulk, 3);
        // A versioned entry landing inside the prefix splits it there.
        list.insert(Entry { date: SimTime(15), id: 4, commit: 6 });
        assert_eq!(list.bulk, 1);
        // Entries stay `(date, id)` sorted and the prefix stays all-bulk.
        assert!(list.entries.windows(2).all(|w| (w[0].date, w[0].id) < (w[1].date, w[1].id)));
        assert!(list.entries[..list.bulk].iter().all(|e| e.commit == BULK_TS));
    }

    #[test]
    fn pinned_snapshot_matches_unpinned_reads() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(120).activity(0.4))
                .unwrap();
        let s = Store::new();
        s.bulk_load(&ds);
        // Mix in post-bulk commits so both lanes are exercised.
        for u in ds.update_stream().iter().take(200) {
            s.apply(&u.op).unwrap();
        }
        let snap = s.snapshot();
        let pinned = s.pinned();
        assert_eq!(snap.ts(), pinned.ts());
        for i in 0..snap.person_slots() as u64 {
            let p = PersonId(i);
            assert_eq!(snap.friends(p), pinned.friends(p));
            assert_eq!(snap.friends(p), pinned.friends_iter(p).collect::<Vec<_>>());
            assert_eq!(snap.messages_of(p), pinned.messages_of_iter(p).collect::<Vec<_>>());
            let recent = snap.recent_messages_of(p, SimTime(i64::MAX), 5);
            assert_eq!(
                recent,
                pinned.recent_messages_walk(p, SimTime(i64::MAX)).take(5).collect::<Vec<_>>()
            );
            assert_eq!(
                format!("{:?}", snap.person(p)),
                format!("{:?}", pinned.person_ref(p).cloned())
            );
        }
        assert!(s.counters().read_guard_pins.get() >= 1);
        assert!(s.counters().read_fastpath_entries.get() > 0, "bulk prefix must be exercised");
    }

    #[test]
    fn fastpath_entries_skip_version_accounting() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(80).activity(0.3))
                .unwrap();
        let s = Store::new();
        s.load_full(&ds);
        let pinned = s.pinned();
        let walked_before = s.counters().versions_walked.get();
        let fast_before = s.counters().read_fastpath_entries.get();
        let mut total = 0usize;
        for i in 0..pinned.person_slots() as u64 {
            total += pinned.friends_iter(PersonId(i)).count();
        }
        assert!(total > 0);
        // A purely bulk-loaded store serves everything from the fast lane.
        assert_eq!(s.counters().versions_walked.get(), walked_before);
        assert_eq!(s.counters().read_fastpath_entries.get(), fast_before + total as u64);
    }

    #[test]
    fn failed_transactions_leave_no_trace() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        let before = s.snapshot().ts();
        let _ = s.apply(&UpdateOp::AddPost(post(0, 0, 5, 50)));
        let snap = s.snapshot();
        assert_eq!(snap.ts(), before, "failed txn must not advance the clock");
        assert!(snap.message(MessageId(0)).is_none());
    }

    #[test]
    fn message_indexes_are_date_ordered() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 1))).unwrap();
        s.apply(&UpdateOp::AddForum(forum(0, 0, 2))).unwrap();
        // Insert posts out of date order; index must stay sorted.
        s.apply(&UpdateOp::AddPost(post(1, 0, 0, 50))).unwrap();
        s.apply(&UpdateOp::AddPost(post(0, 0, 0, 30))).unwrap();
        s.apply(&UpdateOp::AddPost(post(2, 0, 0, 40))).unwrap();
        let snap = s.snapshot();
        let dates: Vec<i64> =
            snap.messages_of(PersonId(0)).iter().map(|(_, d)| d.millis()).collect();
        assert_eq!(dates, vec![30, 40, 50]);
        let recent: Vec<u64> = snap
            .recent_messages_of(PersonId(0), SimTime(i64::MAX), 10)
            .iter()
            .map(|&(m, _)| m)
            .collect();
        assert_eq!(recent, vec![1, 2, 0]);
    }

    #[test]
    fn comment_and_like_indexes() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 1))).unwrap();
        s.apply(&UpdateOp::AddForum(forum(0, 0, 2))).unwrap();
        s.apply(&UpdateOp::AddPost(post(0, 0, 0, 10))).unwrap();
        s.apply(&UpdateOp::AddComment(Comment {
            id: MessageId(1),
            author: PersonId(0),
            creation_date: SimTime(20),
            content: "re".into(),
            reply_to: MessageId(0),
            root_post: MessageId(0),
            forum: ForumId(0),
            tags: vec![],
            country: 0,
        }))
        .unwrap();
        s.apply(&UpdateOp::AddPostLike(Like {
            person: PersonId(0),
            message: MessageId(0),
            creation_date: SimTime(30),
        }))
        .unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.replies_of(MessageId(0)).len(), 1);
        assert_eq!(snap.likes_of(MessageId(0)).first(), Some(&(0, SimTime(30))));
        assert_eq!(snap.likes_by(PersonId(0)).first(), Some(&(0, SimTime(30))));
        let msg = snap.message(MessageId(1)).unwrap();
        assert!(msg.is_comment());
        assert_eq!(msg.reply_info, Some((MessageId(0), MessageId(0))));
    }

    #[test]
    fn comment_requires_existing_parent() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 1))).unwrap();
        s.apply(&UpdateOp::AddForum(forum(0, 0, 2))).unwrap();
        let c = Comment {
            id: MessageId(5),
            author: PersonId(0),
            creation_date: SimTime(20),
            content: "re".into(),
            reply_to: MessageId(99),
            root_post: MessageId(99),
            forum: ForumId(0),
            tags: vec![],
            country: 0,
        };
        assert!(s.apply(&UpdateOp::AddComment(c)).is_err());
    }

    #[test]
    fn bulk_load_is_visible_to_all_snapshots() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(100).activity(0.3))
                .unwrap();
        let s = Store::new();
        s.bulk_load(&ds);
        let snap = s.snapshot();
        let bulk_persons =
            ds.persons.iter().filter(|p| p.creation_date <= ds.config.update_split).count();
        let visible_persons =
            (0..snap.person_slots()).filter(|&i| snap.person(PersonId(i as u64)).is_some()).count();
        assert_eq!(visible_persons, bulk_persons);
    }

    #[test]
    fn update_stream_replays_cleanly_after_bulk_load() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(200).activity(0.3))
                .unwrap();
        let s = Store::new();
        s.bulk_load(&ds);
        let stream = ds.update_stream();
        assert!(!stream.is_empty());
        for u in &stream {
            s.apply(&u.op).unwrap_or_else(|e| panic!("replay failed on {}: {e}", u.op.name()));
        }
        let snap = s.snapshot();
        let visible_persons =
            (0..snap.person_slots()).filter(|&i| snap.person(PersonId(i as u64)).is_some()).count();
        assert_eq!(visible_persons, ds.persons.len());
        let visible_msgs = (0..snap.message_slots())
            .filter(|&i| snap.message(MessageId(i as u64)).is_some())
            .count();
        assert_eq!(visible_msgs, ds.message_count());
    }
}
