//! The transactional property-graph store.
//!
//! This is the substrate the paper's evaluation ran on closed systems
//! (Sparksee, Virtuoso): an in-memory graph store with ACID inserts and
//! snapshot reads (see [`crate::mvcc`] for why snapshot isolation is
//! serializable on this workload), primary-key tables dense in the
//! creation-ordered id space, and the adjacency/secondary indexes the
//! Interactive queries need:
//!
//! - `knows` adjacency with friendship dates (Q1-Q14, S3)
//! - per-person messages ordered by creation date (Q2, Q8, Q9, S2)
//! - per-forum posts and members, per-person forum joins (Q5, S6)
//! - reply trees (Q8, Q12, S7) and like edges in both directions (Q7)
//!
//! Date-ordered index entries make the "top-20 most recent before date"
//! pattern — the backbone of half the complex reads — a reverse scan with
//! early termination, which is exactly the locality §3 says systems should
//! exploit when ids correlate with time.
//!
//! # Concurrency model
//!
//! Reads are **latch-free** and writes are **shard-parallel** (see
//! DESIGN.md, "Concurrency model" for the full memory-ordering argument):
//!
//! - Every table is a [`SegVec`] — a fixed spine of geometrically growing
//!   segments. Segments are never reallocated or moved, so readers hold
//!   plain references while writers install new slots; a published length
//!   (`high`) is advanced with release stores and read with acquire loads.
//! - Every [`IndexList`] is an immutable sorted bulk prefix plus an
//!   append-only *published tail*: a writer (serialized per list by its
//!   stripe lock) initializes the next slot, then release-stores the new
//!   visible length; readers acquire-load the length and never see a
//!   partially written entry.
//! - Writers lock only the [`STRIPES`]-way striped locks covering the ids
//!   their operation touches, so shard-disjoint updates (different persons'
//!   activity — the common case) run in parallel.
//!   [`crate::mvcc::CommitClock::publish`] is out-of-order and
//!   non-blocking: writers mark their timestamp in a publication ring and
//!   the visibility watermark advances over the contiguous published
//!   prefix, so ordering lives in visibility, not in a barrier.
//! - MVCC visibility is untouched: a published entry whose commit
//!   timestamp is above the snapshot timestamp is simply invisible, so
//!   [`Snapshot`]/[`PinnedSnapshot`] semantics are byte-identical to the
//!   old latched store.

use crate::compact::{merge_compact, CompactRun, Cursor, RevCursor, FILL_DATED};
use crate::counters::{StoreCounters, STRIPES};
use crate::mvcc::{visible, CommitClock, CommitTs, BULK_TS};
use crate::wal::{SyncPolicy, Wal};
use parking_lot::{Mutex, MutexGuard};
use snb_core::schema::{Comment, Forum, ForumMembership, Knows, Like, Person, Post};
use snb_core::time::SimTime;
use snb_core::update::UpdateOp;
use snb_core::{ForumId, MessageId, PersonId, SnbError, SnbResult, TagId};
use snb_obs::trace::{self, NameId};
use snb_obs::{tick_index_probes, tick_versions_walked};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// A stored message: posts and comments share one table and id space.
#[derive(Debug, Clone)]
pub struct MessageRow {
    /// Author.
    pub author: PersonId,
    /// Containing forum.
    pub forum: ForumId,
    /// Creation date.
    pub creation_date: SimTime,
    /// Content (empty for photos).
    pub content: Box<str>,
    /// Image file for photos.
    pub image_file: Option<Box<str>>,
    /// Topic tags.
    pub tags: Box<[TagId]>,
    /// Content language (posts only; comments inherit "").
    pub language: &'static str,
    /// Country the message was sent from.
    pub country: u32,
    /// `None` for posts; `Some((reply_to, root_post))` for comments.
    pub reply_info: Option<(MessageId, MessageId)>,
}

impl MessageRow {
    /// Whether this message is a comment.
    #[inline]
    pub fn is_comment(&self) -> bool {
        self.reply_info.is_some()
    }
}

/// Versioned row wrapper.
#[derive(Debug, Clone)]
pub(crate) struct Versioned<T> {
    pub(crate) commit: CommitTs,
    pub(crate) row: T,
}

/// A dated, versioned index entry pointing at an entity.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) date: SimTime,
    pub(crate) id: u64,
    pub(crate) commit: CommitTs,
}

#[inline]
pub(crate) fn key(e: &Entry) -> (SimTime, u64) {
    (e.date, e.id)
}

/// A concurrent segmented vector: a fixed spine of [`OnceLock`] segments
/// whose sizes grow geometrically (segment `k` holds `1 << (B + k)`
/// elements), plus a published element-count `high`.
///
/// The two properties the latch-free read path needs:
///
/// - **Stable addresses.** Segments are boxed slices allocated once and
///   never moved, so a reader's `&T` stays valid while writers install
///   other slots — there is no `Vec`-style reallocation to invalidate it.
/// - **Atomic publication.** Each slot is a [`OnceLock`]: `set` fully
///   initializes the value before flipping the slot's state, and `get`
///   acquires that state, so a reader observes either nothing or the whole
///   value. `high` gates `get` so slots above the published bound stay
///   invisible even if already installed.
///
/// All of this is safe Rust: the unsafe publication machinery lives inside
/// `std::sync::OnceLock`.
#[derive(Debug)]
pub(crate) struct SegVec<T, const B: u32, const N: usize> {
    segs: [OnceLock<Box<[OnceLock<T>]>>; N],
    high: AtomicUsize,
}

impl<T, const B: u32, const N: usize> Default for SegVec<T, B, N> {
    fn default() -> Self {
        SegVec::new()
    }
}

impl<T, const B: u32, const N: usize> SegVec<T, B, N> {
    pub(crate) fn new() -> SegVec<T, B, N> {
        SegVec { segs: std::array::from_fn(|_| OnceLock::new()), high: AtomicUsize::new(0) }
    }

    /// Segment index and offset of element `i`: segment `k` covers the
    /// index range `[((1<<k)-1) << B, ((1<<(k+1))-1) << B)`.
    #[inline]
    fn locate(i: usize) -> (usize, usize) {
        let n = (i >> B) + 1;
        let k = (usize::BITS - 1 - n.leading_zeros()) as usize;
        let base = ((1usize << k) - 1) << B;
        (k, i - base)
    }

    #[inline]
    fn seg_len(k: usize) -> usize {
        1usize << (B as usize + k)
    }

    /// The slot for element `i`, allocating its segment on first touch.
    /// Writer-side only; readers go through [`SegVec::get`].
    fn slot(&self, i: usize) -> &OnceLock<T> {
        let (k, off) = Self::locate(i);
        let seg = self.segs[k].get_or_init(|| {
            (0..Self::seg_len(k)).map(|_| OnceLock::new()).collect::<Vec<_>>().into_boxed_slice()
        });
        &seg[off]
    }

    /// Element `i` if it is below the published bound and installed.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> Option<&T> {
        if i >= self.high.load(Ordering::Acquire) {
            return None;
        }
        let (k, off) = Self::locate(i);
        self.segs[k].get()?.get(off)?.get()
    }

    /// Raise the published bound to at least `n` (slots below it read as
    /// absent until installed, exactly like the old `ensure`d `None`s).
    #[inline]
    pub(crate) fn bump(&self, n: usize) {
        self.high.fetch_max(n, Ordering::AcqRel);
    }

    /// Published bound of the id space (the `*_slots()` scan limit).
    #[inline]
    pub(crate) fn high(&self) -> usize {
        self.high.load(Ordering::Acquire)
    }

    /// Install element `i` without raising the bound — the bulk loader's
    /// primitive: workers install in parallel, then the caller publishes
    /// every table's bound once at the end.
    pub(crate) fn set_slot(&self, i: usize, v: T) {
        let stored = self.slot(i).set(v).is_ok();
        debug_assert!(stored, "SegVec slot {i} installed twice");
    }

    /// Install element `i` and publish it (bound raised first so a reader
    /// that sees the slot also sees it in-bounds).
    pub(crate) fn install(&self, i: usize, v: T) {
        self.bump(i + 1);
        self.set_slot(i, v);
    }

    /// Element `i` without the `high` gate, for readers whose visibility
    /// proof is external (e.g. a ladder run published strictly before an
    /// acquire-loaded tail length). Skips one atomic load per lookup.
    #[inline]
    fn get_published(&self, i: usize) -> Option<&T> {
        let (k, off) = Self::locate(i);
        self.segs[k].get()?.get(off)?.get()
    }
}

/// Entity tables: segment 0 holds 1024 rows, 22 segments bound the id
/// space at ~4.3e9 — far beyond any scale factor we generate.
pub(crate) type EntityTable<T> = SegVec<Versioned<T>, 10, 22>;
/// Index-list tables, same geometry as [`EntityTable`].
pub(crate) type IndexTable = SegVec<IndexList, 10, 22>;
/// Published tails: start at 8 entries (most lists see few post-bulk
/// inserts), 24 segments bound a single list at ~134M tail entries.
pub(crate) type TailSlots = SegVec<Entry, 3, 24>;

impl TailSlots {
    /// The published length: every index below it is fully initialized.
    #[inline]
    fn published_len(&self) -> usize {
        self.high.load(Ordering::Acquire)
    }

    /// Entry `i`, which must be below a previously acquire-loaded
    /// published length (or, writer-side, a slot installed under the held
    /// stripe lock).
    #[inline]
    fn published(&self, i: usize) -> Entry {
        *self.published_ref(i)
    }

    #[inline]
    fn published_ref(&self, i: usize) -> &Entry {
        let (k, off) = Self::locate(i);
        self.segs[k].get().expect("published tail segment missing")[off]
            .get()
            .expect("published tail slot uninitialized")
    }
}

/// Merge-ladder height: level `k` holds `(date, id)`-sorted runs of
/// `1 << k` entries (level 0 is the raw slot array itself), so levels up
/// to 26 cover the ~2^27-entry tail capacity of [`TailSlots`].
const LADDER_LEVELS: usize = 27;
/// Lowest *materialized* ladder level. Levels below it are never built:
/// the newest `p mod 2^LADDER_BASE` tail entries are served straight from
/// the raw slot array as single-entry lanes instead. Retained low-level
/// runs were where the ladder's `O(t log t)` memory actually lived — every
/// tail entry used to be copied into a 2-run, a 4-run and an 8-run that
/// are all kept forever for pinned readers, and at ~10-14 encoded bytes
/// per entry per level those three levels cost more than the whole bulk
/// index. Skipping them trades at most `2^LADDER_BASE - 1` extra
/// decode-free lanes per read for a third of total index memory, and the
/// newest entries — what "most recent" walks consume first — now need no
/// decode at all.
const LADDER_BASE: usize = 4;
/// Most lanes one decomposition can produce: one run per materialized
/// level plus up to `2^LADDER_BASE - 1` raw singles.
const MAX_RUNS: usize = LADDER_LEVELS - LADDER_BASE + (1 << LADDER_BASE) - 1;

/// One ladder level: run `j` of level `k` is the sorted copy of raw tail
/// entries `[j << k, (j + 1) << k)`, stored delta-encoded (see
/// [`crate::compact`]). Runs complete in ascending `j` order (run `j` is
/// built when entry `((j + 1) << k) - 1` lands), so a [`SegVec`] publishes
/// them naturally.
type RunLevel = SegVec<CompactRun, 2, 26>;

/// One lane of a decomposed tail: either a single raw slot (a level-0
/// "run" borrows its entry straight from the slot array) or a compact
/// ladder run that lanes decode through cursors.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LaneSrc<'t> {
    Single(&'t Entry),
    Run(&'t CompactRun),
}

/// The published tail of an [`IndexList`]: an append-only raw slot array
/// plus a *merge ladder* of immutable sorted runs (Bentley–Saxe binary
/// decomposition).
///
/// Writers only ever append: [`IndexTail::push`] installs the raw slot,
/// builds every power-of-two-aligned run the append completes (merging
/// the two half-size runs below it), and only then release-stores the new
/// length. A reader that acquire-loads length `p` therefore finds the
/// full run decomposition of `p` already published, and — because runs
/// are never mutated or freed — a reader holding an *older* length keeps
/// using the older decomposition untouched. This is what lets the
/// borrowing iterators stay **lazy**: instead of eagerly copying and
/// sorting the visible tail per read, they k-way-merge at most one
/// immutable run per level (≤ [`MAX_RUNS`] cursors) and pay only for the
/// entries actually consumed, with zero per-read allocation — the same
/// cost class as the old sorted-in-place list, without its write latch.
///
/// The price is write-side: the ladder costs `O(log n)` amortized copy
/// work per append (one `O(n)` carry when the length crosses a power of
/// two) and `O(n log n)` total memory per list, both bounded by the tail
/// length, not the bulk prefix.
#[derive(Debug)]
pub(crate) struct IndexTail {
    slots: TailSlots,
    /// Level `k` lives at `levels[k - 1]`; lazily allocated (short tails
    /// never touch the higher levels).
    levels: [OnceLock<Box<RunLevel>>; LADDER_LEVELS - 1],
}

impl IndexTail {
    fn new() -> IndexTail {
        IndexTail { slots: TailSlots::new(), levels: std::array::from_fn(|_| OnceLock::new()) }
    }

    /// The published tail length (readers decompose exactly this prefix).
    #[inline]
    fn published_len(&self) -> usize {
        self.slots.published_len()
    }

    /// Raw entry `i` in append order (below a published length).
    #[inline]
    fn published(&self, i: usize) -> Entry {
        self.slots.published(i)
    }

    fn level(&self, k: usize) -> &RunLevel {
        self.levels[k - 1].get_or_init(|| Box::new(RunLevel::new()))
    }

    /// Append `e`, build every ladder run this append completes, then
    /// publish the new length. Callers must hold the owning list's stripe
    /// lock: the lock serializes pushers, so the relaxed length read sees
    /// the previous push (the lock's release/acquire pairs order them),
    /// and the release store hands every initialized slot *and run* to
    /// readers that acquire-load the length.
    fn push(&self, e: Entry) {
        let n = self.slots.high.load(Ordering::Relaxed);
        let stored = self.slots.slot(n).set(e).is_ok();
        debug_assert!(stored, "tail slot {n} double-published");
        let len = n + 1;
        let mut k = LADDER_BASE;
        while k < LADDER_LEVELS && len & ((1usize << k) - 1) == 0 {
            let j = (len >> k) - 1;
            let run: CompactRun = if k == LADDER_BASE {
                // The base run sorts its slot range directly — levels
                // below LADDER_BASE are never materialized.
                let base = j << LADDER_BASE;
                let mut batch: [Entry; 1 << LADDER_BASE] =
                    std::array::from_fn(|i| self.slots.published(base + i));
                batch.sort_unstable_by_key(key);
                CompactRun::from_sorted(&batch)
            } else {
                let lower = self.level(k - 1);
                let a = lower.get(2 * j).expect("ladder child run missing");
                let b = lower.get(2 * j + 1).expect("ladder child run missing");
                merge_compact(a, b)
            };
            self.level(k).install(j, run);
            k += 1;
        }
        self.slots.high.store(len, Ordering::Release);
    }

    /// The sorted-run decomposition of the published prefix `p`: at most
    /// one run per level, descending sizes, together covering raw entries
    /// `[0, p)` exactly. Every returned run was fully built before `p`
    /// was published.
    #[inline]
    fn decompose<'t>(&'t self, p: usize, out: &mut [Option<LaneSrc<'t>>; MAX_RUNS]) -> usize {
        let mut n = 0usize;
        let mut offset = 0usize;
        // Materialized runs cover the largest base-aligned prefix.
        let mut rem = p & !((1usize << LADDER_BASE) - 1);
        while rem != 0 {
            let k = (usize::BITS - 1 - rem.leading_zeros()) as usize;
            let level = self.levels[k - 1].get().expect("published ladder level missing");
            out[n] = Some(LaneSrc::Run(
                level.get_published(offset >> k).expect("published ladder run missing"),
            ));
            n += 1;
            offset += 1usize << k;
            rem &= !(1usize << k);
        }
        // The sub-base remainder — the newest entries — straight from the
        // raw slots, one decode-free lane each.
        for i in offset..p {
            out[n] = Some(LaneSrc::Single(self.slots.published_ref(i)));
            n += 1;
        }
        n
    }

    /// Resident bytes of the ladder itself for the published prefix: the
    /// compact run bytes across all levels plus the raw slot array.
    fn heap_bytes(&self) -> (usize, usize, usize) {
        let len = self.published_len();
        let mut run_bytes = 0usize;
        let mut run_entries = 0usize;
        for k in LADDER_BASE..LADDER_LEVELS {
            let Some(level) = self.levels[k - 1].get() else { continue };
            for j in 0..(len >> k) {
                if let Some(run) = level.get(j) {
                    run_bytes += run.heap_bytes();
                    run_entries += run.len();
                }
            }
        }
        (run_bytes, run_entries, len * std::mem::size_of::<Entry>())
    }
}

/// A date-ordered index list: an immutable `(date, id)`-sorted bulk prefix
/// (all entries stamped [`BULK_TS`], visible to every snapshot, scanned
/// with no `visible()` checks — the fast lane) plus an append-only
/// *published tail* of post-bulk entries.
///
/// The raw tail is not kept sorted — writers only ever append and publish
/// the new length with a release store, so readers never race a memmove.
/// Order is recovered two ways: the borrowing iterators lazily merge the
/// tail's [`IndexTail`] ladder runs (zero allocation, pay-per-entry), and
/// the materializing `Vec` APIs eagerly [`IndexList::gather_tail`] the
/// raw slots and sort the (typically tiny) batch. A list with an empty
/// tail costs readers nothing beyond one acquire load either way.
#[derive(Debug, Default)]
pub(crate) struct IndexList {
    bulk: CompactRun,
    /// Lazily allocated: most lists never see a post-bulk insert.
    tail: OnceLock<Box<IndexTail>>,
}

impl IndexList {
    /// A list whose entries are all bulk-loaded (already `(date, id)`
    /// sorted, all stamped [`BULK_TS`]), delta-encoded here — the bulk
    /// loader's sort-once path is the one construction site for bulk
    /// prefixes, so compression rides the existing single pass.
    pub(crate) fn from_bulk(entries: Vec<Entry>) -> IndexList {
        debug_assert!(entries.iter().all(|e| e.commit == BULK_TS));
        debug_assert!(entries.windows(2).all(|w| key(&w[0]) <= key(&w[1])));
        IndexList { bulk: CompactRun::from_sorted(&entries), tail: OnceLock::new() }
    }

    /// The immutable always-visible bulk prefix.
    #[inline]
    pub(crate) fn bulk(&self) -> &CompactRun {
        &self.bulk
    }

    /// Append `e` to the published tail (requires the owning stripe lock;
    /// see [`IndexTail::push`]).
    pub(crate) fn push(&self, e: Entry) {
        self.tail.get_or_init(|| Box::new(IndexTail::new())).push(e);
    }

    fn tail(&self) -> Option<&IndexTail> {
        self.tail.get().map(|t| &**t)
    }

    /// Published tail length.
    pub(crate) fn tail_len(&self) -> usize {
        self.tail().map_or(0, |t| t.published_len())
    }

    /// Total published entries (bulk prefix + tail).
    pub(crate) fn len(&self) -> usize {
        self.bulk.len() + self.tail_len()
    }

    /// Resident-byte accounting: `(run_bytes, run_entries, tail_bytes)`.
    /// `run_bytes` covers the compact bulk prefix plus every ladder run;
    /// `run_entries` is the entry count behind those bytes (bulk + ladder
    /// copies — what the pre-compact format stored as 24-byte structs);
    /// `tail_bytes` is the raw (uncompressed) slot array.
    pub(crate) fn mem(&self) -> (usize, usize, usize) {
        let (mut run_bytes, mut run_entries, mut tail_bytes) =
            (self.bulk.heap_bytes(), self.bulk.len(), 0);
        if let Some(tail) = self.tail() {
            let (ladder_bytes, ladder_entries, raw_bytes) = tail.heap_bytes();
            run_bytes += ladder_bytes;
            run_entries += ladder_entries;
            tail_bytes += raw_bytes;
        }
        (run_bytes, run_entries, tail_bytes)
    }

    /// Gather the tail entries passing `pred` that are visible at `ts`
    /// into `out`, sorted by `(date, id)`. Returns `(fast, examined,
    /// kept)`: tail entries served on the [`BULK_TS`] fast lane, versioned
    /// entries examined, and of those the visible ones kept. Entries
    /// rejected by `pred` are uncounted (a date-bounded scan never touched
    /// them in the sorted representation). Allocates nothing when the tail
    /// is empty.
    pub(crate) fn gather_tail<F: Fn(&Entry) -> bool>(
        &self,
        ts: CommitTs,
        pred: F,
        out: &mut Vec<Entry>,
    ) -> (usize, usize, usize) {
        let Some(tail) = self.tail() else {
            return (0, 0, 0);
        };
        let n = tail.published_len();
        if n == 0 {
            return (0, 0, 0);
        }
        out.reserve(n);
        let (mut fast, mut examined, mut kept) = (0usize, 0usize, 0usize);
        for i in 0..n {
            let e = tail.published(i);
            if !pred(&e) {
                continue;
            }
            if e.commit == BULK_TS {
                fast += 1;
                out.push(e);
            } else {
                examined += 1;
                if visible(e.commit, ts) {
                    kept += 1;
                    out.push(e);
                }
            }
        }
        out.sort_unstable_by_key(key);
        (fast, examined, kept)
    }
}

// Write-lock striping width (`STRIPES`, declared next to the per-stripe
// telemetry in `counters.rs` so the lock map and the heatmap can't drift).
// Power of two so the stripe map is a mask; 64 stripes keep the collision
// probability of two random ids ~1.6% while the whole lock array stays one
// cache page.

/// Trace-span names for the write-pipeline stages and read-path phases
/// ([`trace::record_stage`] attaches these as children of whatever span the
/// caller has open — `driver.execute` in-process, `server.execute` remote).
static SPAN_STRIPE_WAIT: NameId = NameId::new("store.stage.stripe_wait");
static SPAN_VALIDATE: NameId = NameId::new("store.stage.validate");
static SPAN_VALIDATE_FAILED: NameId = NameId::new("store.stage.validate_failed");
static SPAN_WAL_APPEND: NameId = NameId::new("store.stage.wal_append");
static SPAN_RESERVE: NameId = NameId::new("store.stage.reserve");
static SPAN_APPLY: NameId = NameId::new("store.stage.apply");
static SPAN_PUBLISH_WAIT: NameId = NameId::new("store.stage.publish_wait");
static SPAN_DURABLE_WAIT: NameId = NameId::new("store.stage.durable_wait");
static SPAN_READ_PIN: NameId = NameId::new("store.read.pin");
static SPAN_LADDER_MERGE: NameId = NameId::new("store.read.ladder_merge");
static SPAN_RECENT_WALK: NameId = NameId::new("store.read.recent_walk");

#[inline]
fn stripe_of(raw: u64) -> usize {
    (raw as usize) & (STRIPES - 1)
}

/// The stripes an update writes to, sorted ascending and deduplicated —
/// locking in ascending order makes overlapping writers deadlock-free.
/// Validation-only reads (e.g. a comment's forum or root post) take no
/// stripe: latch-free readers don't either, and a miss is equivalent to
/// serializing before the in-flight dependency.
fn stripe_set(op: &UpdateOp) -> ([usize; 3], usize) {
    let mut s = [0usize; 3];
    let n = match op {
        UpdateOp::AddPerson(p) => {
            s[0] = stripe_of(p.id.raw());
            1
        }
        UpdateOp::AddFriendship(k) => {
            s[0] = stripe_of(k.a.raw());
            s[1] = stripe_of(k.b.raw());
            2
        }
        UpdateOp::AddForum(f) => {
            s[0] = stripe_of(f.id.raw());
            1
        }
        UpdateOp::AddMembership(m) => {
            s[0] = stripe_of(m.person.raw());
            s[1] = stripe_of(m.forum.raw());
            2
        }
        UpdateOp::AddPost(p) => {
            s[0] = stripe_of(p.author.raw());
            s[1] = stripe_of(p.forum.raw());
            s[2] = stripe_of(p.id.raw());
            3
        }
        UpdateOp::AddComment(c) => {
            s[0] = stripe_of(c.author.raw());
            s[1] = stripe_of(c.reply_to.raw());
            s[2] = stripe_of(c.id.raw());
            3
        }
        UpdateOp::AddPostLike(l) | UpdateOp::AddCommentLike(l) => {
            s[0] = stripe_of(l.person.raw());
            s[1] = stripe_of(l.message.raw());
            2
        }
    };
    s[..n].sort_unstable();
    let mut m = 1;
    for i in 1..n {
        if s[i] != s[m - 1] {
            s[m] = s[i];
            m += 1;
        }
    }
    (s, m)
}

/// All tables of the store, shared lock-free between readers and writers.
/// Insert methods take `&self` but require the caller to hold the stripe
/// locks covering every id they write (the per-list single-writer
/// guarantee behind [`IndexTail::push`]).
#[derive(Debug)]
pub(crate) struct Tables {
    pub(crate) persons: EntityTable<Person>,
    pub(crate) forums: EntityTable<Forum>,
    pub(crate) messages: EntityTable<MessageRow>,
    /// knows adjacency, both directions; Entry.id = other person.
    pub(crate) knows: IndexTable,
    /// per-person authored messages; Entry.id = message.
    pub(crate) person_messages: IndexTable,
    /// per-person authored posts only (no comments); Entry.id = message.
    /// A covering index for the "posts by circle" queries (Q6, Q10):
    /// without it they scan `person_messages` and pay one random probe
    /// into the fat message table per entry just to discard replies —
    /// measured as the dominant cost of the complex mix.
    pub(crate) person_posts: IndexTable,
    /// per-forum posts; Entry.id = message.
    pub(crate) forum_posts: IndexTable,
    /// per-forum members; Entry.id = person, date = join date.
    pub(crate) forum_members: IndexTable,
    /// per-person joined forums; Entry.id = forum, date = join date.
    pub(crate) person_forums: IndexTable,
    /// per-message direct replies; Entry.id = replying comment.
    pub(crate) message_replies: IndexTable,
    /// per-message likes; Entry.id = liking person.
    pub(crate) message_likes: IndexTable,
    /// per-person given likes; Entry.id = liked message.
    pub(crate) person_likes: IndexTable,
}

impl Tables {
    fn new() -> Tables {
        Tables {
            persons: SegVec::new(),
            forums: SegVec::new(),
            messages: SegVec::new(),
            knows: SegVec::new(),
            person_messages: SegVec::new(),
            person_posts: SegVec::new(),
            forum_posts: SegVec::new(),
            forum_members: SegVec::new(),
            person_forums: SegVec::new(),
            message_replies: SegVec::new(),
            message_likes: SegVec::new(),
            person_likes: SegVec::new(),
        }
    }

    /// Whether no entity has ever been inserted (the parallel loader can
    /// only build a store from scratch).
    fn is_empty(&self) -> bool {
        self.persons.high() == 0 && self.forums.high() == 0 && self.messages.high() == 0
    }

    /// The list at `i`, created empty on first touch (with the bound
    /// raised, replicating the old `ensure` slot parity).
    fn list(table: &IndexTable, i: usize) -> &IndexList {
        table.bump(i + 1);
        table.slot(i).get_or_init(IndexList::default)
    }

    fn validate(&self, op: &UpdateOp) -> SnbResult<()> {
        let person_exists = |id: PersonId| -> SnbResult<()> {
            self.persons
                .get(id.index())
                .map(|_| ())
                .ok_or(SnbError::NotFound { entity: "person", id: id.raw() })
        };
        let forum_exists = |id: ForumId| -> SnbResult<()> {
            self.forums
                .get(id.index())
                .map(|_| ())
                .ok_or(SnbError::NotFound { entity: "forum", id: id.raw() })
        };
        let message_exists = |id: MessageId| -> SnbResult<()> {
            self.messages
                .get(id.index())
                .map(|_| ())
                .ok_or(SnbError::NotFound { entity: "message", id: id.raw() })
        };
        match op {
            UpdateOp::AddPerson(p) => {
                if self.persons.get(p.id.index()).is_some() {
                    return Err(SnbError::Constraint(format!("duplicate person {}", p.id)));
                }
            }
            UpdateOp::AddFriendship(k) => {
                if k.a == k.b {
                    return Err(SnbError::Constraint("self-friendship".into()));
                }
                person_exists(k.a)?;
                person_exists(k.b)?;
            }
            UpdateOp::AddForum(f) => {
                person_exists(f.moderator)?;
                if self.forums.get(f.id.index()).is_some() {
                    return Err(SnbError::Constraint(format!("duplicate forum {}", f.id)));
                }
            }
            UpdateOp::AddMembership(m) => {
                person_exists(m.person)?;
                forum_exists(m.forum)?;
            }
            UpdateOp::AddPost(p) => {
                person_exists(p.author)?;
                forum_exists(p.forum)?;
                if self.messages.get(p.id.index()).is_some() {
                    return Err(SnbError::Constraint(format!("duplicate message {}", p.id)));
                }
            }
            UpdateOp::AddComment(c) => {
                person_exists(c.author)?;
                forum_exists(c.forum)?;
                message_exists(c.reply_to)?;
                message_exists(c.root_post)?;
                if self.messages.get(c.id.index()).is_some() {
                    return Err(SnbError::Constraint(format!("duplicate message {}", c.id)));
                }
            }
            UpdateOp::AddPostLike(l) | UpdateOp::AddCommentLike(l) => {
                person_exists(l.person)?;
                message_exists(l.message)?;
            }
        }
        Ok(())
    }

    fn insert_person(&self, p: Person, ts: CommitTs) {
        let i = p.id.index();
        self.knows.bump(i + 1);
        self.person_messages.bump(i + 1);
        self.person_posts.bump(i + 1);
        self.person_forums.bump(i + 1);
        self.person_likes.bump(i + 1);
        self.persons.install(i, Versioned { commit: ts, row: p });
    }

    fn insert_knows(&self, k: &Knows, ts: CommitTs) {
        let (a, b) = (k.a.index(), k.b.index());
        Self::list(&self.knows, a).push(Entry { date: k.creation_date, id: k.b.raw(), commit: ts });
        Self::list(&self.knows, b).push(Entry { date: k.creation_date, id: k.a.raw(), commit: ts });
    }

    fn insert_forum(&self, f: Forum, ts: CommitTs) {
        let i = f.id.index();
        self.forum_posts.bump(i + 1);
        self.forum_members.bump(i + 1);
        self.forums.install(i, Versioned { commit: ts, row: f });
    }

    fn insert_membership(&self, m: &ForumMembership, ts: CommitTs) {
        Self::list(&self.forum_members, m.forum.index()).push(Entry {
            date: m.join_date,
            id: m.person.raw(),
            commit: ts,
        });
        Self::list(&self.person_forums, m.person.index()).push(Entry {
            date: m.join_date,
            id: m.forum.raw(),
            commit: ts,
        });
    }

    fn insert_message_row(&self, id: MessageId, row: MessageRow, ts: CommitTs) {
        let i = id.index();
        self.message_replies.bump(i + 1);
        self.message_likes.bump(i + 1);
        Self::list(&self.person_messages, row.author.index()).push(Entry {
            date: row.creation_date,
            id: id.raw(),
            commit: ts,
        });
        self.messages.install(i, Versioned { commit: ts, row });
    }

    fn insert_post(&self, p: &Post, ts: CommitTs) {
        Self::list(&self.forum_posts, p.forum.index()).push(Entry {
            date: p.creation_date,
            id: p.id.raw(),
            commit: ts,
        });
        Self::list(&self.person_posts, p.author.index()).push(Entry {
            date: p.creation_date,
            id: p.id.raw(),
            commit: ts,
        });
        self.insert_message_row(p.id, post_row(p), ts);
    }

    fn insert_comment(&self, c: &Comment, ts: CommitTs) {
        Self::list(&self.message_replies, c.reply_to.index()).push(Entry {
            date: c.creation_date,
            id: c.id.raw(),
            commit: ts,
        });
        self.insert_message_row(c.id, comment_row(c), ts);
    }

    fn insert_like(&self, l: &Like, ts: CommitTs) {
        Self::list(&self.message_likes, l.message.index()).push(Entry {
            date: l.creation_date,
            id: l.person.raw(),
            commit: ts,
        });
        Self::list(&self.person_likes, l.person.index()).push(Entry {
            date: l.creation_date,
            id: l.message.raw(),
            commit: ts,
        });
    }

    /// `(name, measured footprint)` for each of the nine index tables:
    /// compact run bytes, raw tail bytes, and the uncompressed-oracle cost
    /// of the same runs (see [`crate::stats::IndexFootprint`]).
    fn index_footprints(&self) -> Vec<(&'static str, crate::stats::IndexFootprint)> {
        let foot = |t: &IndexTable| {
            let mut f = crate::stats::IndexFootprint::default();
            for i in 0..t.high() {
                if let Some(l) = t.get(i) {
                    let (run_bytes, run_entries, tail_bytes) = l.mem();
                    f.entries += l.len();
                    f.run_bytes += run_bytes;
                    f.tail_bytes += tail_bytes;
                    f.oracle_run_bytes += run_entries * std::mem::size_of::<Entry>();
                }
            }
            f
        };
        vec![
            ("knows", foot(&self.knows)),
            ("person_messages", foot(&self.person_messages)),
            ("person_posts", foot(&self.person_posts)),
            ("forum_posts", foot(&self.forum_posts)),
            ("forum_members", foot(&self.forum_members)),
            ("person_forums", foot(&self.person_forums)),
            ("message_replies", foot(&self.message_replies)),
            ("message_likes", foot(&self.message_likes)),
            ("person_likes", foot(&self.person_likes)),
        ]
    }

    /// Raw element counts and byte sizes per table for storage statistics.
    fn sizes(&self) -> crate::stats::RawSizes {
        let persons = || (0..self.persons.high()).filter_map(|i| self.persons.get(i));
        let forums = || (0..self.forums.high()).filter_map(|i| self.forums.get(i));
        let messages = || (0..self.messages.high()).filter_map(|i| self.messages.get(i));
        crate::stats::RawSizes {
            persons: persons().count(),
            person_bytes: persons()
                .map(|v| {
                    160 + v.row.location_ip.len()
                        + v.row.emails.iter().map(|e| e.len()).sum::<usize>()
                        + v.row.interests.len() * 8
                        + v.row.work_at.len() * 16
                })
                .sum(),
            forums: forums().count(),
            forum_bytes: forums().map(|v| 64 + v.row.title.len() + v.row.tags.len() * 8).sum(),
            messages: messages().count(),
            message_bytes: messages()
                .map(|v| v.row.content.len() + v.row.tags.len() * 8 + 64)
                .sum(),
            per_index: self.index_footprints(),
        }
    }
}

/// Default bulk-load parallelism: the machine's cores, capped — loading is
/// memory-bound well before 8 threads.
fn default_load_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

/// [`MessageRow`] for a post — shared by the incremental insert path and
/// the parallel bulk loader so both produce identical rows.
pub(crate) fn post_row(p: &Post) -> MessageRow {
    MessageRow {
        author: p.author,
        forum: p.forum,
        creation_date: p.creation_date,
        content: p.content.as_str().into(),
        image_file: p.image_file.as_deref().map(Into::into),
        tags: p.tags.clone().into_boxed_slice(),
        language: p.language,
        country: p.country as u32,
        reply_info: None,
    }
}

/// [`MessageRow`] for a comment — shared like [`post_row`].
pub(crate) fn comment_row(c: &Comment) -> MessageRow {
    MessageRow {
        author: c.author,
        forum: c.forum,
        creation_date: c.creation_date,
        content: c.content.as_str().into(),
        image_file: None,
        tags: c.tags.clone().into_boxed_slice(),
        language: "",
        country: c.country as u32,
        reply_info: Some((c.reply_to, c.root_post)),
    }
}

/// What [`Store::recover`] found in (and trimmed off) the write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed transactions replayed from the intact prefix.
    pub replayed: u64,
    /// Bytes truncated off the torn or corrupt tail (0 on a clean log).
    pub truncated_bytes: u64,
    /// Best-effort count of records among the truncated bytes.
    pub truncated_records: u64,
    /// Sequence number of the last replayed record.
    pub last_seq: u64,
}

/// The store.
#[derive(Debug)]
pub struct Store {
    tables: Tables,
    /// Striped writer locks; an update locks only the stripes covering the
    /// ids it writes, in ascending order (deadlock-free).
    stripes: [Mutex<()>; STRIPES],
    clock: CommitClock,
    wal: Option<Wal>,
    counters: StoreCounters,
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

fn stripe_locks() -> [Mutex<()>; STRIPES] {
    std::array::from_fn(|_| Mutex::new(()))
}

impl Store {
    /// Empty store without durability.
    pub fn new() -> Store {
        Store {
            tables: Tables::new(),
            stripes: stripe_locks(),
            clock: CommitClock::new(),
            wal: None,
            counters: StoreCounters::new(),
        }
    }

    /// Empty store logging every committed transaction to a write-ahead log
    /// at `path` (created or truncated), without fsync — the historical
    /// behaviour, equivalent to [`SyncPolicy::Never`].
    pub fn with_wal(path: &Path) -> SnbResult<Store> {
        Store::with_wal_policy(path, SyncPolicy::Never)
    }

    /// Empty store logging to a write-ahead log at `path` (created or
    /// truncated) under `policy`: commits are acknowledged only once the
    /// policy's durability requirement holds for their record.
    pub fn with_wal_policy(path: &Path, policy: SyncPolicy) -> SnbResult<Store> {
        let counters = StoreCounters::new();
        let wal = Wal::create_with(path, policy, counters.wal_metrics())?;
        Ok(Store {
            tables: Tables::new(),
            stripes: stripe_locks(),
            clock: CommitClock::new(),
            wal: Some(wal),
            counters,
        })
    }

    /// Runtime counters for this store instance.
    pub fn counters(&self) -> &StoreCounters {
        &self.counters
    }

    /// Walk the tables and overwrite the `store.mem.*` gauges with current
    /// measured sizes. The walk is O(rows), so callers run it on demand —
    /// right before snapshotting counters for a report — never per write.
    pub fn refresh_mem_gauges(&self) {
        let stats = crate::stats::from_raw(self.tables.sizes());
        let dict = snb_core::dict::Dictionaries::global().heap_bytes();
        self.counters.mem.refresh(&stats, dict);
    }

    /// Recover a store by bulk-loading `bulk` and replaying the WAL at
    /// `path`, without keeping the log attached for further durability
    /// (reopens it under [`SyncPolicy::Never`]).
    pub fn recover(bulk: &snb_datagen::Dataset, path: &Path) -> SnbResult<(Store, RecoveryReport)> {
        Store::recover_with_policy(bulk, path, SyncPolicy::Never)
    }

    /// Recover a store and keep appending to the same log: bulk-load
    /// `bulk`, replay the WAL's intact prefix, physically truncate its torn
    /// tail (reported and counted in `store.wal.recovery_truncated_bytes`),
    /// and resume the log at the next sequence number under `policy`.
    pub fn recover_with_policy(
        bulk: &snb_datagen::Dataset,
        path: &Path,
        policy: SyncPolicy,
    ) -> SnbResult<(Store, RecoveryReport)> {
        let counters = StoreCounters::new();
        let (wal, replay) = Wal::open_append(path, policy, counters.wal_metrics())?;
        let report = RecoveryReport {
            replayed: replay.ops.len() as u64,
            truncated_bytes: replay.truncated_bytes,
            truncated_records: replay.truncated_records,
            last_seq: replay.last_seq,
        };
        let store = Store {
            tables: Tables::new(),
            stripes: stripe_locks(),
            clock: CommitClock::new(),
            wal: Some(wal),
            counters,
        };
        store.bulk_load(bulk);
        for op in &replay.ops {
            store.apply_internal(op, false)?;
        }
        Ok((store, report))
    }

    /// Bulk-load every entity of `ds` with a creation date at or before the
    /// configured update split (§4: "32 months are bulkloaded at benchmark
    /// start"). Bulk rows carry [`BULK_TS`] and are visible to every
    /// snapshot. Uses the parallel sorted loader on an empty store.
    pub fn bulk_load(&self, ds: &snb_datagen::Dataset) {
        self.bulk_load_until(ds, ds.config.update_split)
    }

    /// Bulk-load everything (useful for query-only experiments).
    pub fn load_full(&self, ds: &snb_datagen::Dataset) {
        self.bulk_load_until(ds, ds.config.end)
    }

    /// Bulk-load all entities created at or before `cut`, with the default
    /// degree of load parallelism.
    pub fn bulk_load_until(&self, ds: &snb_datagen::Dataset, cut: SimTime) {
        self.bulk_load_until_threads(ds, cut, default_load_threads())
    }

    /// Bulk-load all entities created at or before `cut` using `threads`
    /// loader threads.
    ///
    /// On an empty store this always takes the parallel sorted path
    /// ([`crate::loader`]): partition every id space into contiguous
    /// per-thread ranges, build each table slice and adjacency list on its
    /// owning thread, sort every date-ordered index **once**, and install
    /// the lists as immutable bulk prefixes — the result is identical at
    /// any thread count (including 1). A non-empty store (incremental
    /// top-up loads, as used by a few experiments) falls back to the
    /// serial insert path under all write stripes, which composes with
    /// existing contents by appending [`BULK_TS`] tail entries.
    ///
    /// Bulk loading is not atomic with respect to concurrent readers —
    /// run it before serving queries, as the benchmark does.
    pub fn bulk_load_until_threads(&self, ds: &snb_datagen::Dataset, cut: SimTime, threads: usize) {
        if self.tables.is_empty() {
            crate::loader::build_into(&self.tables, ds, cut, threads.max(1));
            return;
        }
        let _guards: Vec<MutexGuard<'_, ()>> = self.stripes.iter().map(|m| m.lock()).collect();
        for p in &ds.persons {
            if p.creation_date <= cut {
                self.tables.insert_person(p.clone(), BULK_TS);
            }
        }
        for k in &ds.knows {
            if k.creation_date <= cut {
                self.tables.insert_knows(k, BULK_TS);
            }
        }
        for f in &ds.forums {
            if f.creation_date <= cut {
                self.tables.insert_forum(f.clone(), BULK_TS);
            }
        }
        for m in &ds.memberships {
            if m.join_date <= cut {
                self.tables.insert_membership(m, BULK_TS);
            }
        }
        for p in &ds.posts {
            if p.creation_date <= cut {
                self.tables.insert_post(p, BULK_TS);
            }
        }
        for c in &ds.comments {
            if c.creation_date <= cut {
                self.tables.insert_comment(c, BULK_TS);
            }
        }
        for l in &ds.likes {
            if l.creation_date <= cut {
                self.tables.insert_like(l, BULK_TS);
            }
        }
    }

    /// Bulk-load only shard `shard` of `map`'s slice of `ds` (entities
    /// dated at or before `cut`): persons and the friendship graph in
    /// full — they are replicated on every shard — plus the forums whose
    /// id range this shard owns together with their entire activity trees
    /// (memberships, posts, comments, likes). Backs `snb serve
    /// --shard i/N`; requires an empty store, and always takes the
    /// parallel sorted path.
    pub fn bulk_load_sharded(
        &self,
        ds: &snb_datagen::Dataset,
        cut: SimTime,
        threads: usize,
        map: snb_core::shard::ShardMap,
        shard: u32,
    ) {
        assert!(self.tables.is_empty(), "sharded bulk load requires an empty store");
        crate::loader::build_into_sharded(
            &self.tables,
            ds,
            cut,
            threads.max(1),
            Some(crate::loader::ShardSel::new(map, shard)),
        );
    }

    /// Execute one update operation as an ACID transaction: lock the
    /// touched stripes, validate, WAL-append, apply, publish — then,
    /// outside every lock, wait for the WAL's [`SyncPolicy`] to make the
    /// record durable before acknowledging.
    ///
    /// WAL order is no longer equal to commit-timestamp order (two
    /// shard-disjoint writers append in whatever order they reach the
    /// log), but it still *respects dependencies*: a transaction B that
    /// validated against A's rows can only have seen them after A's
    /// append (A appends before it installs any row), so A precedes B in
    /// the log and prefix-consistent recovery replays every dependency
    /// before its dependent. The durability wait happens after all locks
    /// are released (early lock release): group commit batches fsyncs
    /// across concurrent committers without serializing the in-memory work
    /// behind the disk. A commit may be briefly visible to snapshots
    /// before it is durable, but it is never acknowledged to the caller
    /// until it is — the standard group-commit contract.
    pub fn apply(&self, op: &UpdateOp) -> SnbResult<()> {
        let (seq, published) = self.apply_internal(op, true)?;
        // The durable stage runs from publish to acknowledgement — group
        // commit wait plus the commit's bookkeeping tail — and is timed
        // even when it is a no-op (no WAL), so the seven stage histograms
        // tile `apply` end-to-end and their sums reconcile against
        // measured op latency.
        self.wait_durable(seq)?;
        let t1 = trace::now_nanos();
        self.counters.stages.durable_wait.record(t1 - published);
        trace::record_stage(&SPAN_DURABLE_WAIT, published / 1_000, t1 / 1_000);
        Ok(())
    }

    /// Pipelined commit, phase one: WAL-append, apply, publish — and return
    /// without waiting for durability. The commit is immediately visible to
    /// new snapshots (so causally dependent operations can proceed), but it
    /// MUST NOT be acknowledged until [`Store::wait_durable`] has been
    /// called on the returned sequence number. Because WAL order respects
    /// dependency order (see [`Store::apply`]), a crash before the sync
    /// loses only unacknowledged commits — never a dependency of a
    /// surviving record.
    pub fn apply_async(&self, op: &UpdateOp) -> SnbResult<Option<u64>> {
        self.apply_internal(op, true).map(|(seq, _)| seq)
    }

    /// Pipelined commit, phase two: block until the WAL record `seq` (and,
    /// the durable horizon being cumulative, every record before it) is
    /// durable per the [`SyncPolicy`]. `None` — an op applied with no WAL
    /// attached — and stores without a WAL return immediately.
    pub fn wait_durable(&self, seq: Option<u64>) -> SnbResult<()> {
        if let (Some(wal), Some(seq)) = (&self.wal, seq) {
            wal.wait_durable(seq)?;
        }
        Ok(())
    }

    /// Lock the stripes `op` writes to, ascending. A contended stripe is
    /// counted in `store.write.shard_conflicts` before blocking, and the
    /// time spent blocked lands in that stripe's acquire-wait histogram —
    /// the per-stripe heatmap that separates "one hot stripe" from
    /// "uniform collision pressure".
    fn lock_stripes(&self, op: &UpdateOp) -> Vec<MutexGuard<'_, ()>> {
        let (set, n) = stripe_set(op);
        let mut guards = Vec::with_capacity(n);
        for &i in &set[..n] {
            match self.stripes[i].try_lock() {
                Some(g) => guards.push(g),
                None => {
                    self.counters.write_shard_conflicts.inc();
                    let blocked = trace::now_nanos();
                    let g = self.stripes[i].lock();
                    self.counters.stripes.note_conflict(i, trace::now_nanos() - blocked);
                    guards.push(g);
                }
            }
        }
        guards
    }

    /// Striped phase of [`Store::apply`]. Returns the WAL sequence number
    /// to await when a log append happened.
    ///
    /// Ordering within the stripe critical section is load-bearing:
    /// everything fallible (validation, the WAL append) happens **before**
    /// [`CommitClock::reserve`], because every reserved timestamp must be
    /// published or the visibility watermark would wedge at the gap; and
    /// the append happens **before** any row is installed so WAL order
    /// respects dependency order (see [`Store::apply`]). `publish` is
    /// out-of-order and non-blocking (ring wraparound aside — see
    /// [`CommitClock::publish`]): a descheduled writer delays only the
    /// watermark, never other committers.
    /// Returns the WAL sequence to await plus the publish-end timestamp
    /// ([`trace::now_nanos`]) where the `durable_wait` stage begins.
    fn apply_internal(&self, op: &UpdateOp, log: bool) -> SnbResult<(Option<u64>, u64)> {
        // Stage boundaries double as histogram samples and (when a trace
        // is live) causal child spans of the caller's op span. The six
        // stages here plus `durable_wait` in `apply` tile the committed
        // path end-to-end. Failed validations record their stripe wait
        // plus a `validate_failed` sample (kept out of the committed-path
        // tiling), so contention burned before a conflict still shows up
        // in the attribution exactly when conflicts spike.
        let t0 = trace::now_nanos();
        let guards = self.lock_stripes(op);
        let t1 = trace::now_nanos();
        if let Err(e) = self.tables.validate(op) {
            let t_failed = trace::now_nanos();
            self.counters.conflicts.inc();
            let st = &self.counters.stages;
            st.stripe_wait.record(t1 - t0);
            st.validate_failed.record(t_failed - t1);
            if trace::tracing_possible() {
                trace::record_stage(&SPAN_STRIPE_WAIT, t0 / 1_000, t1 / 1_000);
                trace::record_stage(&SPAN_VALIDATE_FAILED, t1 / 1_000, t_failed / 1_000);
            }
            return Err(e);
        }
        let t2 = trace::now_nanos();
        let mut seq = None;
        if log {
            if let Some(wal) = &self.wal {
                let appended = wal.append(op)?;
                self.counters.wal_appends.inc();
                self.counters.wal_bytes.add(appended.bytes);
                seq = Some(appended.seq);
            }
        }
        let t3 = trace::now_nanos();
        let ts = self.clock.reserve();
        let t4 = trace::now_nanos();
        match op {
            UpdateOp::AddPerson(p) => self.tables.insert_person(p.clone(), ts),
            UpdateOp::AddPostLike(l) | UpdateOp::AddCommentLike(l) => {
                self.tables.insert_like(l, ts)
            }
            UpdateOp::AddForum(f) => self.tables.insert_forum(f.clone(), ts),
            UpdateOp::AddMembership(m) => self.tables.insert_membership(m, ts),
            UpdateOp::AddPost(p) => self.tables.insert_post(p, ts),
            UpdateOp::AddComment(c) => self.tables.insert_comment(c, ts),
            UpdateOp::AddFriendship(k) => self.tables.insert_knows(k, ts),
        }
        let t5 = trace::now_nanos();
        let publication = self.clock.publish(ts);
        let t6 = trace::now_nanos();
        self.counters.commits.inc();
        drop(guards);
        self.counters.publish_parks.add(publication.parked);
        self.counters.watermark_lag.record(publication.lag);
        let st = &self.counters.stages;
        st.stripe_wait.record(t1 - t0);
        st.validate.record(t2 - t1);
        st.wal_append.record(t3 - t2);
        st.reserve.record(t4 - t3);
        st.apply.record(t5 - t4);
        st.publish_wait.record(t6 - t5);
        if trace::tracing_possible() {
            trace::record_stage(&SPAN_STRIPE_WAIT, t0 / 1_000, t1 / 1_000);
            trace::record_stage(&SPAN_VALIDATE, t1 / 1_000, t2 / 1_000);
            trace::record_stage(&SPAN_WAL_APPEND, t2 / 1_000, t3 / 1_000);
            trace::record_stage(&SPAN_RESERVE, t3 / 1_000, t4 / 1_000);
            trace::record_stage(&SPAN_APPLY, t4 / 1_000, t5 / 1_000);
            trace::record_stage(&SPAN_PUBLISH_WAIT, t5 / 1_000, t6 / 1_000);
        }
        Ok((seq, t6))
    }

    /// Flush the WAL (an fsync durability point under any policy other than
    /// [`SyncPolicy::Never`]).
    pub fn flush_wal(&self) -> SnbResult<()> {
        if let Some(wal) = &self.wal {
            wal.flush()?;
        }
        Ok(())
    }

    /// Open a read snapshot: sees every transaction committed before this
    /// call, and nothing that commits after.
    pub fn snapshot(&self) -> Snapshot<'_> {
        self.counters.snapshots.inc();
        Snapshot { store: self, ts: self.clock.snapshot_ts() }
    }

    /// Open a *pinned* read snapshot. Since the latch-free rework this
    /// acquires **no lock at all**: it reads the commit horizon with one
    /// acquire load and hands out borrows straight into the immutable
    /// segments — a long query never blocks a writer, and a writer never
    /// blocks a reader. It is now safe to hold a pin across
    /// [`Store::apply`] on the same thread and to interleave any number of
    /// pins; the pinned view stays frozen at its snapshot timestamp.
    ///
    /// MVCC semantics are identical to [`Store::snapshot`] (same timestamp
    /// rule, same visibility filter); the pinned form exists for the
    /// borrowing zero-allocation APIs ([`PinnedSnapshot::friends_iter`],
    /// [`PinnedSnapshot::person_ref`], …).
    pub fn pinned(&self) -> PinnedSnapshot<'_> {
        self.counters.snapshots.inc();
        self.counters.read_latchfree.inc();
        if trace::tracing_possible() {
            // Instant marker: the pin itself is one acquire load, so the
            // span records *when* the snapshot was taken, not a duration.
            let t = trace::now_micros();
            trace::record_stage(&SPAN_READ_PIN, t, t);
        }
        PinnedSnapshot {
            tables: &self.tables,
            ts: self.clock.snapshot_ts(),
            counters: &self.counters,
        }
    }
}

/// A consistent read view of the store.
///
/// The snapshot pins a commit timestamp; consistency comes from MVCC
/// visibility alone — every accessor filters by the pinned timestamp, so
/// the snapshot observes exactly the transactions committed before it was
/// opened, no matter how many commit during the query. Reads are
/// latch-free (see the module docs), so this type is cheap to hold across
/// anything, including [`Store::apply`] on the same thread.
///
/// [`Snapshot`] carries the owned-`Vec` API and is kept deliberately as an
/// independent implementation of the scans, serving as the oracle the
/// property tests compare [`PinnedSnapshot`]'s borrowing iterators
/// against.
pub struct Snapshot<'a> {
    store: &'a Store,
    ts: CommitTs,
}

/// A pinned, latch-free read view (see [`Store::pinned`]).
///
/// Pinning buys the borrowing APIs: accessors hand out references and
/// zero-allocation iterators tied to the store's immutable segments
/// ([`PinnedSnapshot::friends_iter`], [`PinnedSnapshot::recent_messages_walk`],
/// [`PinnedSnapshot::person_ref`] …). MVCC visibility is byte-identical to
/// [`Snapshot`]: the timestamp decides what is seen; no latch is involved.
pub struct PinnedSnapshot<'a> {
    tables: &'a Tables,
    ts: CommitTs,
    counters: &'a StoreCounters,
}

/// `(entity id, date)` pair yielded by index scans.
pub type Dated = (u64, SimTime);

/// Fixed-size message header for traversal-heavy queries; cloning the full
/// [`MessageRow`] (content included) is reserved for result materialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageMeta {
    /// Author.
    pub author: PersonId,
    /// Containing forum.
    pub forum: ForumId,
    /// Creation date.
    pub creation_date: SimTime,
    /// Country the message was sent from.
    pub country: u32,
    /// `None` for posts; `Some((reply_to, root_post))` for comments.
    pub reply_info: Option<(MessageId, MessageId)>,
}

/// The shared read-path implementation: all primitives over the shared
/// [`Tables`], parameterized by the snapshot timestamp. Both snapshot
/// types delegate here; the borrowing iterators gather a list's published
/// tail once up front (visibility-filtered, sorted) and merge it with the
/// immutable bulk prefix on the fly.
#[derive(Clone, Copy)]
struct ReadView<'g> {
    tables: &'g Tables,
    ts: CommitTs,
    counters: &'g StoreCounters,
}

/// Ascending two-pointer merge of a (compact) sorted bulk prefix and a
/// sorted, already-visibility-filtered tail batch.
fn merge_ascending(mut prefix: Cursor<'_>, tail: &[Entry], out: &mut Vec<Dated>) {
    out.reserve(prefix.remaining() + tail.len());
    let mut t = 0usize;
    while let Some(p) = prefix.peek() {
        while t < tail.len() && key(&tail[t]) < key(&p) {
            out.push((tail[t].id, tail[t].date));
            t += 1;
        }
        out.push((p.id, p.date));
        prefix.advance();
    }
    for e in &tail[t..] {
        out.push((e.id, e.date));
    }
}

impl<'g> ReadView<'g> {
    /// Account one keyed point lookup: `examined` when a versioned row was
    /// present, `kept` when it was visible to this snapshot. Ticks the
    /// store counters and the current query profile (if any).
    fn note_probe(&self, examined: bool, kept: bool) {
        tick_index_probes(1);
        if examined {
            let c = self.counters;
            c.versions_walked.add(1);
            if !kept {
                c.versions_skipped.inc();
            }
            tick_versions_walked(1);
        }
    }

    /// Account one index scan: `fast` entries served from the always-
    /// visible fast lane (bulk prefix, plus [`BULK_TS`] tail entries from
    /// top-up loads — no visibility check either way), `examined`
    /// version-stamped entries walked of which `kept` were visible. Both
    /// lanes funnel through here so they stay consistently accounted:
    /// every touched entry lands in exactly one of
    /// `store.read.fastlane_entries` or `store.mvcc.versions_walked`.
    /// The eager `Vec` APIs account their whole gathered tail up front;
    /// the lazy iterators batch per-entry accounting as they go and flush
    /// it on drop (see [`flush_scan_accounting`]) — an early-exiting
    /// caller reports only what it actually touched.
    fn note_scan(&self, fast: usize, examined: usize, kept: usize) {
        let c = self.counters;
        if fast > 0 {
            c.read_fastlane_entries.add(fast as u64);
        }
        if examined > 0 {
            c.versions_walked.add(examined as u64);
            c.versions_skipped.add((examined - kept) as u64);
            tick_versions_walked(examined as u64);
        }
    }

    fn person_ref(&self, id: PersonId) -> Option<&'g Person> {
        let slot = self.tables.persons.get(id.index());
        let vis = slot.filter(|v| visible(v.commit, self.ts));
        self.note_probe(slot.is_some(), vis.is_some());
        vis.map(|v| &v.row)
    }

    fn forum_ref(&self, id: ForumId) -> Option<&'g Forum> {
        let slot = self.tables.forums.get(id.index());
        let vis = slot.filter(|v| visible(v.commit, self.ts));
        self.note_probe(slot.is_some(), vis.is_some());
        vis.map(|v| &v.row)
    }

    fn message_ref(&self, id: MessageId) -> Option<&'g MessageRow> {
        let slot = self.tables.messages.get(id.index());
        let vis = slot.filter(|v| visible(v.commit, self.ts));
        self.note_probe(slot.is_some(), vis.is_some());
        vis.map(|v| &v.row)
    }

    fn message_meta(&self, id: MessageId) -> Option<MessageMeta> {
        self.message_ref(id).map(|row| MessageMeta {
            author: row.author,
            forum: row.forum,
            creation_date: row.creation_date,
            country: row.country,
            reply_info: row.reply_info,
        })
    }

    /// Materialize a whole index list, ascending `(date, id)`.
    ///
    /// Deliberately NOT written as `self.iter(list).collect()`: this merge
    /// and [`DatedIter`] are independent implementations of the same scan,
    /// so the property test comparing the `Vec` API against the iterator
    /// API actually checks something.
    fn collect(&self, list: Option<&IndexList>) -> Vec<Dated> {
        let Some(list) = list else {
            return Vec::new();
        };
        let bulk = list.bulk();
        let mut tail = Vec::new();
        let (fast_t, examined, kept) = list.gather_tail(self.ts, |_| true, &mut tail);
        self.note_scan(bulk.len() + fast_t, examined, kept);
        let mut out = Vec::new();
        merge_ascending(bulk.cursor(), &tail, &mut out);
        out
    }

    /// Borrowing scan over a whole index list, ascending `(date, id)` —
    /// lazy: the tail's ladder runs are merged as the iterator is
    /// consumed, so an early-exiting caller never pays for the rest.
    fn iter(&self, list: Option<&'g IndexList>) -> DatedIter<'g> {
        let mut it = DatedIter {
            prefix: Cursor::empty(),
            pbuf: [(0, SimTime(0)); FILL_DATED],
            pbuf_pos: 0,
            pbuf_len: 0,
            runs: std::array::from_fn(|_| Cursor::empty()),
            nruns: 0,
            cur: NO_LANE,
            bound: (SimTime(0), 0),
            ts: self.ts,
            counters: self.counters,
            fast: 0,
            examined: 0,
            kept: 0,
            span_start: if trace::tracing_possible() { trace::now_micros().max(1) } else { 0 },
        };
        if let Some(l) = list {
            it.prefix = l.bulk().cursor();
            if let Some(tail) = l.tail() {
                let mut lanes = [None; MAX_RUNS];
                let n = tail.decompose(tail.published_len(), &mut lanes);
                for lane in lanes[..n].iter().flatten() {
                    it.runs[it.nruns] = match lane {
                        LaneSrc::Single(e) => Cursor::single(**e),
                        LaneSrc::Run(r) => r.cursor(),
                    };
                    it.nruns += 1;
                }
            }
        }
        it
    }

    /// Borrowing reverse scan (newest first) over the entries dated at or
    /// before `max_date` — lazy, same run-merge structure as
    /// [`ReadView::iter`] consumed from the back.
    fn recent_walk(&self, list: Option<&'g IndexList>, max_date: SimTime) -> RecentWalk<'g> {
        let mut w = RecentWalk {
            prefix: RevCursor::empty(),
            runs: std::array::from_fn(|_| RevCursor::empty()),
            nruns: 0,
            cur: NO_LANE,
            bound: (SimTime(0), 0),
            ts: self.ts,
            counters: self.counters,
            fast: 0,
            examined: 0,
            kept: 0,
            span_start: if trace::tracing_possible() { trace::now_micros().max(1) } else { 0 },
        };
        if let Some(l) = list {
            w.prefix = RevCursor::to_date_bound(l.bulk(), max_date);
            if let Some(tail) = l.tail() {
                let mut lanes = [None; MAX_RUNS];
                let n = tail.decompose(tail.published_len(), &mut lanes);
                for lane in lanes[..n].iter().flatten() {
                    let bounded = match lane {
                        LaneSrc::Single(e) => {
                            if e.date > max_date {
                                continue;
                            }
                            RevCursor::single(**e)
                        }
                        LaneSrc::Run(r) => {
                            let c = RevCursor::to_date_bound(r, max_date);
                            if c.remaining() == 0 {
                                continue;
                            }
                            c
                        }
                    };
                    w.runs[w.nruns] = bounded;
                    w.nruns += 1;
                }
            }
        }
        w
    }

    fn recent_messages_of(&self, id: PersonId, max_date: SimTime, k: usize) -> Vec<Dated> {
        let walk = self.recent_walk(self.tables.person_messages.get(id.index()), max_date);
        let mut out = Vec::with_capacity(k);
        out.extend(walk.take(k));
        out
    }

    fn forums_of_after(&self, id: PersonId, min_date: SimTime) -> Vec<Dated> {
        let Some(list) = self.tables.person_forums.get(id.index()) else {
            return Vec::new();
        };
        let bulk = list.bulk();
        let prefix = Cursor::at(bulk, bulk.upper_bound_date(min_date));
        let mut tail = Vec::new();
        let (fast_t, examined, kept) = list.gather_tail(self.ts, |e| e.date > min_date, &mut tail);
        self.note_scan(prefix.remaining() + fast_t, examined, kept);
        let mut out = Vec::new();
        merge_ascending(prefix, &tail, &mut out);
        out
    }

    fn are_friends(&self, a: PersonId, b: PersonId) -> bool {
        let Some(list) = self.tables.knows.get(a.index()) else {
            self.note_scan(0, 0, 0);
            return false;
        };
        let mut fast = 0usize;
        let mut examined = 0usize;
        let mut kept = 0usize;
        let mut found = false;
        let mut cursor = list.bulk().cursor();
        while let Some(e) = cursor.peek() {
            fast += 1;
            if e.id == b.raw() {
                found = true;
                break;
            }
            cursor.advance();
        }
        if !found {
            if let Some(tail) = list.tail() {
                let n = tail.published_len();
                for i in 0..n {
                    let e = tail.published(i);
                    if e.commit == BULK_TS {
                        fast += 1;
                        if e.id == b.raw() {
                            found = true;
                            break;
                        }
                    } else {
                        examined += 1;
                        if e.id == b.raw() && visible(e.commit, self.ts) {
                            kept = 1;
                            found = true;
                            break;
                        }
                    }
                }
            }
        }
        self.note_scan(fast, examined, kept);
        found
    }
}

/// Zero-allocation iterator over the visible entries of one index list,
/// ascending `(date, id)` — a lazy k-way merge of the immutable bulk
/// prefix (yielded without visibility checks) and the list's ladder runs
/// (at most one immutable sorted run per level; see [`IndexTail`]).
/// Versioned run entries are MVCC-filtered as they are reached, so an
/// early-exiting caller pays only for what it consumed. All accounting is
/// batched locally and flushed once, on drop.
pub struct DatedIter<'g> {
    prefix: Cursor<'g>,
    /// Decoded read-ahead for the prefix lane (prefix entries bypass MVCC,
    /// so only ids and dates are kept). Covers cursor ranks
    /// `[prefix.rank, prefix.rank + (pbuf_len - pbuf_pos))`: serving an
    /// entry advances `pbuf_pos` and the cursor together.
    pbuf: [Dated; FILL_DATED],
    pbuf_pos: u32,
    pbuf_len: u32,
    runs: [Cursor<'g>; MAX_RUNS],
    nruns: usize,
    /// Lane that yielded last (`nruns` = the prefix, [`NO_LANE`] = must
    /// rescan). Dates correlate with append order, so the winning lane
    /// usually wins again: draining it until its head crosses `bound`
    /// makes the common per-entry cost one comparison, not one per lane.
    cur: usize,
    /// Smallest head among the *other* lanes when `cur` was selected.
    bound: (SimTime, u64),
    ts: CommitTs,
    counters: &'g StoreCounters,
    fast: u64,
    examined: u64,
    kept: u64,
    /// Construction time when a trace was live (0 = untraced); the ladder
    /// merge becomes one `store.read.ladder_merge` span on drop.
    span_start: u64,
}

/// Lane-cache sentinel: no lane selected, rescan all heads.
const NO_LANE: usize = usize::MAX;

impl DatedIter<'_> {
    /// The prefix lane's head, served from the read-ahead buffer —
    /// refilled block-wise via [`Cursor::fill_dated`] so whole-list drains
    /// decode in tight per-block loops instead of entry-at-a-time.
    #[inline]
    fn prefix_head(&mut self) -> Option<Dated> {
        if self.pbuf_pos < self.pbuf_len {
            return Some(self.pbuf[self.pbuf_pos as usize]);
        }
        let n = self.prefix.fill_dated(&mut self.pbuf);
        if n == 0 {
            return None;
        }
        self.pbuf_pos = 0;
        self.pbuf_len = n;
        Some(self.pbuf[0])
    }

    /// Consume the entry `prefix_head` returned.
    #[inline]
    fn prefix_advance(&mut self) {
        self.pbuf_pos += 1;
        self.prefix.advance();
    }
}

impl Iterator for DatedIter<'_> {
    type Item = Dated;

    fn next(&mut self) -> Option<Dated> {
        // Lists with no ladder tail — the common case on a bulk-heavy
        // store — are a plain prefix scan: skip the lane machinery.
        if self.nruns == 0 {
            let (id, date) = self.prefix_head()?;
            self.prefix_advance();
            self.fast += 1;
            return Some((id, date));
        }
        loop {
            if self.cur == NO_LANE {
                // Rescan every lane head; the runner-up key becomes the
                // bound the winner may drain up to. The bulk prefix is
                // considered first and wins ties, matching the eager
                // merge (run-vs-run ties are identical `(date, id)`
                // tuples either way).
                let inf = (SimTime(i64::MAX), u64::MAX);
                let (mut best, mut best_key, mut second) = (NO_LANE, inf, inf);
                if let Some((id, date)) = self.prefix_head() {
                    best = self.nruns;
                    best_key = (date, id);
                }
                for i in 0..self.nruns {
                    if let Some(h) = self.runs[i].peek() {
                        let k = key(&h);
                        if best == NO_LANE || k < best_key {
                            second = best_key;
                            best = i;
                            best_key = k;
                        } else if k < second {
                            second = k;
                        }
                    }
                }
                if best == NO_LANE {
                    return None;
                }
                self.cur = best;
                self.bound = second;
            }
            if self.cur == self.nruns {
                // Draining the prefix lane: commit-free decode, no MVCC.
                match self.prefix_head() {
                    Some((id, date)) if (date, id) <= self.bound => {
                        self.prefix_advance();
                        self.fast += 1;
                        return Some((id, date));
                    }
                    _ => {
                        self.cur = NO_LANE;
                        continue;
                    }
                }
            }
            match self.runs[self.cur].peek() {
                Some(e) if key(&e) <= self.bound => {
                    self.runs[self.cur].advance();
                    if e.commit == BULK_TS {
                        self.fast += 1;
                        return Some((e.id, e.date));
                    }
                    self.examined += 1;
                    if visible(e.commit, self.ts) {
                        self.kept += 1;
                        return Some((e.id, e.date));
                    }
                    // Invisible: skip and keep draining this lane.
                }
                _ => self.cur = NO_LANE, // exhausted or crossed the bound
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Prefix entries are always visible; run entries may be filtered.
        let tail: usize = self.runs[..self.nruns].iter().map(|r| r.remaining()).sum();
        (self.prefix.remaining(), Some(self.prefix.remaining() + tail))
    }
}

impl Drop for DatedIter<'_> {
    fn drop(&mut self) {
        flush_scan_accounting(self.counters, self.fast, self.examined, self.kept);
        if self.span_start != 0 {
            trace::record_stage(&SPAN_LADDER_MERGE, self.span_start, trace::now_micros());
        }
    }
}

/// Flush an iterator's locally batched scan accounting (see
/// [`ReadView::note_scan`] for the lane semantics).
fn flush_scan_accounting(c: &StoreCounters, fast: u64, examined: u64, kept: u64) {
    if fast > 0 {
        c.read_fastlane_entries.add(fast);
    }
    if examined > 0 {
        c.versions_walked.add(examined);
        c.versions_skipped.add(examined - kept);
        tick_versions_walked(examined);
    }
}

/// Zero-allocation reverse scan (newest first) over the entries of one
/// date-ordered index list at or before a date bound — the borrowing form
/// of the "top-k most recent before date" primitive. Same lazy run-merge
/// structure and accounting split as [`DatedIter`], but every lane is
/// consumed from the back (each run was date-bounded at construction).
pub struct RecentWalk<'g> {
    /// Remaining bulk-prefix entries, already bounded to `<= max_date`.
    prefix: RevCursor<'g>,
    /// Remaining ladder runs, each bounded to `<= max_date`, non-empty at
    /// construction.
    runs: [RevCursor<'g>; MAX_RUNS],
    nruns: usize,
    /// Lane cache, mirrored from [`DatedIter`] (largest key wins here).
    cur: usize,
    /// Largest tail key among the *other* lanes when `cur` was selected.
    bound: (SimTime, u64),
    ts: CommitTs,
    counters: &'g StoreCounters,
    fast: u64,
    examined: u64,
    kept: u64,
    /// As in [`DatedIter`]: trace-span begin, 0 = untraced.
    span_start: u64,
}

impl Iterator for RecentWalk<'_> {
    type Item = Dated;

    fn next(&mut self) -> Option<Dated> {
        // No ladder tail (the common case): a pure backward prefix scan.
        if self.nruns == 0 {
            let (id, date) = self.prefix.peek_back_dated()?;
            self.prefix.advance_back();
            self.fast += 1;
            return Some((id, date));
        }
        loop {
            if self.cur == NO_LANE {
                let ninf = (SimTime(i64::MIN), 0u64);
                let (mut best, mut best_key, mut second) = (NO_LANE, ninf, ninf);
                if let Some((id, date)) = self.prefix.peek_back_dated() {
                    best = self.nruns;
                    best_key = (date, id);
                }
                for i in 0..self.nruns {
                    if let Some(t) = self.runs[i].peek_back() {
                        let k = key(&t);
                        if best == NO_LANE || k > best_key {
                            second = best_key;
                            best = i;
                            best_key = k;
                        } else if k > second {
                            second = k;
                        }
                    }
                }
                if best == NO_LANE {
                    return None;
                }
                self.cur = best;
                self.bound = second;
            }
            if self.cur == self.nruns {
                // Draining the prefix lane: commit-free decode, no MVCC.
                match self.prefix.peek_back_dated() {
                    Some((id, date)) if (date, id) >= self.bound => {
                        self.prefix.advance_back();
                        self.fast += 1;
                        return Some((id, date));
                    }
                    _ => {
                        self.cur = NO_LANE;
                        continue;
                    }
                }
            }
            match self.runs[self.cur].peek_back() {
                Some(e) if key(&e) >= self.bound => {
                    self.runs[self.cur].advance_back();
                    if e.commit == BULK_TS {
                        self.fast += 1;
                        return Some((e.id, e.date));
                    }
                    self.examined += 1;
                    if visible(e.commit, self.ts) {
                        self.kept += 1;
                        return Some((e.id, e.date));
                    }
                }
                _ => self.cur = NO_LANE,
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let tail: usize = self.runs[..self.nruns].iter().map(|r| r.remaining()).sum();
        (self.prefix.remaining(), Some(self.prefix.remaining() + tail))
    }
}

impl Drop for RecentWalk<'_> {
    fn drop(&mut self) {
        flush_scan_accounting(self.counters, self.fast, self.examined, self.kept);
        if self.span_start != 0 {
            trace::record_stage(&SPAN_RECENT_WALK, self.span_start, trace::now_micros());
        }
    }
}

impl Snapshot<'_> {
    fn view(&self) -> ReadView<'_> {
        ReadView { tables: &self.store.tables, ts: self.ts, counters: &self.store.counters }
    }

    /// The snapshot's commit timestamp.
    pub fn ts(&self) -> CommitTs {
        self.ts
    }

    /// Person by id, if visible (cloned row).
    pub fn person(&self, id: PersonId) -> Option<Person> {
        self.view().person_ref(id).cloned()
    }

    /// Forum by id, if visible (cloned row).
    pub fn forum(&self, id: ForumId) -> Option<Forum> {
        self.view().forum_ref(id).cloned()
    }

    /// Full message row (content included), if visible.
    pub fn message(&self, id: MessageId) -> Option<MessageRow> {
        self.view().message_ref(id).cloned()
    }

    /// Fixed-size message header, if visible.
    pub fn message_meta(&self, id: MessageId) -> Option<MessageMeta> {
        self.view().message_meta(id)
    }

    /// Tags of a message (empty if the message is not visible).
    pub fn message_tags(&self, id: MessageId) -> Vec<TagId> {
        self.view().message_ref(id).map(|row| row.tags.to_vec()).unwrap_or_default()
    }

    /// Upper bound of the person id space (for scans; slots may be empty).
    pub fn person_slots(&self) -> usize {
        self.store.tables.persons.high()
    }

    /// Upper bound of the forum id space.
    pub fn forum_slots(&self) -> usize {
        self.store.tables.forums.high()
    }

    /// Upper bound of the message id space.
    pub fn message_slots(&self) -> usize {
        self.store.tables.messages.high()
    }

    /// Friends of `id` with friendship dates, ascending by date.
    pub fn friends(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.store.tables.knows.get(id.index()))
    }

    /// Messages authored by `id`, ascending by creation date.
    pub fn messages_of(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.store.tables.person_messages.get(id.index()))
    }

    /// Posts (no comments) authored by `id`, ascending by creation date.
    pub fn posts_of(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.store.tables.person_posts.get(id.index()))
    }

    /// The up-to-`k` most recent messages of `id` created at or before
    /// `max_date`, newest first — the intended-plan primitive behind
    /// Q2/Q9/S2 ("top-20 most recent before date" with early termination
    /// on the date-ordered index).
    pub fn recent_messages_of(&self, id: PersonId, max_date: SimTime, k: usize) -> Vec<Dated> {
        self.view().recent_messages_of(id, max_date, k)
    }

    /// Posts in forum `id`, ascending by creation date.
    pub fn posts_in_forum(&self, id: ForumId) -> Vec<Dated> {
        self.view().collect(self.store.tables.forum_posts.get(id.index()))
    }

    /// Members of forum `id` with join dates.
    pub fn members_of(&self, id: ForumId) -> Vec<Dated> {
        self.view().collect(self.store.tables.forum_members.get(id.index()))
    }

    /// Forums `id` has joined, with join dates.
    pub fn forums_of(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.store.tables.person_forums.get(id.index()))
    }

    /// Forums `id` joined strictly after `min_date` (date-index range scan).
    pub fn forums_of_after(&self, id: PersonId, min_date: SimTime) -> Vec<Dated> {
        self.view().forums_of_after(id, min_date)
    }

    /// Direct replies to message `id`, ascending by date.
    pub fn replies_of(&self, id: MessageId) -> Vec<Dated> {
        self.view().collect(self.store.tables.message_replies.get(id.index()))
    }

    /// Likes on message `id` as `(person, like date)`.
    pub fn likes_of(&self, id: MessageId) -> Vec<Dated> {
        self.view().collect(self.store.tables.message_likes.get(id.index()))
    }

    /// Likes given by person `id` as `(message, like date)`.
    pub fn likes_by(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.store.tables.person_likes.get(id.index()))
    }

    /// Whether persons `a` and `b` are friends in this snapshot.
    pub fn are_friends(&self, a: PersonId, b: PersonId) -> bool {
        self.view().are_friends(a, b)
    }

    /// Storage statistics for the Table 8 experiment.
    pub fn storage_stats(&self) -> crate::stats::StorageStats {
        crate::stats::from_raw(self.store.tables.sizes())
    }
}

impl PinnedSnapshot<'_> {
    fn view(&self) -> ReadView<'_> {
        ReadView { tables: self.tables, ts: self.ts, counters: self.counters }
    }

    /// The snapshot's commit timestamp.
    pub fn ts(&self) -> CommitTs {
        self.ts
    }

    /// Person by id, if visible — borrowed from the store's segments.
    pub fn person_ref(&self, id: PersonId) -> Option<&Person> {
        self.view().person_ref(id)
    }

    /// Forum by id, if visible — borrowed from the store's segments.
    pub fn forum_ref(&self, id: ForumId) -> Option<&Forum> {
        self.view().forum_ref(id)
    }

    /// Full message row, if visible — borrowed from the store's segments.
    pub fn message_ref(&self, id: MessageId) -> Option<&MessageRow> {
        self.view().message_ref(id)
    }

    /// Person by id, if visible (cloned row).
    pub fn person(&self, id: PersonId) -> Option<Person> {
        self.person_ref(id).cloned()
    }

    /// Forum by id, if visible (cloned row).
    pub fn forum(&self, id: ForumId) -> Option<Forum> {
        self.forum_ref(id).cloned()
    }

    /// Full message row (content included), if visible (cloned row).
    pub fn message(&self, id: MessageId) -> Option<MessageRow> {
        self.message_ref(id).cloned()
    }

    /// Fixed-size message header, if visible.
    pub fn message_meta(&self, id: MessageId) -> Option<MessageMeta> {
        self.view().message_meta(id)
    }

    /// Tags of a message, borrowed (empty if the message is not visible).
    pub fn message_tags(&self, id: MessageId) -> &[TagId] {
        self.message_ref(id).map(|row| &row.tags[..]).unwrap_or(&[])
    }

    /// Upper bound of the person id space (for scans; slots may be empty).
    pub fn person_slots(&self) -> usize {
        self.tables.persons.high()
    }

    /// Upper bound of the forum id space.
    pub fn forum_slots(&self) -> usize {
        self.tables.forums.high()
    }

    /// Upper bound of the message id space.
    pub fn message_slots(&self) -> usize {
        self.tables.messages.high()
    }

    /// Friends of `id`, ascending by date — zero-allocation on bulk-only
    /// lists (a non-empty published tail is gathered once up front).
    pub fn friends_iter(&self, id: PersonId) -> DatedIter<'_> {
        self.view().iter(self.tables.knows.get(id.index()))
    }

    /// Messages authored by `id`, ascending by date — zero-allocation on
    /// bulk-only lists.
    pub fn messages_of_iter(&self, id: PersonId) -> DatedIter<'_> {
        self.view().iter(self.tables.person_messages.get(id.index()))
    }

    /// Posts (no comments) authored by `id`, ascending by date — the
    /// covering index behind the Q6/Q10 circle scans: every entry is a
    /// visible post, so consumers skip the per-message row probe that a
    /// `messages_of_iter` + reply filter would pay.
    pub fn posts_of_iter(&self, id: PersonId) -> DatedIter<'_> {
        self.view().iter(self.tables.person_posts.get(id.index()))
    }

    /// Posts in forum `id`, ascending by date — zero-allocation on
    /// bulk-only lists.
    pub fn posts_in_forum_iter(&self, id: ForumId) -> DatedIter<'_> {
        self.view().iter(self.tables.forum_posts.get(id.index()))
    }

    /// Members of forum `id` with join dates — zero-allocation on
    /// bulk-only lists.
    pub fn members_of_iter(&self, id: ForumId) -> DatedIter<'_> {
        self.view().iter(self.tables.forum_members.get(id.index()))
    }

    /// Forums `id` has joined, with join dates — zero-allocation on
    /// bulk-only lists.
    pub fn forums_of_iter(&self, id: PersonId) -> DatedIter<'_> {
        self.view().iter(self.tables.person_forums.get(id.index()))
    }

    /// Direct replies to message `id`, ascending by date — zero-allocation
    /// on bulk-only lists.
    pub fn replies_of_iter(&self, id: MessageId) -> DatedIter<'_> {
        self.view().iter(self.tables.message_replies.get(id.index()))
    }

    /// Likes on message `id` as `(person, like date)` — zero-allocation on
    /// bulk-only lists.
    pub fn likes_of_iter(&self, id: MessageId) -> DatedIter<'_> {
        self.view().iter(self.tables.message_likes.get(id.index()))
    }

    /// Likes given by person `id` as `(message, like date)` —
    /// zero-allocation on bulk-only lists.
    pub fn likes_by_iter(&self, id: PersonId) -> DatedIter<'_> {
        self.view().iter(self.tables.person_likes.get(id.index()))
    }

    /// The messages of `id` created at or before `max_date`, newest first —
    /// the borrowing form of [`PinnedSnapshot::recent_messages_of`]; bound
    /// it with `.take(k)` or a threshold-based early break.
    pub fn recent_messages_walk(&self, id: PersonId, max_date: SimTime) -> RecentWalk<'_> {
        self.view().recent_walk(self.tables.person_messages.get(id.index()), max_date)
    }

    /// Friends of `id` with friendship dates, ascending by date.
    pub fn friends(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.tables.knows.get(id.index()))
    }

    /// Messages authored by `id`, ascending by creation date.
    pub fn messages_of(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.tables.person_messages.get(id.index()))
    }

    /// Posts (no comments) authored by `id`, ascending by creation date.
    pub fn posts_of(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.tables.person_posts.get(id.index()))
    }

    /// The up-to-`k` most recent messages of `id` created at or before
    /// `max_date`, newest first.
    pub fn recent_messages_of(&self, id: PersonId, max_date: SimTime, k: usize) -> Vec<Dated> {
        self.view().recent_messages_of(id, max_date, k)
    }

    /// Posts in forum `id`, ascending by creation date.
    pub fn posts_in_forum(&self, id: ForumId) -> Vec<Dated> {
        self.view().collect(self.tables.forum_posts.get(id.index()))
    }

    /// Members of forum `id` with join dates.
    pub fn members_of(&self, id: ForumId) -> Vec<Dated> {
        self.view().collect(self.tables.forum_members.get(id.index()))
    }

    /// Forums `id` has joined, with join dates.
    pub fn forums_of(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.tables.person_forums.get(id.index()))
    }

    /// Forums `id` joined strictly after `min_date` (date-index range scan).
    pub fn forums_of_after(&self, id: PersonId, min_date: SimTime) -> Vec<Dated> {
        self.view().forums_of_after(id, min_date)
    }

    /// Direct replies to message `id`, ascending by date.
    pub fn replies_of(&self, id: MessageId) -> Vec<Dated> {
        self.view().collect(self.tables.message_replies.get(id.index()))
    }

    /// Likes on message `id` as `(person, like date)`.
    pub fn likes_of(&self, id: MessageId) -> Vec<Dated> {
        self.view().collect(self.tables.message_likes.get(id.index()))
    }

    /// Likes given by person `id` as `(message, like date)`.
    pub fn likes_by(&self, id: PersonId) -> Vec<Dated> {
        self.view().collect(self.tables.person_likes.get(id.index()))
    }

    /// Whether persons `a` and `b` are friends in this snapshot.
    pub fn are_friends(&self, a: PersonId, b: PersonId) -> bool {
        self.view().are_friends(a, b)
    }

    /// Storage statistics for the Table 8 experiment.
    pub fn storage_stats(&self) -> crate::stats::StorageStats {
        crate::stats::from_raw(self.tables.sizes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snb_core::dict::names::Gender;
    use snb_core::schema::ForumKind;

    fn person(id: u64, t: i64) -> Person {
        Person {
            id: PersonId(id),
            first_name: "Karl",
            last_name: "Muller",
            gender: Gender::Male,
            birthday: SimTime(0),
            creation_date: SimTime(t),
            city: 0,
            country: 0,
            browser: "Chrome",
            location_ip: "1.2.3.4".into(),
            languages: vec!["de"],
            emails: vec![],
            interests: vec![TagId(1)],
            study_at: None,
            work_at: vec![],
        }
    }

    fn forum(id: u64, moderator: u64, t: i64) -> Forum {
        Forum {
            id: ForumId(id),
            title: "wall".into(),
            moderator: PersonId(moderator),
            creation_date: SimTime(t),
            tags: vec![TagId(1)],
            kind: ForumKind::Wall,
        }
    }

    fn post(id: u64, author: u64, forum: u64, t: i64) -> Post {
        Post {
            id: MessageId(id),
            author: PersonId(author),
            forum: ForumId(forum),
            creation_date: SimTime(t),
            content: "hello".into(),
            image_file: None,
            tags: vec![TagId(1)],
            language: "de",
            country: 0,
        }
    }

    #[test]
    fn segvec_locate_covers_segment_boundaries() {
        type V = SegVec<u64, 10, 22>;
        // Segment k covers [((1<<k)-1)<<10, ((1<<(k+1))-1)<<10).
        assert_eq!(V::locate(0), (0, 0));
        assert_eq!(V::locate(1023), (0, 1023));
        assert_eq!(V::locate(1024), (1, 0));
        assert_eq!(V::locate(3071), (1, 2047));
        assert_eq!(V::locate(3072), (2, 0));
        assert_eq!(V::locate(7167), (2, 4095));
        assert_eq!(V::locate(7168), (3, 0));
        let v: V = SegVec::new();
        assert!(v.get(0).is_none());
        v.install(3000, 42);
        assert_eq!(v.get(3000), Some(&42));
        assert!(v.get(2999).is_none(), "bound raised but slot not installed");
        assert_eq!(v.high(), 3001);
    }

    #[test]
    fn index_list_tail_publication_and_merge() {
        let list = IndexList::from_bulk(vec![
            Entry { date: SimTime(10), id: 0, commit: BULK_TS },
            Entry { date: SimTime(30), id: 1, commit: BULK_TS },
        ]);
        assert_eq!(list.bulk().len(), 2);
        // Appends never disturb the immutable bulk prefix: a top-up bulk
        // entry, a committed entry, and a committed entry dated *inside*
        // the prefix all land in the published tail.
        list.push(Entry { date: SimTime(20), id: 2, commit: BULK_TS });
        list.push(Entry { date: SimTime(40), id: 3, commit: 5 });
        list.push(Entry { date: SimTime(15), id: 4, commit: 6 });
        assert_eq!(list.bulk().len(), 2);
        assert_eq!(list.tail_len(), 3);
        assert_eq!(list.len(), 5);

        // At ts 5 the commit-6 entry is invisible; gather sorts the rest.
        let mut out = Vec::new();
        let (fast, examined, kept) = list.gather_tail(5, |_| true, &mut out);
        assert_eq!((fast, examined, kept), (1, 2, 1));
        assert_eq!(out.iter().map(|e| e.id).collect::<Vec<_>>(), vec![2, 3]);

        // At ts 6 all three are visible, sorted by (date, id).
        out.clear();
        let (fast, examined, kept) = list.gather_tail(6, |_| true, &mut out);
        assert_eq!((fast, examined, kept), (1, 2, 2));
        assert_eq!(out.iter().map(|e| e.id).collect::<Vec<_>>(), vec![4, 2, 3]);
    }

    #[test]
    fn tail_merge_ladder_decomposes_every_prefix() {
        // Dates descend so every ladder merge has real work to do, and
        // every historical prefix decomposition must stay intact: a
        // reader pinned at length p keeps using p's runs even after the
        // ladder has carried past them.
        let tail = IndexTail::new();
        let total = 37usize; // crosses 32, exercising a 5-level carry
        for i in 0..total {
            tail.push(Entry {
                date: SimTime((total - i) as i64),
                id: i as u64,
                commit: (i + 1) as CommitTs,
            });
            let p = tail.published_len();
            assert_eq!(p, i + 1);
            for q in 1..=p {
                let mut lanes = [None; MAX_RUNS];
                let n = tail.decompose(q, &mut lanes);
                // One run per set bit at or above the base level, one
                // raw single lane per sub-base entry.
                let base_mask = (1usize << LADDER_BASE) - 1;
                let expect = (q & !base_mask).count_ones() as usize + (q & base_mask);
                assert_eq!(n, expect, "lane count for {q}");
                // Decode every lane (single raw slot or compact run) and
                // check sortedness and exact coverage of the first q
                // entries.
                let decoded: Vec<Vec<Entry>> = lanes[..n]
                    .iter()
                    .map(|lane| match lane.expect("decompose fills the first n lanes") {
                        LaneSrc::Single(e) => vec![*e],
                        LaneSrc::Run(r) => r.to_vec(),
                    })
                    .collect();
                let mut covered = 0usize;
                for r in &decoded {
                    assert!(r.windows(2).all(|w| key(&w[0]) <= key(&w[1])), "run unsorted");
                    covered += r.len();
                }
                assert_eq!(covered, q, "decomposition of {q} must cover it exactly");
                // Together the runs hold exactly the first q raw entries.
                let mut ids: Vec<u64> =
                    decoded.iter().flat_map(|r| r.iter().map(|e| e.id)).collect();
                ids.sort_unstable();
                assert_eq!(ids, (0..q as u64).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn insert_and_read_roundtrip() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        s.apply(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        s.apply(&UpdateOp::AddFriendship(Knows {
            a: PersonId(0),
            b: PersonId(1),
            creation_date: SimTime(30),
        }))
        .unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.person(PersonId(0)).unwrap().creation_date, SimTime(10));
        assert_eq!(snap.friends(PersonId(0)).len(), 1);
        assert!(snap.are_friends(PersonId(1), PersonId(0)));
    }

    #[test]
    fn snapshots_do_not_see_later_commits() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        let snap = s.snapshot();
        s.apply(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        assert!(snap.person(PersonId(1)).is_none(), "later commit leaked into snapshot");
        assert!(s.snapshot().person(PersonId(1)).is_some());
    }

    #[test]
    fn constraint_violations_are_rejected() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        // Duplicate person.
        assert!(matches!(
            s.apply(&UpdateOp::AddPerson(person(0, 10))),
            Err(SnbError::Constraint(_))
        ));
        // Friendship with missing endpoint.
        assert!(matches!(
            s.apply(&UpdateOp::AddFriendship(Knows {
                a: PersonId(0),
                b: PersonId(9),
                creation_date: SimTime(1),
            })),
            Err(SnbError::NotFound { .. })
        ));
        // Self-friendship.
        assert!(s
            .apply(&UpdateOp::AddFriendship(Knows {
                a: PersonId(0),
                b: PersonId(0),
                creation_date: SimTime(1),
            }))
            .is_err());
        // Post into missing forum.
        assert!(s.apply(&UpdateOp::AddPost(post(0, 0, 5, 50))).is_err());
    }

    #[test]
    fn counters_track_commits_conflicts_snapshots_and_walks() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        s.apply(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        // Conflict: duplicate person.
        let _ = s.apply(&UpdateOp::AddPerson(person(0, 10)));
        assert_eq!(s.counters().commits.get(), 2);
        assert_eq!(s.counters().conflicts.get(), 1);

        let early = s.snapshot();
        s.apply(&UpdateOp::AddFriendship(Knows {
            a: PersonId(0),
            b: PersonId(1),
            creation_date: SimTime(30),
        }))
        .unwrap();
        assert_eq!(s.counters().snapshots.get(), 1);

        // The friendship committed after `early`: walking it is one
        // examined, one skipped version.
        let walked_before = s.counters().versions_walked.get();
        let skipped_before = s.counters().versions_skipped.get();
        assert!(early.friends(PersonId(0)).is_empty());
        assert_eq!(s.counters().versions_walked.get(), walked_before + 1);
        assert_eq!(s.counters().versions_skipped.get(), skipped_before + 1);

        // A fresh snapshot sees it: examined but not skipped.
        let now = s.snapshot();
        assert_eq!(now.friends(PersonId(0)).len(), 1);
        assert_eq!(s.counters().versions_skipped.get(), skipped_before + 1);

        // Point probes count index probes via the profile scope.
        let profile = std::sync::Arc::new(snb_obs::QueryProfile::new());
        {
            let _guard = snb_obs::QueryProfile::enter(std::sync::Arc::clone(&profile));
            assert!(now.person(PersonId(0)).is_some());
            now.friends(PersonId(0));
        }
        let snap = profile.snapshot();
        assert_eq!(snap.index_probes, 1);
        assert_eq!(snap.versions_walked, 2);
    }

    #[test]
    fn wal_counters_track_appends_and_bytes() {
        let path =
            std::env::temp_dir().join(format!("snb-graph-counters-{}.wal", std::process::id()));
        let s = Store::with_wal(&path).unwrap();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        s.apply(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        s.flush_wal().unwrap();
        assert_eq!(s.counters().wal_appends.get(), 2);
        let logged = s.counters().wal_bytes.get();
        drop(s); // the clean close trims the preallocated tail
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert_eq!(logged + 8, on_disk, "counted bytes + file magic must match the file size");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_policy_fsyncs_before_acknowledging() {
        let path =
            std::env::temp_dir().join(format!("snb-graph-durable-{}.wal", std::process::id()));
        let s = Store::with_wal_policy(&path, crate::wal::SyncPolicy::EveryCommit).unwrap();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        s.apply(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        // One fsync per acknowledged commit, latency recorded, no errors.
        assert!(s.counters().wal_fsyncs.get() >= 2);
        assert_eq!(s.counters().wal_group_size.get(), 2);
        assert!(s.counters().wal_fsync_micros.count() >= 2);
        assert_eq!(s.counters().wal_sync_errors.get(), 0);
        drop(s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn pipelined_apply_defers_the_durability_barrier() {
        let path =
            std::env::temp_dir().join(format!("snb-graph-pipeline-{}.wal", std::process::id()));
        let s = Store::with_wal_policy(
            &path,
            crate::wal::SyncPolicy::GroupCommit {
                max_batch: 64,
                max_delay: std::time::Duration::ZERO,
            },
        )
        .unwrap();
        // Phase one only: both commits visible, neither necessarily synced.
        let s0 = s.apply_async(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        let s1 = s.apply_async(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        assert_eq!((s0, s1), (Some(1), Some(2)));
        assert!(s.snapshot().person(PersonId(1)).is_some(), "visible before durable");
        // One barrier on the newest seq covers the whole window.
        s.wait_durable(s1).unwrap();
        assert!(s.counters().wal_fsyncs.get() >= 1);
        assert_eq!(s.counters().wal_group_size.get(), 2, "horizon covers both records");
        drop(s);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parallel_bulk_load_matches_serial_indexes() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(150).activity(0.4))
                .unwrap();
        let serial = Store::new();
        serial.bulk_load_until_threads(&ds, ds.config.end, 1);
        let parallel = Store::new();
        parallel.bulk_load_until_threads(&ds, ds.config.end, 4);
        let ss = serial.snapshot();
        let sp = parallel.snapshot();
        assert_eq!(ss.person_slots(), sp.person_slots());
        assert_eq!(ss.forum_slots(), sp.forum_slots());
        assert_eq!(ss.message_slots(), sp.message_slots());
        for i in 0..ss.person_slots() as u64 {
            let p = PersonId(i);
            assert_eq!(ss.friends(p), sp.friends(p), "friends of {p}");
            assert_eq!(ss.messages_of(p), sp.messages_of(p), "messages of {p}");
            assert_eq!(ss.forums_of(p), sp.forums_of(p), "forums of {p}");
            assert_eq!(ss.likes_by(p), sp.likes_by(p), "likes by {p}");
        }
        for i in 0..ss.message_slots() as u64 {
            let m = MessageId(i);
            assert_eq!(ss.replies_of(m), sp.replies_of(m), "replies of {m}");
            assert_eq!(ss.likes_of(m), sp.likes_of(m), "likes of {m}");
            let (a, b) = (ss.message(m), sp.message(m));
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "row of {m}");
        }
        for i in 0..ss.forum_slots() as u64 {
            let f = ForumId(i);
            assert_eq!(ss.posts_in_forum(f), sp.posts_in_forum(f), "posts in {f}");
            assert_eq!(ss.members_of(f), sp.members_of(f), "members of {f}");
        }
    }

    #[test]
    fn pinned_snapshot_matches_unpinned_reads() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(120).activity(0.4))
                .unwrap();
        let s = Store::new();
        s.bulk_load(&ds);
        // Mix in post-bulk commits so both lanes are exercised.
        for u in ds.update_stream().iter().take(200) {
            s.apply(&u.op).unwrap();
        }
        let snap = s.snapshot();
        let pinned = s.pinned();
        assert_eq!(snap.ts(), pinned.ts());
        for i in 0..snap.person_slots() as u64 {
            let p = PersonId(i);
            assert_eq!(snap.friends(p), pinned.friends(p));
            assert_eq!(snap.friends(p), pinned.friends_iter(p).collect::<Vec<_>>());
            assert_eq!(snap.messages_of(p), pinned.messages_of_iter(p).collect::<Vec<_>>());
            let recent = snap.recent_messages_of(p, SimTime(i64::MAX), 5);
            assert_eq!(
                recent,
                pinned.recent_messages_walk(p, SimTime(i64::MAX)).take(5).collect::<Vec<_>>()
            );
            assert_eq!(
                format!("{:?}", snap.person(p)),
                format!("{:?}", pinned.person_ref(p).cloned())
            );
        }
        assert!(s.counters().read_latchfree.get() >= 1);
        assert!(s.counters().read_fastlane_entries.get() > 0, "bulk prefix must be exercised");
    }

    #[test]
    fn pinned_reader_does_not_block_apply() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        let pin = s.pinned();
        // Under the old guard-holding pin this exact sequence deadlocked
        // (writer waits on the read guard held by `pin` on this thread).
        s.apply(&UpdateOp::AddPerson(person(1, 20))).unwrap();
        assert!(pin.person_ref(PersonId(1)).is_none(), "pin must stay frozen at its ts");
        assert!(pin.person_ref(PersonId(0)).is_some());
        assert!(s.pinned().person_ref(PersonId(1)).is_some());
        assert_eq!(s.counters().read_latchfree.get(), 2);
    }

    #[test]
    fn fastlane_entries_skip_version_accounting() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(80).activity(0.3))
                .unwrap();
        let s = Store::new();
        s.load_full(&ds);
        let pinned = s.pinned();
        let walked_before = s.counters().versions_walked.get();
        let fast_before = s.counters().read_fastlane_entries.get();
        let mut total = 0usize;
        for i in 0..pinned.person_slots() as u64 {
            total += pinned.friends_iter(PersonId(i)).count();
        }
        assert!(total > 0);
        // A purely bulk-loaded store serves everything from the fast lane.
        assert_eq!(s.counters().versions_walked.get(), walked_before);
        assert_eq!(s.counters().read_fastlane_entries.get(), fast_before + total as u64);
    }

    #[test]
    fn stage_sums_reconcile_with_measured_apply_latency() {
        // The write-pipeline stage histograms claim to tile `Store::apply`
        // end-to-end; hold them to it: the sum of all stage sums must be
        // within 10% of the wall-clock time spent inside `apply`.
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 1))).unwrap();
        s.apply(&UpdateOp::AddForum(forum(0, 0, 5))).unwrap();
        let mut ops = Vec::new();
        for i in 1..4_000u64 {
            ops.push(UpdateOp::AddPerson(person(i, i as i64)));
            ops.push(UpdateOp::AddPost(post(i, i, 0, i as i64 + 1)));
        }
        let t0 = std::time::Instant::now();
        for op in &ops {
            s.apply(op).unwrap();
        }
        let wall_nanos = t0.elapsed().as_nanos() as f64;
        let stage_sum: u64 = s.counters().stages.named().iter().map(|(_, h)| h.sum()).sum();
        let ratio = stage_sum as f64 / wall_nanos;
        assert!(
            (0.90..=1.05).contains(&ratio),
            "stage sums ({stage_sum}ns) must reconcile with measured apply wall time \
             ({wall_nanos:.0}ns); ratio {ratio:.3}"
        );
        // And every committed op contributed to every stage.
        for (name, h) in s.counters().stages.named() {
            assert_eq!(h.count(), s.counters().commits.get(), "{name} must sample every commit");
        }
    }

    #[test]
    fn failed_transactions_leave_no_trace() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 10))).unwrap();
        let before = s.snapshot().ts();
        let _ = s.apply(&UpdateOp::AddPost(post(0, 0, 5, 50)));
        let snap = s.snapshot();
        assert_eq!(snap.ts(), before, "failed txn must not advance the clock");
        assert!(snap.message(MessageId(0)).is_none());
    }

    #[test]
    fn message_indexes_are_date_ordered() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 1))).unwrap();
        s.apply(&UpdateOp::AddForum(forum(0, 0, 2))).unwrap();
        // Insert posts out of date order; scans must observe sorted order.
        s.apply(&UpdateOp::AddPost(post(1, 0, 0, 50))).unwrap();
        s.apply(&UpdateOp::AddPost(post(0, 0, 0, 30))).unwrap();
        s.apply(&UpdateOp::AddPost(post(2, 0, 0, 40))).unwrap();
        let snap = s.snapshot();
        let dates: Vec<i64> =
            snap.messages_of(PersonId(0)).iter().map(|(_, d)| d.millis()).collect();
        assert_eq!(dates, vec![30, 40, 50]);
        let recent: Vec<u64> = snap
            .recent_messages_of(PersonId(0), SimTime(i64::MAX), 10)
            .iter()
            .map(|&(m, _)| m)
            .collect();
        assert_eq!(recent, vec![1, 2, 0]);
    }

    #[test]
    fn comment_and_like_indexes() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 1))).unwrap();
        s.apply(&UpdateOp::AddForum(forum(0, 0, 2))).unwrap();
        s.apply(&UpdateOp::AddPost(post(0, 0, 0, 10))).unwrap();
        s.apply(&UpdateOp::AddComment(Comment {
            id: MessageId(1),
            author: PersonId(0),
            creation_date: SimTime(20),
            content: "re".into(),
            reply_to: MessageId(0),
            root_post: MessageId(0),
            forum: ForumId(0),
            tags: vec![],
            country: 0,
        }))
        .unwrap();
        s.apply(&UpdateOp::AddPostLike(Like {
            person: PersonId(0),
            message: MessageId(0),
            creation_date: SimTime(30),
        }))
        .unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.replies_of(MessageId(0)).len(), 1);
        assert_eq!(snap.likes_of(MessageId(0)).first(), Some(&(0, SimTime(30))));
        assert_eq!(snap.likes_by(PersonId(0)).first(), Some(&(0, SimTime(30))));
        let msg = snap.message(MessageId(1)).unwrap();
        assert!(msg.is_comment());
        assert_eq!(msg.reply_info, Some((MessageId(0), MessageId(0))));
    }

    #[test]
    fn comment_requires_existing_parent() {
        let s = Store::new();
        s.apply(&UpdateOp::AddPerson(person(0, 1))).unwrap();
        s.apply(&UpdateOp::AddForum(forum(0, 0, 2))).unwrap();
        let c = Comment {
            id: MessageId(5),
            author: PersonId(0),
            creation_date: SimTime(20),
            content: "re".into(),
            reply_to: MessageId(99),
            root_post: MessageId(99),
            forum: ForumId(0),
            tags: vec![],
            country: 0,
        };
        assert!(s.apply(&UpdateOp::AddComment(c)).is_err());
    }

    #[test]
    fn bulk_load_is_visible_to_all_snapshots() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(100).activity(0.3))
                .unwrap();
        let s = Store::new();
        s.bulk_load(&ds);
        let snap = s.snapshot();
        let bulk_persons =
            ds.persons.iter().filter(|p| p.creation_date <= ds.config.update_split).count();
        let visible_persons =
            (0..snap.person_slots()).filter(|&i| snap.person(PersonId(i as u64)).is_some()).count();
        assert_eq!(visible_persons, bulk_persons);
    }

    #[test]
    fn update_stream_replays_cleanly_after_bulk_load() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(200).activity(0.3))
                .unwrap();
        let s = Store::new();
        s.bulk_load(&ds);
        let stream = ds.update_stream();
        assert!(!stream.is_empty());
        for u in &stream {
            s.apply(&u.op).unwrap_or_else(|e| panic!("replay failed on {}: {e}", u.op.name()));
        }
        let snap = s.snapshot();
        let visible_persons =
            (0..snap.person_slots()).filter(|&i| snap.person(PersonId(i as u64)).is_some()).count();
        assert_eq!(visible_persons, ds.persons.len());
        let visible_msgs = (0..snap.message_slots())
            .filter(|&i| snap.message(MessageId(i as u64)).is_some())
            .count();
        assert_eq!(visible_msgs, ds.message_count());
    }
}
