//! Storage-size accounting (the paper's Table 8 reports "the sizes in MB of
//! allocated database pages for \[the\] three largest tables and their largest
//! indices" in the Virtuoso SF300 run; we report the in-memory equivalent).

use std::fmt;

/// Raw per-table sizes gathered from the store internals.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct RawSizes {
    pub persons: usize,
    pub person_bytes: usize,
    pub forums: usize,
    pub forum_bytes: usize,
    pub messages: usize,
    pub message_bytes: usize,
    pub knows_entries: usize,
    pub knows_bytes: usize,
    pub likes_entries: usize,
    pub likes_bytes: usize,
    pub membership_entries: usize,
    pub membership_bytes: usize,
    pub person_message_bytes: usize,
    pub forum_post_bytes: usize,
    pub reply_bytes: usize,
}

/// One table (or index) size line.
#[derive(Debug, Clone)]
pub struct TableSize {
    /// Table name.
    pub name: &'static str,
    /// Row / entry count.
    pub rows: usize,
    /// Estimated resident bytes.
    pub bytes: usize,
    /// The table's largest index: `(name, bytes)`.
    pub largest_index: (&'static str, usize),
}

/// Store-wide storage statistics.
#[derive(Debug, Clone)]
pub struct StorageStats {
    /// Per-table sizes, largest first.
    pub tables: Vec<TableSize>,
    /// Sum of all table and index bytes.
    pub total_bytes: usize,
}

impl StorageStats {
    /// The `n` largest tables (Table 8 reports three).
    pub fn largest(&self, n: usize) -> &[TableSize] {
        &self.tables[..n.min(self.tables.len())]
    }
}

impl fmt::Display for StorageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<16} {:>12} {:>12}  largest index", "table", "rows", "MB")?;
        for t in &self.tables {
            writeln!(
                f,
                "{:<16} {:>12} {:>12.2}  {} ({:.2} MB)",
                t.name,
                t.rows,
                t.bytes as f64 / 1e6,
                t.largest_index.0,
                t.largest_index.1 as f64 / 1e6,
            )?;
        }
        write!(f, "total {:.2} MB", self.total_bytes as f64 / 1e6)
    }
}

pub(crate) fn from_raw(raw: RawSizes) -> StorageStats {
    let mut tables = vec![
        TableSize {
            name: "message",
            rows: raw.messages,
            bytes: raw.message_bytes,
            largest_index: ("person_messages(date)", raw.person_message_bytes),
        },
        TableSize {
            name: "likes",
            rows: raw.likes_entries,
            bytes: raw.likes_bytes,
            largest_index: ("message_likes(date)", raw.likes_bytes / 2),
        },
        TableSize {
            name: "forum_person",
            rows: raw.membership_entries,
            bytes: raw.membership_bytes,
            largest_index: ("forum_members(join)", raw.membership_bytes / 2),
        },
        TableSize {
            name: "knows",
            rows: raw.knows_entries,
            bytes: raw.knows_bytes,
            largest_index: ("knows(date)", raw.knows_bytes),
        },
        TableSize {
            name: "person",
            rows: raw.persons,
            bytes: raw.person_bytes,
            largest_index: ("person(pk)", raw.persons * 16),
        },
        TableSize {
            name: "forum",
            rows: raw.forums,
            bytes: raw.forum_bytes,
            largest_index: ("forum_posts(date)", raw.forum_post_bytes),
        },
    ];
    tables.sort_by_key(|t| std::cmp::Reverse(t.bytes));
    let total_bytes =
        tables.iter().map(|t| t.bytes + t.largest_index.1).sum::<usize>() + raw.reply_bytes;
    StorageStats { tables, total_bytes }
}
