//! Storage-size accounting (the paper's Table 8 reports "the sizes in MB of
//! allocated database pages for \[the\] three largest tables and their largest
//! indices" in the Virtuoso SF300 run; we report the in-memory equivalent).
//!
//! Since the compact-run format landed, index bytes are *measured* (anchor
//! arrays + delta streams + raw tail slots), not estimated from entry
//! counts — and every snapshot also carries the uncompressed-oracle cost of
//! the same runs so compression ratios are first-class, reportable numbers.

use std::fmt;

/// Memory footprint of one index table (or a sum of them): what the
/// compact runs actually hold resident, next to what the same runs cost in
/// the pre-compact 24-byte-entry format.
#[derive(Debug, Default, Clone, Copy)]
pub struct IndexFootprint {
    /// Logical entries (bulk prefix + published tail, each counted once).
    pub entries: usize,
    /// Compact run bytes: bulk prefix + every ladder run (anchors +
    /// delta streams).
    pub run_bytes: usize,
    /// Raw tail slot bytes (kept uncompressed so in-place appends stay
    /// lock-free; identical in both formats).
    pub tail_bytes: usize,
    /// The same runs' cost as plain 24-byte entries (bulk + ladder
    /// copies) — the uncompressed baseline the compression ratio is
    /// measured against.
    pub oracle_run_bytes: usize,
}

impl IndexFootprint {
    /// Resident bytes of this index (runs + raw tail).
    pub fn bytes(&self) -> usize {
        self.run_bytes + self.tail_bytes
    }

    /// Uncompressed-run bytes over compact-run bytes (1.0 = no win).
    pub fn compression_ratio(&self) -> f64 {
        if self.run_bytes == 0 {
            1.0
        } else {
            self.oracle_run_bytes as f64 / self.run_bytes as f64
        }
    }

    pub(crate) fn merge(&mut self, other: IndexFootprint) {
        self.entries += other.entries;
        self.run_bytes += other.run_bytes;
        self.tail_bytes += other.tail_bytes;
        self.oracle_run_bytes += other.oracle_run_bytes;
    }
}

/// Raw per-table sizes gathered from the store internals.
#[derive(Debug, Default, Clone)]
pub(crate) struct RawSizes {
    pub persons: usize,
    pub person_bytes: usize,
    pub forums: usize,
    pub forum_bytes: usize,
    pub messages: usize,
    pub message_bytes: usize,
    /// `(index name, footprint)` for each of the nine index tables.
    pub per_index: Vec<(&'static str, IndexFootprint)>,
}

/// One table (or index) size line.
#[derive(Debug, Clone)]
pub struct TableSize {
    /// Table name.
    pub name: &'static str,
    /// Row / entry count.
    pub rows: usize,
    /// Estimated resident bytes.
    pub bytes: usize,
    /// The table's largest index: `(name, bytes)`.
    pub largest_index: (&'static str, usize),
}

/// Store-wide storage statistics.
#[derive(Debug, Clone)]
pub struct StorageStats {
    /// Per-table sizes, largest first.
    pub tables: Vec<TableSize>,
    /// Sum of all table and index bytes.
    pub total_bytes: usize,
    /// Measured per-index footprints (compact runs vs the uncompressed
    /// oracle), by index name.
    pub per_index: Vec<(&'static str, IndexFootprint)>,
    /// All nine index tables folded together.
    pub index: IndexFootprint,
    /// Entity-row heap bytes (persons + forums + messages, including
    /// string content).
    pub entity_bytes: usize,
    /// Visible person rows.
    pub persons: usize,
    /// Visible message rows.
    pub messages: usize,
}

impl StorageStats {
    /// The `n` largest tables (Table 8 reports three).
    pub fn largest(&self, n: usize) -> &[TableSize] {
        &self.tables[..n.min(self.tables.len())]
    }

    /// Resident bytes per person: everything the store holds (entities +
    /// index runs + raw tails) over the person count.
    pub fn bytes_per_person(&self) -> f64 {
        if self.persons == 0 {
            return 0.0;
        }
        (self.entity_bytes + self.index.bytes()) as f64 / self.persons as f64
    }

    /// Resident bytes per message: the message rows plus their primary
    /// date index (`person_messages`) over the message count.
    pub fn bytes_per_message(&self) -> f64 {
        if self.messages == 0 {
            return 0.0;
        }
        let row_bytes = self.tables.iter().find(|t| t.name == "message").map_or(0, |t| t.bytes);
        let idx_bytes = self
            .per_index
            .iter()
            .find(|(n, _)| *n == "person_messages")
            .map_or(0, |(_, f)| f.bytes());
        (row_bytes + idx_bytes) as f64 / self.messages as f64
    }

    /// Store-wide index compression ratio (uncompressed runs over compact
    /// runs).
    pub fn compression_ratio(&self) -> f64 {
        self.index.compression_ratio()
    }
}

impl fmt::Display for StorageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<16} {:>12} {:>12}  largest index", "table", "rows", "MB")?;
        for t in &self.tables {
            writeln!(
                f,
                "{:<16} {:>12} {:>12.2}  {} ({:.2} MB)",
                t.name,
                t.rows,
                t.bytes as f64 / 1e6,
                t.largest_index.0,
                t.largest_index.1 as f64 / 1e6,
            )?;
        }
        writeln!(f, "total {:.2} MB", self.total_bytes as f64 / 1e6)?;
        write!(
            f,
            "index runs {:.2} MB compact vs {:.2} MB raw ({:.2}x); {:.0} B/person, {:.0} B/message",
            self.index.run_bytes as f64 / 1e6,
            self.index.oracle_run_bytes as f64 / 1e6,
            self.compression_ratio(),
            self.bytes_per_person(),
            self.bytes_per_message(),
        )
    }
}

pub(crate) fn from_raw(raw: RawSizes) -> StorageStats {
    let foot = |name: &str| -> IndexFootprint {
        raw.per_index.iter().find(|(n, _)| *n == name).map(|&(_, f)| f).unwrap_or_default()
    };
    let knows = foot("knows");
    let person_messages = foot("person_messages");
    let forum_posts = foot("forum_posts");
    let forum_members = foot("forum_members");
    let person_forums = foot("person_forums");
    let message_replies = foot("message_replies");
    let message_likes = foot("message_likes");
    let person_likes = foot("person_likes");

    let likes_bytes = message_likes.bytes() + person_likes.bytes();
    let membership_bytes = forum_members.bytes() + person_forums.bytes();
    let mut tables = vec![
        TableSize {
            name: "message",
            rows: raw.messages,
            bytes: raw.message_bytes,
            largest_index: ("person_messages(date)", person_messages.bytes()),
        },
        TableSize {
            name: "likes",
            rows: message_likes.entries,
            bytes: likes_bytes,
            largest_index: ("message_likes(date)", message_likes.bytes()),
        },
        TableSize {
            name: "forum_person",
            rows: forum_members.entries,
            bytes: membership_bytes,
            largest_index: ("forum_members(join)", forum_members.bytes()),
        },
        TableSize {
            name: "knows",
            rows: knows.entries,
            bytes: knows.bytes(),
            largest_index: ("knows(date)", knows.bytes()),
        },
        TableSize {
            name: "person",
            rows: raw.persons,
            bytes: raw.person_bytes,
            largest_index: ("person(pk)", raw.persons * 16),
        },
        TableSize {
            name: "forum",
            rows: raw.forums,
            bytes: raw.forum_bytes,
            largest_index: ("forum_posts(date)", forum_posts.bytes()),
        },
    ];
    tables.sort_by_key(|t| std::cmp::Reverse(t.bytes));
    let total_bytes =
        tables.iter().map(|t| t.bytes + t.largest_index.1).sum::<usize>() + message_replies.bytes();
    let mut index = IndexFootprint::default();
    for &(_, f) in &raw.per_index {
        index.merge(f);
    }
    StorageStats {
        tables,
        total_bytes,
        per_index: raw.per_index,
        index,
        entity_bytes: raw.person_bytes + raw.forum_bytes + raw.message_bytes,
        persons: raw.persons,
        messages: raw.messages,
    }
}
