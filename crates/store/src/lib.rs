//! # snb-store
//!
//! The transactional in-memory property-graph store the benchmark runs
//! against — the substrate standing in for the paper's closed-source
//! systems under test. Insert-only MVCC gives serializable snapshot reads
//! (see [`mvcc`]), reads are latch-free (pinned snapshots hold no guard;
//! index tails are published with release/acquire atomics) while writers
//! commit in parallel through striped per-entity locks and publish
//! out-of-order behind a visibility watermark (see [`graph`] and
//! DESIGN.md "Concurrency model"), a group-commit write-ahead log gives
//! redo durability with
//! tail-truncating crash recovery (see [`wal`]), bulk loading is parallel
//! and sort-once (see the `bulk_load*` methods on [`graph::Store`]), and
//! the index set is designed around the Interactive workload's "most
//! recent N before date" access patterns (see [`graph`]).

mod compact;
pub mod counters;
pub mod graph;
mod loader;
pub mod mvcc;
pub mod stats;
pub mod wal;

pub use compact::set_uncompressed_runs;
pub use counters::StoreCounters;
pub use graph::{
    Dated, DatedIter, MessageMeta, MessageRow, PinnedSnapshot, RecentWalk, RecoveryReport,
    Snapshot, Store,
};
pub use stats::StorageStats;
pub use wal::{decode_update, encode_update, Replay, SyncPolicy, Wal, WalMetrics};
