//! WAL crash-recovery fault injection and parallel-load determinism.
//!
//! Property-based round trips: append K committed ops, corrupt the log at
//! an arbitrary offset (truncation or bit flip — a torn write or a bad
//! sector), reopen with [`Wal::open_append`], and require that the intact
//! prefix replays, the damaged tail is physically truncated, and the log
//! accepts (and later recovers) subsequent appends. Plus the determinism
//! contract of the parallel bulk loader and the group-commit guarantee
//! that every acknowledged commit survives a crash.

use proptest::prelude::*;
use snb_core::update::UpdateOp;
use snb_core::{ForumId, MessageId, PersonId};
use snb_store::wal::{replay, SyncPolicy, Wal, WalMetrics};
use snb_store::Store;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

fn sample_ops() -> &'static [UpdateOp] {
    static OPS: OnceLock<Vec<UpdateOp>> = OnceLock::new();
    OPS.get_or_init(|| {
        let ds = snb_datagen::generate(
            snb_datagen::GeneratorConfig::with_persons(150).activity(0.3).seed(11),
        )
        .unwrap();
        let ops: Vec<UpdateOp> = ds.update_stream().into_iter().map(|s| s.op).collect();
        assert!(ops.len() > 60, "need a healthy op supply for fault injection");
        ops
    })
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("snb-recovery-{}-{name}", std::process::id()))
}

fn write_log(path: &Path, k: usize) {
    let wal = Wal::create(path).unwrap();
    for op in &sample_ops()[..k] {
        wal.append(op).unwrap();
    }
    wal.flush().unwrap();
}

fn ops_equal(a: &UpdateOp, b: &UpdateOp) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncate the log at an arbitrary byte offset (torn write at any
    /// point, magic included): recovery replays the longest intact prefix,
    /// trims the file to it, and the log keeps accepting appends that a
    /// second recovery then sees.
    #[test]
    fn truncation_at_any_offset_recovers_a_prefix(
        k in 5usize..30,
        cut_sel in any::<u32>(),
    ) {
        let path = tmp(&format!("trunc-{k}-{cut_sel}"));
        write_log(&path, k);
        let full = std::fs::read(&path).unwrap();
        let cut = cut_sel as usize % (full.len() + 1);
        std::fs::write(&path, &full[..cut]).unwrap();

        let metrics = WalMetrics::detached();
        let (wal, rep) = Wal::open_append(&path, SyncPolicy::Never, metrics.clone()).unwrap();
        // The intact prefix, and nothing but the prefix.
        prop_assert!(rep.ops.len() <= k);
        for (a, b) in sample_ops().iter().zip(&rep.ops) {
            prop_assert!(ops_equal(a, b), "replayed op diverged:\n{a:?}\n{b:?}");
        }
        prop_assert_eq!(rep.last_seq, rep.ops.len() as u64);
        // Anything discarded is reported and counted, and the file is
        // physically trimmed to the valid prefix.
        prop_assert_eq!(rep.truncated_bytes, (cut as u64).saturating_sub(rep.valid_bytes));
        prop_assert_eq!(metrics.recovery_truncated_bytes.get(), rep.truncated_bytes);
        prop_assert!(std::fs::metadata(&path).unwrap().len() >= rep.valid_bytes);

        // Subsequent appends land cleanly after the trim…
        let prefix = rep.ops.len();
        for op in &sample_ops()[k..k + 2] {
            wal.append(op).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // …and a second recovery sees prefix + 2 records, no loss.
        let rep2 = replay(&path).unwrap();
        prop_assert_eq!(rep2.ops.len(), prefix + 2);
        prop_assert_eq!(rep2.truncated_bytes, 0);
        prop_assert!(ops_equal(&rep2.ops[prefix], &sample_ops()[k]));
        std::fs::remove_file(&path).unwrap();
    }

    /// Flip one byte at an arbitrary offset past the file magic (bad
    /// sector): recovery stops before the damaged record, truncates, and
    /// resumes.
    #[test]
    fn bit_flip_at_any_offset_recovers_a_prefix(
        k in 5usize..30,
        off_sel in any::<u32>(),
    ) {
        let path = tmp(&format!("flip-{k}-{off_sel}"));
        write_log(&path, k);
        let mut bytes = std::fs::read(&path).unwrap();
        // Offsets 0..8 damage the magic — covered by the test below.
        let off = 8 + (off_sel as usize % (bytes.len() - 8));
        bytes[off] ^= 0xA5;
        std::fs::write(&path, &bytes).unwrap();

        let metrics = WalMetrics::detached();
        let (wal, rep) = Wal::open_append(&path, SyncPolicy::Never, metrics).unwrap();
        prop_assert!(rep.ops.len() < k, "the damaged record must not replay");
        for (a, b) in sample_ops().iter().zip(&rep.ops) {
            prop_assert!(ops_equal(a, b));
        }
        prop_assert!(rep.truncated_bytes > 0, "damage must be reported, not swallowed");

        let prefix = rep.ops.len();
        for op in &sample_ops()[k..k + 2] {
            wal.append(op).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        let rep2 = replay(&path).unwrap();
        prop_assert_eq!(rep2.ops.len(), prefix + 2);
        prop_assert_eq!(rep2.truncated_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn damaged_magic_is_an_error_not_silent_data_loss() {
    let path = tmp("magic");
    write_log(&path, 5);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[3] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    assert!(
        Wal::open_append(&path, SyncPolicy::Never, WalMetrics::detached()).is_err(),
        "a log with a damaged magic must be rejected, not emptied"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn group_commit_acknowledged_commits_survive_a_crash() {
    let ds = snb_datagen::generate(
        snb_datagen::GeneratorConfig::with_persons(120).activity(0.3).seed(7),
    )
    .unwrap();
    let stream = ds.update_stream();
    let n = stream.len().min(200);
    let path = tmp("groupcrash");

    let store = Store::with_wal_policy(
        &path,
        SyncPolicy::GroupCommit { max_batch: 16, max_delay: Duration::from_micros(200) },
    )
    .unwrap();
    store.bulk_load(&ds);
    for u in &stream[..n] {
        store.apply(&u.op).unwrap(); // acknowledged = durable
    }
    // Simulate a crash: no flush, no Drop — the process just stops caring.
    std::mem::forget(store);

    let (recovered, report) = Store::recover(&ds, &path).unwrap();
    assert_eq!(report.replayed as usize, n, "every acknowledged commit must replay");
    assert_eq!(report.truncated_bytes, 0);

    let reference = Store::new();
    reference.bulk_load(&ds);
    for u in &stream[..n] {
        reference.apply(&u.op).unwrap();
    }
    let sr = recovered.snapshot();
    let sf = reference.snapshot();
    assert_eq!(sr.person_slots(), sf.person_slots());
    assert_eq!(sr.message_slots(), sf.message_slots());
    for i in 0..sf.person_slots() as u64 {
        let p = PersonId(i);
        assert_eq!(sr.friends(p), sf.friends(p));
        assert_eq!(sr.messages_of(p), sf.messages_of(p));
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn parallel_bulk_load_is_deterministic_across_thread_counts() {
    let ds = snb_datagen::generate(
        snb_datagen::GeneratorConfig::with_persons(300).activity(0.4).seed(5),
    )
    .unwrap();
    let reference = Store::new();
    reference.bulk_load_until_threads(&ds, ds.config.end, 1);
    let rs = reference.snapshot();
    for threads in [2usize, 3, 8] {
        let s = Store::new();
        s.bulk_load_until_threads(&ds, ds.config.end, threads);
        let sn = s.snapshot();
        assert_eq!(sn.person_slots(), rs.person_slots(), "{threads} threads");
        assert_eq!(sn.forum_slots(), rs.forum_slots(), "{threads} threads");
        assert_eq!(sn.message_slots(), rs.message_slots(), "{threads} threads");
        for i in 0..rs.person_slots() as u64 {
            let p = PersonId(i);
            assert_eq!(sn.friends(p), rs.friends(p), "friends of {p} at {threads} threads");
            assert_eq!(sn.messages_of(p), rs.messages_of(p));
            assert_eq!(sn.forums_of(p), rs.forums_of(p));
            assert_eq!(sn.likes_by(p), rs.likes_by(p));
        }
        for i in 0..rs.message_slots() as u64 {
            let m = MessageId(i);
            assert_eq!(sn.replies_of(m), rs.replies_of(m));
            assert_eq!(sn.likes_of(m), rs.likes_of(m));
            let (a, b) = (sn.message(m), rs.message(m));
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "row {m} at {threads} threads");
        }
        for i in 0..rs.forum_slots() as u64 {
            let f = ForumId(i);
            assert_eq!(sn.posts_in_forum(f), rs.posts_in_forum(f));
            assert_eq!(sn.members_of(f), rs.members_of(f));
        }
    }
}
