//! Property-based tests for the store: model-checked MVCC visibility and
//! WAL roundtrips under arbitrary operation interleavings.

use proptest::prelude::*;
use snb_core::dict::names::Gender;
use snb_core::schema::{Comment, Forum, ForumKind, Knows, Like, Person, Post};
use snb_core::time::SimTime;
use snb_core::update::UpdateOp;
use snb_core::{ForumId, MessageId, PersonId, TagId};
use snb_store::Store;
use std::collections::HashSet;

/// A tiny op language the model checker drives. Ids are small so references
/// frequently collide (testing constraint checks) and frequently resolve
/// (testing the indexes).
#[derive(Debug, Clone)]
enum Action {
    AddPerson(u64),
    AddFriendship(u64, u64),
    AddForum(u64, u64),
    AddPost { id: u64, author: u64, forum: u64 },
    AddComment { id: u64, author: u64, parent: u64, forum: u64 },
    AddLike { person: u64, message: u64 },
    TakeSnapshot,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u64..12).prop_map(Action::AddPerson),
        (0u64..12, 0u64..12).prop_map(|(a, b)| Action::AddFriendship(a, b)),
        (0u64..8, 0u64..12).prop_map(|(f, m)| Action::AddForum(f, m)),
        (0u64..30, 0u64..12, 0u64..8).prop_map(|(id, author, forum)| Action::AddPost {
            id,
            author,
            forum
        }),
        (0u64..30, 0u64..12, 0u64..30, 0u64..8).prop_map(|(id, author, parent, forum)| {
            Action::AddComment { id, author, parent, forum }
        }),
        (0u64..12, 0u64..30).prop_map(|(person, message)| Action::AddLike { person, message }),
        Just(Action::TakeSnapshot),
    ]
}

fn person(id: u64, t: i64) -> Person {
    Person {
        id: PersonId(id),
        first_name: "Karl",
        last_name: "Muller",
        gender: Gender::Male,
        birthday: SimTime(0),
        creation_date: SimTime(t),
        city: 0,
        country: 0,
        browser: "Chrome",
        location_ip: String::new(),
        languages: vec!["de"],
        emails: vec![],
        interests: vec![TagId(1)],
        study_at: None,
        work_at: vec![],
    }
}

/// In-memory reference model: which entities exist, which edges exist.
#[derive(Debug, Default, Clone)]
struct Model {
    persons: HashSet<u64>,
    forums: HashSet<u64>,
    posts: HashSet<u64>,
    comments: HashSet<u64>,
    knows: HashSet<(u64, u64)>,
    likes: HashSet<(u64, u64)>,
}

impl Model {
    fn message_exists(&self, m: u64) -> bool {
        self.posts.contains(&m) || self.comments.contains(&m)
    }
}

fn to_op(a: &Action, t: i64, model: &Model) -> Option<(UpdateOp, bool)> {
    // Returns (op, should_succeed) per the model's view.
    match *a {
        Action::AddPerson(id) => {
            Some((UpdateOp::AddPerson(person(id, t)), !model.persons.contains(&id)))
        }
        Action::AddFriendship(a, b) => {
            let k = Knows { a: PersonId(a), b: PersonId(b), creation_date: SimTime(t) };
            let ok = a != b && model.persons.contains(&a) && model.persons.contains(&b);
            Some((UpdateOp::AddFriendship(k), ok))
        }
        Action::AddForum(f, m) => {
            let forum = Forum {
                id: ForumId(f),
                title: format!("forum {f}"),
                moderator: PersonId(m),
                creation_date: SimTime(t),
                tags: vec![TagId(0)],
                kind: ForumKind::Group,
            };
            let ok = model.persons.contains(&m) && !model.forums.contains(&f);
            Some((UpdateOp::AddForum(forum), ok))
        }
        Action::AddPost { id, author, forum } => {
            let post = Post {
                id: MessageId(id),
                author: PersonId(author),
                forum: ForumId(forum),
                creation_date: SimTime(t),
                content: "post".into(),
                image_file: None,
                tags: vec![TagId(2)],
                language: "de",
                country: 0,
            };
            let ok = model.persons.contains(&author)
                && model.forums.contains(&forum)
                && !model.message_exists(id);
            Some((UpdateOp::AddPost(post), ok))
        }
        Action::AddComment { id, author, parent, forum } => {
            // The store accepts replies to posts AND to other comments; the
            // generated op reuses the parent as root_post (the store checks
            // existence of both, not post-ness — the generator guarantees
            // well-formed roots in real data).
            let comment = Comment {
                id: MessageId(id),
                author: PersonId(author),
                creation_date: SimTime(t),
                content: "re".into(),
                reply_to: MessageId(parent),
                root_post: MessageId(parent),
                forum: ForumId(forum),
                tags: vec![],
                country: 0,
            };
            let ok = model.persons.contains(&author)
                && model.forums.contains(&forum)
                && model.message_exists(parent)
                && !model.message_exists(id);
            Some((UpdateOp::AddComment(comment), ok))
        }
        Action::AddLike { person, message } => {
            let like = Like {
                person: PersonId(person),
                message: MessageId(message),
                creation_date: SimTime(t),
            };
            let ok = model.persons.contains(&person) && model.message_exists(message);
            Some((UpdateOp::AddPostLike(like), ok))
        }
        Action::TakeSnapshot => None,
    }
}

fn apply_model(a: &Action, model: &mut Model) {
    match *a {
        Action::AddPerson(id) => {
            model.persons.insert(id);
        }
        Action::AddFriendship(a, b) => {
            model.knows.insert((a.min(b), a.max(b)));
        }
        Action::AddForum(f, _) => {
            model.forums.insert(f);
        }
        Action::AddPost { id, .. } => {
            model.posts.insert(id);
        }
        Action::AddComment { id, .. } => {
            model.comments.insert(id);
        }
        Action::AddLike { person, message } => {
            model.likes.insert((person, message));
        }
        Action::TakeSnapshot => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store accepts exactly the operations the reference model deems
    /// valid, and the final store state matches the model.
    #[test]
    fn store_matches_reference_model(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let store = Store::new();
        let mut model = Model::default();
        for (i, a) in actions.iter().enumerate() {
            let t = i as i64 + 1;
            let Some((op, should_succeed)) = to_op(a, t, &model) else { continue };
            let result = store.apply(&op);
            prop_assert_eq!(
                result.is_ok(),
                should_succeed,
                "action {:?}: store said {:?}, model said {}",
                a,
                result.err().map(|e| e.to_string()),
                should_succeed
            );
            if should_succeed {
                apply_model(a, &mut model);
            }
        }
        // Final-state equivalence.
        let snap = store.snapshot();
        for id in 0..12u64 {
            prop_assert_eq!(snap.person(PersonId(id)).is_some(), model.persons.contains(&id));
        }
        for f in 0..8u64 {
            prop_assert_eq!(snap.forum(ForumId(f)).is_some(), model.forums.contains(&f));
        }
        for m in 0..30u64 {
            prop_assert_eq!(snap.message(MessageId(m)).is_some(), model.message_exists(m));
        }
        for &(a, b) in &model.knows {
            prop_assert!(snap.are_friends(PersonId(a), PersonId(b)));
            prop_assert!(snap.are_friends(PersonId(b), PersonId(a)));
        }
        for &(p, m) in &model.likes {
            prop_assert!(snap.likes_by(PersonId(p)).iter().any(|&(msg, _)| msg == m));
            prop_assert!(snap.likes_of(MessageId(m)).iter().any(|&(pp, _)| pp == p));
        }
    }

    /// Snapshots are frozen: whatever commits after a snapshot was taken is
    /// invisible to it, and everything before stays visible.
    #[test]
    fn snapshots_are_immutable_views(actions in proptest::collection::vec(action_strategy(), 1..80)) {
        let store = Store::new();
        let mut model = Model::default();
        // (snapshot, model-state-at-snapshot)
        let mut snapshots: Vec<(snb_store::Snapshot<'_>, Model)> = Vec::new();
        for (i, a) in actions.iter().enumerate() {
            if matches!(a, Action::TakeSnapshot) {
                if snapshots.len() < 4 {
                    snapshots.push((store.snapshot(), model.clone()));
                }
                continue;
            }
            let t = i as i64 + 1;
            let Some((op, ok)) = to_op(a, t, &model) else { continue };
            if ok {
                store.apply(&op).unwrap();
                apply_model(a, &mut model);
            }
        }
        for (snap, frozen) in &snapshots {
            for id in 0..12u64 {
                prop_assert_eq!(
                    snap.person(PersonId(id)).is_some(),
                    frozen.persons.contains(&id),
                    "person {} visibility drifted",
                    id
                );
            }
            for m in 0..30u64 {
                prop_assert_eq!(snap.message(MessageId(m)).is_some(), frozen.message_exists(m));
            }
            for a in 0..12u64 {
                let friends: HashSet<u64> =
                    snap.friends(PersonId(a)).into_iter().map(|(f, _)| f).collect();
                let expect: HashSet<u64> = frozen
                    .knows
                    .iter()
                    .filter_map(|&(x, y)| {
                        if x == a {
                            Some(y)
                        } else if y == a {
                            Some(x)
                        } else {
                            None
                        }
                    })
                    .collect();
                prop_assert_eq!(friends, expect, "friends of {} drifted", a);
            }
        }
    }

    /// WAL append + replay is the identity on any valid op sequence.
    #[test]
    fn wal_roundtrip_preserves_ops(actions in proptest::collection::vec(action_strategy(), 1..60), tag in any::<u32>()) {
        let path = std::env::temp_dir()
            .join(format!("snb-prop-wal-{}-{tag}", std::process::id()));
        let mut model = Model::default();
        let mut written = Vec::new();
        {
            let wal = snb_store::wal::Wal::create(&path).unwrap();
            for (i, a) in actions.iter().enumerate() {
                let Some((op, ok)) = to_op(a, i as i64 + 1, &model) else { continue };
                if ok {
                    wal.append(&op).unwrap();
                    written.push(op);
                    apply_model(a, &mut model);
                }
            }
            wal.flush().unwrap();
        }
        let replayed = snb_store::wal::replay(&path).unwrap();
        prop_assert_eq!(replayed.ops.len(), written.len());
        prop_assert_eq!(replayed.truncated_bytes, 0);
        for (a, b) in written.iter().zip(&replayed.ops) {
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// Shared generated dataset for the mixed bulk/update iterator property:
/// generation is deterministic and dominates the per-case cost, so it is
/// done once and each case only bulk-loads + replays a random prefix.
fn mixed_dataset() -> &'static (snb_datagen::Dataset, Vec<snb_core::update::ScheduledUpdate>) {
    use std::sync::OnceLock;
    static DS: OnceLock<(snb_datagen::Dataset, Vec<snb_core::update::ScheduledUpdate>)> =
        OnceLock::new();
    DS.get_or_init(|| {
        let ds = snb_datagen::generate(
            snb_datagen::GeneratorConfig::with_persons(150).activity(0.3).seed(11),
        )
        .unwrap();
        let stream = ds.update_stream();
        (ds, stream)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The borrowing iterator API of `PinnedSnapshot` is pointwise equal to
    /// the owned `Vec` API for every index family, on stores mixing an
    /// immutable bulk prefix (always-visible fast lane, version checks
    /// skipped) with a random number of versioned update commits (checked
    /// tail). This is the differential test guarding the bulk fast lane:
    /// the two paths are independent implementations over the same entries.
    #[test]
    fn iterator_api_matches_vec_api_on_mixed_stores(
        prefix_pct in 0u32..=100,
        day_offset in 0i64..1_096,
    ) {
        let (ds, stream) = mixed_dataset();
        let store = Store::new();
        store.bulk_load(ds);
        let applied = stream.len() * prefix_pct as usize / 100;
        for u in &stream[..applied] {
            store.apply(&u.op).unwrap();
        }
        let snap = store.pinned();
        let max_date = SimTime(SimTime::SIM_START.0 + day_offset * 86_400_000);

        for p in 0..snap.person_slots() as u64 {
            let id = PersonId(p);
            prop_assert_eq!(snap.friends(id), snap.friends_iter(id).collect::<Vec<_>>());
            prop_assert_eq!(snap.messages_of(id), snap.messages_of_iter(id).collect::<Vec<_>>());
            prop_assert_eq!(snap.likes_by(id), snap.likes_by_iter(id).collect::<Vec<_>>());
            prop_assert_eq!(snap.forums_of(id), snap.forums_of_iter(id).collect::<Vec<_>>());
            prop_assert_eq!(
                snap.recent_messages_of(id, max_date, 5),
                snap.recent_messages_walk(id, max_date).take(5).collect::<Vec<_>>()
            );
        }
        for f in 0..snap.forum_slots() as u64 {
            let id = ForumId(f);
            prop_assert_eq!(
                snap.posts_in_forum(id),
                snap.posts_in_forum_iter(id).collect::<Vec<_>>()
            );
            prop_assert_eq!(snap.members_of(id), snap.members_of_iter(id).collect::<Vec<_>>());
        }
        for m in 0..snap.message_slots() as u64 {
            let id = MessageId(m);
            prop_assert_eq!(snap.replies_of(id), snap.replies_of_iter(id).collect::<Vec<_>>());
            prop_assert_eq!(snap.likes_of(id), snap.likes_of_iter(id).collect::<Vec<_>>());
        }

        // The pinned snapshot and the per-call-latch snapshot taken at the
        // same timestamp agree (same MVCC semantics, different locking).
        let unpinned = store.snapshot();
        for p in (0..snap.person_slots() as u64).step_by(13) {
            let id = PersonId(p);
            prop_assert_eq!(snap.friends(id), unpinned.friends(id));
            prop_assert_eq!(snap.messages_of(id), unpinned.messages_of(id));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential guard for the compact run format: the store's read
    /// path (anchor binary search + varint block decode) is pointwise
    /// equal to an uncompressed oracle assembled straight from the
    /// dataset and the applied update prefix — plain `(date, id)`-sorted
    /// Vecs, the pre-compact representation — without ever touching the
    /// store. Covers the two largest index families (`knows`,
    /// `person_messages`) forward and the full newest-first bounded walk
    /// backward, on stores mixing bulk runs with versioned commits.
    #[test]
    fn compact_runs_match_uncompressed_oracle(
        prefix_pct in 0u32..=100,
        day_offset in 0i64..1_096,
    ) {
        use std::collections::HashMap;

        let (ds, stream) = mixed_dataset();
        let store = Store::new();
        store.bulk_load(ds);
        let applied = stream.len() * prefix_pct as usize / 100;
        for u in &stream[..applied] {
            store.apply(&u.op).unwrap();
        }

        type Lists = HashMap<u64, Vec<(SimTime, u64)>>;
        fn edge(knows: &mut Lists, k: &Knows) {
            knows.entry(k.a.raw()).or_default().push((k.creation_date, k.b.raw()));
            knows.entry(k.b.raw()).or_default().push((k.creation_date, k.a.raw()));
        }
        let split = ds.config.update_split;
        let mut knows: Lists = HashMap::new();
        let mut msgs: Lists = HashMap::new();
        // Bulk part: everything the loader takes (created at or before the
        // update split)...
        for k in ds.knows.iter().filter(|k| k.creation_date <= split) {
            edge(&mut knows, k);
        }
        for p in ds.posts.iter().filter(|p| p.creation_date <= split) {
            msgs.entry(p.author.raw()).or_default().push((p.creation_date, p.id.raw()));
        }
        for c in ds.comments.iter().filter(|c| c.creation_date <= split) {
            msgs.entry(c.author.raw()).or_default().push((c.creation_date, c.id.raw()));
        }
        // ... plus exactly the applied update prefix.
        for u in &stream[..applied] {
            match &u.op {
                UpdateOp::AddFriendship(k) => edge(&mut knows, k),
                UpdateOp::AddPost(p) => {
                    msgs.entry(p.author.raw()).or_default().push((p.creation_date, p.id.raw()));
                }
                UpdateOp::AddComment(c) => {
                    msgs.entry(c.author.raw()).or_default().push((c.creation_date, c.id.raw()));
                }
                _ => {}
            }
        }
        for list in knows.values_mut().chain(msgs.values_mut()) {
            list.sort_unstable();
        }

        let snap = store.pinned();
        let max_date = SimTime(SimTime::SIM_START.0 + day_offset * 86_400_000);
        let as_dated = |list: &[(SimTime, u64)]| -> Vec<(u64, SimTime)> {
            list.iter().map(|&(d, id)| (id, d)).collect()
        };
        for p in 0..snap.person_slots() as u64 {
            let id = PersonId(p);
            let exp_knows = knows.get(&p).map(|v| &v[..]).unwrap_or(&[]);
            let exp_msgs = msgs.get(&p).map(|v| &v[..]).unwrap_or(&[]);
            prop_assert_eq!(snap.friends(id), as_dated(exp_knows));
            prop_assert_eq!(snap.messages_of_iter(id).collect::<Vec<_>>(), as_dated(exp_msgs));
            // Bounded newest-first walk vs the oracle's reversed prefix —
            // this exercises the anchor seek (`upper_bound_date`) and the
            // backward block decode at every list length and bound.
            let end = exp_msgs.partition_point(|&(d, _)| d <= max_date);
            let expected: Vec<(u64, SimTime)> =
                exp_msgs[..end].iter().rev().map(|&(d, id)| (id, d)).collect();
            prop_assert_eq!(
                snap.recent_messages_walk(id, max_date).collect::<Vec<_>>(),
                expected
            );
        }
    }
}

/// Highest entity id used by [`mixed_dataset`] plus one: synthetic ops
/// offset their ids past this floor so they can never collide with (or
/// depend on) bulk-loaded entities.
fn id_floor() -> u64 {
    use std::sync::OnceLock;
    static FLOOR: OnceLock<u64> = OnceLock::new();
    *FLOOR.get_or_init(|| {
        let (ds, _) = mixed_dataset();
        let persons = ds.persons.iter().map(|p| p.id.raw()).max().unwrap_or(0);
        let forums = ds.forums.iter().map(|f| f.id.raw()).max().unwrap_or(0);
        let posts = ds.posts.iter().map(|p| p.id.raw()).max().unwrap_or(0);
        let comments = ds.comments.iter().map(|c| c.id.raw()).max().unwrap_or(0);
        persons.max(forums).max(posts).max(comments) + 1
    })
}

/// Shift every id in `a` into the window starting at `base`.
fn offset_action(a: &Action, base: u64) -> Action {
    match *a {
        Action::AddPerson(id) => Action::AddPerson(base + id),
        Action::AddFriendship(x, y) => Action::AddFriendship(base + x, base + y),
        Action::AddForum(f, m) => Action::AddForum(base + f, base + m),
        Action::AddPost { id, author, forum } => {
            Action::AddPost { id: base + id, author: base + author, forum: base + forum }
        }
        Action::AddComment { id, author, parent, forum } => Action::AddComment {
            id: base + id,
            author: base + author,
            parent: base + parent,
            forum: base + forum,
        },
        Action::AddLike { person, message } => {
            Action::AddLike { person: base + person, message: base + message }
        }
        Action::TakeSnapshot => Action::TakeSnapshot,
    }
}

/// Turn raw action vectors into per-writer streams of *valid* ops over
/// disjoint id windows (window `t` starts at `id_floor() + 64 t`), so any
/// thread interleaving applies cleanly: no stream references another
/// stream's entities. Dates are a function of `(stream, index)` — identical
/// between the concurrent run and the serial oracle.
fn disjoint_streams(raw: &[Vec<Action>]) -> Vec<Vec<UpdateOp>> {
    raw.iter()
        .enumerate()
        .map(|(t, actions)| {
            let base = id_floor() + (t as u64) * 64;
            let mut model = Model::default();
            let mut ops = Vec::new();
            for (i, a) in actions.iter().enumerate() {
                let a = offset_action(a, base);
                let date = (t as i64 + 1) * 1_000_000 + i as i64;
                if let Some((op, ok)) = to_op(&a, date, &model) {
                    if ok {
                        ops.push(op);
                        apply_model(&a, &mut model);
                    }
                }
            }
            ops
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole property (PR 5): a store written by concurrent threads
    /// through the striped-lock commit pipeline is pointwise identical —
    /// across every adjacency accessor, every borrowing iterator and every
    /// `*_ref` accessor — to a store that applied the same streams
    /// serially. Half the cases layer the writers on top of a bulk-loaded
    /// prefix, so the always-visible fast lane and the versioned tails are
    /// both exercised.
    #[test]
    fn concurrent_apply_matches_serial_apply(
        raw in proptest::collection::vec(
            proptest::collection::vec(action_strategy(), 1..48), 2..=4),
        bulk in any::<bool>(),
    ) {
        let (ds, _) = mixed_dataset();
        let streams = disjoint_streams(&raw);

        let concurrent = Store::new();
        let serial = Store::new();
        if bulk {
            concurrent.bulk_load(ds);
            serial.bulk_load(ds);
        }
        std::thread::scope(|scope| {
            for ops in &streams {
                let store = &concurrent;
                scope.spawn(move || {
                    for op in ops {
                        store.apply(op).expect("disjoint stream op must commit");
                    }
                });
            }
        });
        for ops in &streams {
            for op in ops {
                serial.apply(op).expect("serial oracle op must commit");
            }
        }

        prop_assert_eq!(
            concurrent.counters().commits.get(),
            serial.counters().commits.get()
        );
        let a = concurrent.pinned();
        let b = serial.pinned();
        prop_assert_eq!(a.person_slots(), b.person_slots());
        prop_assert_eq!(a.forum_slots(), b.forum_slots());
        prop_assert_eq!(a.message_slots(), b.message_slots());
        for i in 0..a.person_slots() as u64 {
            let p = PersonId(i);
            prop_assert_eq!(
                format!("{:?}", a.person_ref(p)), format!("{:?}", b.person_ref(p)),
                "person_ref {} drifted", i
            );
            prop_assert_eq!(a.friends(p), b.friends(p), "friends of {} drifted", i);
            prop_assert_eq!(a.friends(p), a.friends_iter(p).collect::<Vec<_>>());
            prop_assert_eq!(a.messages_of(p), b.messages_of(p));
            prop_assert_eq!(a.messages_of(p), a.messages_of_iter(p).collect::<Vec<_>>());
            prop_assert_eq!(a.forums_of(p), b.forums_of(p));
            prop_assert_eq!(a.likes_by(p), b.likes_by(p));
            prop_assert_eq!(
                a.recent_messages_walk(p, SimTime(i64::MAX)).take(4).collect::<Vec<_>>(),
                b.recent_messages_walk(p, SimTime(i64::MAX)).take(4).collect::<Vec<_>>()
            );
        }
        for i in 0..a.forum_slots() as u64 {
            let f = ForumId(i);
            prop_assert_eq!(
                format!("{:?}", a.forum_ref(f)), format!("{:?}", b.forum_ref(f))
            );
            prop_assert_eq!(a.posts_in_forum(f), b.posts_in_forum(f));
            prop_assert_eq!(a.posts_in_forum(f), a.posts_in_forum_iter(f).collect::<Vec<_>>());
            prop_assert_eq!(a.members_of(f), b.members_of(f));
        }
        for i in 0..a.message_slots() as u64 {
            let m = MessageId(i);
            prop_assert_eq!(
                format!("{:?}", a.message_ref(m)), format!("{:?}", b.message_ref(m))
            );
            prop_assert_eq!(a.replies_of(m), b.replies_of(m));
            prop_assert_eq!(a.replies_of(m), a.replies_of_iter(m).collect::<Vec<_>>());
            prop_assert_eq!(a.likes_of(m), b.likes_of(m));
        }
    }
}
