//! Property-based tests for the store: model-checked MVCC visibility and
//! WAL roundtrips under arbitrary operation interleavings.

use proptest::prelude::*;
use snb_core::dict::names::Gender;
use snb_core::schema::{Comment, Forum, ForumKind, Knows, Like, Person, Post};
use snb_core::time::SimTime;
use snb_core::update::UpdateOp;
use snb_core::{ForumId, MessageId, PersonId, TagId};
use snb_store::Store;
use std::collections::HashSet;

/// A tiny op language the model checker drives. Ids are small so references
/// frequently collide (testing constraint checks) and frequently resolve
/// (testing the indexes).
#[derive(Debug, Clone)]
enum Action {
    AddPerson(u64),
    AddFriendship(u64, u64),
    AddForum(u64, u64),
    AddPost { id: u64, author: u64, forum: u64 },
    AddComment { id: u64, author: u64, parent: u64, forum: u64 },
    AddLike { person: u64, message: u64 },
    TakeSnapshot,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u64..12).prop_map(Action::AddPerson),
        (0u64..12, 0u64..12).prop_map(|(a, b)| Action::AddFriendship(a, b)),
        (0u64..8, 0u64..12).prop_map(|(f, m)| Action::AddForum(f, m)),
        (0u64..30, 0u64..12, 0u64..8).prop_map(|(id, author, forum)| Action::AddPost {
            id,
            author,
            forum
        }),
        (0u64..30, 0u64..12, 0u64..30, 0u64..8).prop_map(|(id, author, parent, forum)| {
            Action::AddComment { id, author, parent, forum }
        }),
        (0u64..12, 0u64..30).prop_map(|(person, message)| Action::AddLike { person, message }),
        Just(Action::TakeSnapshot),
    ]
}

fn person(id: u64, t: i64) -> Person {
    Person {
        id: PersonId(id),
        first_name: "Karl",
        last_name: "Muller",
        gender: Gender::Male,
        birthday: SimTime(0),
        creation_date: SimTime(t),
        city: 0,
        country: 0,
        browser: "Chrome",
        location_ip: String::new(),
        languages: vec!["de"],
        emails: vec![],
        interests: vec![TagId(1)],
        study_at: None,
        work_at: vec![],
    }
}

/// In-memory reference model: which entities exist, which edges exist.
#[derive(Debug, Default, Clone)]
struct Model {
    persons: HashSet<u64>,
    forums: HashSet<u64>,
    posts: HashSet<u64>,
    comments: HashSet<u64>,
    knows: HashSet<(u64, u64)>,
    likes: HashSet<(u64, u64)>,
}

impl Model {
    fn message_exists(&self, m: u64) -> bool {
        self.posts.contains(&m) || self.comments.contains(&m)
    }
}

fn to_op(a: &Action, t: i64, model: &Model) -> Option<(UpdateOp, bool)> {
    // Returns (op, should_succeed) per the model's view.
    match *a {
        Action::AddPerson(id) => {
            Some((UpdateOp::AddPerson(person(id, t)), !model.persons.contains(&id)))
        }
        Action::AddFriendship(a, b) => {
            let k = Knows { a: PersonId(a), b: PersonId(b), creation_date: SimTime(t) };
            let ok = a != b && model.persons.contains(&a) && model.persons.contains(&b);
            Some((UpdateOp::AddFriendship(k), ok))
        }
        Action::AddForum(f, m) => {
            let forum = Forum {
                id: ForumId(f),
                title: format!("forum {f}"),
                moderator: PersonId(m),
                creation_date: SimTime(t),
                tags: vec![TagId(0)],
                kind: ForumKind::Group,
            };
            let ok = model.persons.contains(&m) && !model.forums.contains(&f);
            Some((UpdateOp::AddForum(forum), ok))
        }
        Action::AddPost { id, author, forum } => {
            let post = Post {
                id: MessageId(id),
                author: PersonId(author),
                forum: ForumId(forum),
                creation_date: SimTime(t),
                content: "post".into(),
                image_file: None,
                tags: vec![TagId(2)],
                language: "de",
                country: 0,
            };
            let ok = model.persons.contains(&author)
                && model.forums.contains(&forum)
                && !model.message_exists(id);
            Some((UpdateOp::AddPost(post), ok))
        }
        Action::AddComment { id, author, parent, forum } => {
            // The store accepts replies to posts AND to other comments; the
            // generated op reuses the parent as root_post (the store checks
            // existence of both, not post-ness — the generator guarantees
            // well-formed roots in real data).
            let comment = Comment {
                id: MessageId(id),
                author: PersonId(author),
                creation_date: SimTime(t),
                content: "re".into(),
                reply_to: MessageId(parent),
                root_post: MessageId(parent),
                forum: ForumId(forum),
                tags: vec![],
                country: 0,
            };
            let ok = model.persons.contains(&author)
                && model.forums.contains(&forum)
                && model.message_exists(parent)
                && !model.message_exists(id);
            Some((UpdateOp::AddComment(comment), ok))
        }
        Action::AddLike { person, message } => {
            let like = Like {
                person: PersonId(person),
                message: MessageId(message),
                creation_date: SimTime(t),
            };
            let ok = model.persons.contains(&person) && model.message_exists(message);
            Some((UpdateOp::AddPostLike(like), ok))
        }
        Action::TakeSnapshot => None,
    }
}

fn apply_model(a: &Action, model: &mut Model) {
    match *a {
        Action::AddPerson(id) => {
            model.persons.insert(id);
        }
        Action::AddFriendship(a, b) => {
            model.knows.insert((a.min(b), a.max(b)));
        }
        Action::AddForum(f, _) => {
            model.forums.insert(f);
        }
        Action::AddPost { id, .. } => {
            model.posts.insert(id);
        }
        Action::AddComment { id, .. } => {
            model.comments.insert(id);
        }
        Action::AddLike { person, message } => {
            model.likes.insert((person, message));
        }
        Action::TakeSnapshot => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store accepts exactly the operations the reference model deems
    /// valid, and the final store state matches the model.
    #[test]
    fn store_matches_reference_model(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let store = Store::new();
        let mut model = Model::default();
        for (i, a) in actions.iter().enumerate() {
            let t = i as i64 + 1;
            let Some((op, should_succeed)) = to_op(a, t, &model) else { continue };
            let result = store.apply(&op);
            prop_assert_eq!(
                result.is_ok(),
                should_succeed,
                "action {:?}: store said {:?}, model said {}",
                a,
                result.err().map(|e| e.to_string()),
                should_succeed
            );
            if should_succeed {
                apply_model(a, &mut model);
            }
        }
        // Final-state equivalence.
        let snap = store.snapshot();
        for id in 0..12u64 {
            prop_assert_eq!(snap.person(PersonId(id)).is_some(), model.persons.contains(&id));
        }
        for f in 0..8u64 {
            prop_assert_eq!(snap.forum(ForumId(f)).is_some(), model.forums.contains(&f));
        }
        for m in 0..30u64 {
            prop_assert_eq!(snap.message(MessageId(m)).is_some(), model.message_exists(m));
        }
        for &(a, b) in &model.knows {
            prop_assert!(snap.are_friends(PersonId(a), PersonId(b)));
            prop_assert!(snap.are_friends(PersonId(b), PersonId(a)));
        }
        for &(p, m) in &model.likes {
            prop_assert!(snap.likes_by(PersonId(p)).iter().any(|&(msg, _)| msg == m));
            prop_assert!(snap.likes_of(MessageId(m)).iter().any(|&(pp, _)| pp == p));
        }
    }

    /// Snapshots are frozen: whatever commits after a snapshot was taken is
    /// invisible to it, and everything before stays visible.
    #[test]
    fn snapshots_are_immutable_views(actions in proptest::collection::vec(action_strategy(), 1..80)) {
        let store = Store::new();
        let mut model = Model::default();
        // (snapshot, model-state-at-snapshot)
        let mut snapshots: Vec<(snb_store::Snapshot<'_>, Model)> = Vec::new();
        for (i, a) in actions.iter().enumerate() {
            if matches!(a, Action::TakeSnapshot) {
                if snapshots.len() < 4 {
                    snapshots.push((store.snapshot(), model.clone()));
                }
                continue;
            }
            let t = i as i64 + 1;
            let Some((op, ok)) = to_op(a, t, &model) else { continue };
            if ok {
                store.apply(&op).unwrap();
                apply_model(a, &mut model);
            }
        }
        for (snap, frozen) in &snapshots {
            for id in 0..12u64 {
                prop_assert_eq!(
                    snap.person(PersonId(id)).is_some(),
                    frozen.persons.contains(&id),
                    "person {} visibility drifted",
                    id
                );
            }
            for m in 0..30u64 {
                prop_assert_eq!(snap.message(MessageId(m)).is_some(), frozen.message_exists(m));
            }
            for a in 0..12u64 {
                let friends: HashSet<u64> =
                    snap.friends(PersonId(a)).into_iter().map(|(f, _)| f).collect();
                let expect: HashSet<u64> = frozen
                    .knows
                    .iter()
                    .filter_map(|&(x, y)| {
                        if x == a {
                            Some(y)
                        } else if y == a {
                            Some(x)
                        } else {
                            None
                        }
                    })
                    .collect();
                prop_assert_eq!(friends, expect, "friends of {} drifted", a);
            }
        }
    }

    /// WAL append + replay is the identity on any valid op sequence.
    #[test]
    fn wal_roundtrip_preserves_ops(actions in proptest::collection::vec(action_strategy(), 1..60), tag in any::<u32>()) {
        let path = std::env::temp_dir()
            .join(format!("snb-prop-wal-{}-{tag}", std::process::id()));
        let mut model = Model::default();
        let mut written = Vec::new();
        {
            let wal = snb_store::wal::Wal::create(&path).unwrap();
            for (i, a) in actions.iter().enumerate() {
                let Some((op, ok)) = to_op(a, i as i64 + 1, &model) else { continue };
                if ok {
                    wal.append(&op).unwrap();
                    written.push(op);
                    apply_model(a, &mut model);
                }
            }
            wal.flush().unwrap();
        }
        let replayed = snb_store::wal::replay(&path).unwrap();
        prop_assert_eq!(replayed.ops.len(), written.len());
        prop_assert_eq!(replayed.truncated_bytes, 0);
        for (a, b) in written.iter().zip(&replayed.ops) {
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// Shared generated dataset for the mixed bulk/update iterator property:
/// generation is deterministic and dominates the per-case cost, so it is
/// done once and each case only bulk-loads + replays a random prefix.
fn mixed_dataset() -> &'static (snb_datagen::Dataset, Vec<snb_core::update::ScheduledUpdate>) {
    use std::sync::OnceLock;
    static DS: OnceLock<(snb_datagen::Dataset, Vec<snb_core::update::ScheduledUpdate>)> =
        OnceLock::new();
    DS.get_or_init(|| {
        let ds = snb_datagen::generate(
            snb_datagen::GeneratorConfig::with_persons(150).activity(0.3).seed(11),
        )
        .unwrap();
        let stream = ds.update_stream();
        (ds, stream)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The borrowing iterator API of `PinnedSnapshot` is pointwise equal to
    /// the owned `Vec` API for every index family, on stores mixing an
    /// immutable bulk prefix (always-visible fast lane, version checks
    /// skipped) with a random number of versioned update commits (checked
    /// tail). This is the differential test guarding the bulk fast lane:
    /// the two paths are independent implementations over the same entries.
    #[test]
    fn iterator_api_matches_vec_api_on_mixed_stores(
        prefix_pct in 0u32..=100,
        day_offset in 0i64..1_096,
    ) {
        let (ds, stream) = mixed_dataset();
        let store = Store::new();
        store.bulk_load(ds);
        let applied = stream.len() * prefix_pct as usize / 100;
        for u in &stream[..applied] {
            store.apply(&u.op).unwrap();
        }
        let snap = store.pinned();
        let max_date = SimTime(SimTime::SIM_START.0 + day_offset * 86_400_000);

        for p in 0..snap.person_slots() as u64 {
            let id = PersonId(p);
            prop_assert_eq!(snap.friends(id), snap.friends_iter(id).collect::<Vec<_>>());
            prop_assert_eq!(snap.messages_of(id), snap.messages_of_iter(id).collect::<Vec<_>>());
            prop_assert_eq!(snap.likes_by(id), snap.likes_by_iter(id).collect::<Vec<_>>());
            prop_assert_eq!(snap.forums_of(id), snap.forums_of_iter(id).collect::<Vec<_>>());
            prop_assert_eq!(
                snap.recent_messages_of(id, max_date, 5),
                snap.recent_messages_walk(id, max_date).take(5).collect::<Vec<_>>()
            );
        }
        for f in 0..snap.forum_slots() as u64 {
            let id = ForumId(f);
            prop_assert_eq!(
                snap.posts_in_forum(id),
                snap.posts_in_forum_iter(id).collect::<Vec<_>>()
            );
            prop_assert_eq!(snap.members_of(id), snap.members_of_iter(id).collect::<Vec<_>>());
        }
        for m in 0..snap.message_slots() as u64 {
            let id = MessageId(m);
            prop_assert_eq!(snap.replies_of(id), snap.replies_of_iter(id).collect::<Vec<_>>());
            prop_assert_eq!(snap.likes_of(id), snap.likes_of_iter(id).collect::<Vec<_>>());
        }

        // The pinned snapshot and the per-call-latch snapshot taken at the
        // same timestamp agree (same MVCC semantics, different locking).
        let unpinned = store.snapshot();
        for p in (0..snap.person_slots() as u64).step_by(13) {
            let id = PersonId(p);
            prop_assert_eq!(snap.friends(id), unpinned.friends(id));
            prop_assert_eq!(snap.messages_of(id), unpinned.messages_of(id));
        }
    }
}
