//! Concurrency stress tests: readers and a writer race on the store; MVCC
//! must give every reader a frozen, internally consistent view while the
//! writer streams inserts (the §4 requirement: complex reads run
//! "concurrent with ... an insert workload, under at least read committed
//! transaction semantics" — ours are full snapshots).

use snb_core::update::UpdateOp;
use snb_core::{MessageId, PersonId};
use snb_datagen::{generate, GeneratorConfig};
use snb_store::Store;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

#[test]
fn readers_never_observe_partial_transactions() {
    let ds = generate(GeneratorConfig::with_persons(300).activity(0.4).threads(2)).unwrap();
    let store = Store::new();
    store.bulk_load(&ds);
    let stream = ds.update_stream();

    let done = AtomicBool::new(false);
    let checks = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Writer: replay the whole update stream.
        scope.spawn(|| {
            for u in &stream {
                store.apply(&u.op).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        // Readers: repeatedly snapshot and verify referential integrity
        // *within the snapshot* — every visible comment's parent, author and
        // forum must also be visible (atomic visibility of each insert, and
        // the generator's ordering guarantees between them).
        for _ in 0..3 {
            scope.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    let snap = store.snapshot();
                    let upper = snap.message_slots() as u64;
                    for m in (0..upper).step_by(97) {
                        let Some(meta) = snap.message_meta(MessageId(m)) else { continue };
                        assert!(
                            snap.person(meta.author).is_some(),
                            "visible message {m} with invisible author"
                        );
                        assert!(
                            snap.forum(meta.forum).is_some(),
                            "visible message {m} with invisible forum"
                        );
                        if let Some((parent, root)) = meta.reply_info {
                            assert!(snap.message_meta(parent).is_some());
                            assert!(snap.message_meta(root).is_some());
                        }
                        checks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert!(checks.load(Ordering::Relaxed) > 0, "readers never ran");
}

#[test]
fn snapshot_timestamps_are_monotone_under_writes() {
    let ds = generate(GeneratorConfig::with_persons(200).activity(0.3)).unwrap();
    let store = Store::new();
    store.bulk_load(&ds);
    let stream = ds.update_stream();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            for u in &stream {
                store.apply(&u.op).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        scope.spawn(|| {
            let mut last_ts = 0;
            let mut last_visible = 0usize;
            while !done.load(Ordering::Acquire) {
                let snap = store.snapshot();
                let ts = snap.ts();
                assert!(ts >= last_ts, "snapshot ts went backwards");
                // Visible row count never shrinks (insert-only store).
                let visible = (0..snap.person_slots() as u64)
                    .filter(|&p| snap.person(PersonId(p)).is_some())
                    .count();
                assert!(visible >= last_visible, "visible persons shrank");
                last_ts = ts;
                last_visible = visible;
            }
        });
    });
}

#[test]
fn friend_lists_are_stable_within_a_snapshot() {
    // Reading the same adjacency twice through one snapshot must agree even
    // while a writer inserts friendships between the reads.
    let ds = generate(GeneratorConfig::with_persons(200).activity(0.3)).unwrap();
    let store = Store::new();
    store.bulk_load(&ds);
    let friendships: Vec<_> = ds
        .update_stream()
        .into_iter()
        .filter(|u| matches!(u.op, UpdateOp::AddPerson(_) | UpdateOp::AddFriendship(_)))
        .collect();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            for u in &friendships {
                store.apply(&u.op).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        scope.spawn(|| {
            while !done.load(Ordering::Acquire) {
                let snap = store.snapshot();
                for p in (0..200u64).step_by(17) {
                    let a = snap.friends(PersonId(p));
                    std::thread::yield_now(); // give the writer a window
                    let b = snap.friends(PersonId(p));
                    assert_eq!(a, b, "snapshot view of person {p} changed mid-read");
                }
            }
        });
    });
}
