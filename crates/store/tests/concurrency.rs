//! Concurrency stress tests: readers and a writer race on the store; MVCC
//! must give every reader a frozen, internally consistent view while the
//! writer streams inserts (the §4 requirement: complex reads run
//! "concurrent with ... an insert workload, under at least read committed
//! transaction semantics" — ours are full snapshots).

use snb_core::update::UpdateOp;
use snb_core::{MessageId, PersonId};
use snb_datagen::{generate, GeneratorConfig};
use snb_store::Store;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

#[test]
fn readers_never_observe_partial_transactions() {
    let ds = generate(GeneratorConfig::with_persons(300).activity(0.4).threads(2)).unwrap();
    let store = Store::new();
    store.bulk_load(&ds);
    let stream = ds.update_stream();

    let done = AtomicBool::new(false);
    let checks = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // Writer: replay the whole update stream.
        scope.spawn(|| {
            for u in &stream {
                store.apply(&u.op).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        // Readers: repeatedly snapshot and verify referential integrity
        // *within the snapshot* — every visible comment's parent, author and
        // forum must also be visible (atomic visibility of each insert, and
        // the generator's ordering guarantees between them).
        for _ in 0..3 {
            scope.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    let snap = store.snapshot();
                    let upper = snap.message_slots() as u64;
                    for m in (0..upper).step_by(97) {
                        let Some(meta) = snap.message_meta(MessageId(m)) else { continue };
                        assert!(
                            snap.person(meta.author).is_some(),
                            "visible message {m} with invisible author"
                        );
                        assert!(
                            snap.forum(meta.forum).is_some(),
                            "visible message {m} with invisible forum"
                        );
                        if let Some((parent, root)) = meta.reply_info {
                            assert!(snap.message_meta(parent).is_some());
                            assert!(snap.message_meta(root).is_some());
                        }
                        checks.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert!(checks.load(Ordering::Relaxed) > 0, "readers never ran");
}

#[test]
fn snapshot_timestamps_are_monotone_under_writes() {
    let ds = generate(GeneratorConfig::with_persons(200).activity(0.3)).unwrap();
    let store = Store::new();
    store.bulk_load(&ds);
    let stream = ds.update_stream();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            for u in &stream {
                store.apply(&u.op).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        scope.spawn(|| {
            let mut last_ts = 0;
            let mut last_visible = 0usize;
            while !done.load(Ordering::Acquire) {
                let snap = store.snapshot();
                let ts = snap.ts();
                assert!(ts >= last_ts, "snapshot ts went backwards");
                // Visible row count never shrinks (insert-only store).
                let visible = (0..snap.person_slots() as u64)
                    .filter(|&p| snap.person(PersonId(p)).is_some())
                    .count();
                assert!(visible >= last_visible, "visible persons shrank");
                last_ts = ts;
                last_visible = visible;
            }
        });
    });
}

#[test]
fn friend_lists_are_stable_within_a_snapshot() {
    // Reading the same adjacency twice through one snapshot must agree even
    // while a writer inserts friendships between the reads.
    let ds = generate(GeneratorConfig::with_persons(200).activity(0.3)).unwrap();
    let store = Store::new();
    store.bulk_load(&ds);
    let friendships: Vec<_> = ds
        .update_stream()
        .into_iter()
        .filter(|u| matches!(u.op, UpdateOp::AddPerson(_) | UpdateOp::AddFriendship(_)))
        .collect();
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            for u in &friendships {
                store.apply(&u.op).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        scope.spawn(|| {
            while !done.load(Ordering::Acquire) {
                let snap = store.snapshot();
                for p in (0..200u64).step_by(17) {
                    let a = snap.friends(PersonId(p));
                    std::thread::yield_now(); // give the writer a window
                    let b = snap.friends(PersonId(p));
                    assert_eq!(a, b, "snapshot view of person {p} changed mid-read");
                }
            }
        });
    });
}

// --- PR 5: striped commit pipeline + latch-free pinned reads ---

mod striped {
    use snb_core::dict::names::Gender;
    use snb_core::schema::{Knows, Person};
    use snb_core::time::SimTime;
    use snb_core::update::UpdateOp;
    use snb_core::{PersonId, TagId};
    use snb_store::Store;
    use std::sync::Barrier;

    fn person(id: u64, t: i64) -> Person {
        Person {
            id: PersonId(id),
            first_name: "Karl",
            last_name: "Muller",
            gender: Gender::Male,
            birthday: SimTime(0),
            creation_date: SimTime(t),
            city: 0,
            country: 0,
            browser: "Chrome",
            location_ip: String::new(),
            languages: vec!["de"],
            emails: vec![],
            interests: vec![TagId(1)],
            study_at: None,
            work_at: vec![],
        }
    }

    /// Writer `w`'s stream. Bases differ by a multiple of the stripe count
    /// (64), so the i-th entity of *every* writer maps to the same lock
    /// stripe: maximal forced contention on the striped writer locks,
    /// while the entity ids themselves stay disjoint.
    fn colliding_stream(w: u64) -> Vec<UpdateOp> {
        let base = 1_000 + w * 64;
        let mut ops = Vec::new();
        for i in 0..32u64 {
            ops.push(UpdateOp::AddPerson(person(base + i, (base + i) as i64)));
            if i > 0 {
                ops.push(UpdateOp::AddFriendship(Knows {
                    a: PersonId(base + i - 1),
                    b: PersonId(base + i),
                    creation_date: SimTime((base + 100 + i) as i64),
                }));
            }
        }
        ops
    }

    /// Four writers whose entities collide stripe-for-stripe must still
    /// produce exactly the serial result, and every op must commit
    /// (contention may block a writer, never corrupt or reject it).
    #[test]
    fn same_stripe_writers_serialize_correctly() {
        const W: u64 = 4;
        let streams: Vec<Vec<UpdateOp>> = (0..W).map(colliding_stream).collect();
        let concurrent = Store::new();
        let start = Barrier::new(W as usize);
        std::thread::scope(|scope| {
            for ops in &streams {
                let (store, start) = (&concurrent, &start);
                scope.spawn(move || {
                    start.wait();
                    for op in ops {
                        store.apply(op).expect("colliding-stripe op must still commit");
                    }
                });
            }
        });
        let total: usize = streams.iter().map(Vec::len).sum();
        assert_eq!(concurrent.counters().commits.get() as usize, total);
        assert_eq!(concurrent.counters().conflicts.get(), 0);
        // `store.write.shard_conflicts` is timing-dependent (usually zero
        // on a single hardware thread): read, don't assert.
        let conflicts = concurrent.counters().snapshot();
        assert!(conflicts.iter().any(|&(n, _)| n == "store.write.shard_conflicts"));

        let serial = Store::new();
        for ops in &streams {
            for op in ops {
                serial.apply(op).unwrap();
            }
        }
        let a = concurrent.pinned();
        let b = serial.pinned();
        assert_eq!(a.person_slots(), b.person_slots());
        for i in 0..a.person_slots() as u64 {
            let p = PersonId(i);
            assert_eq!(a.friends(p), b.friends(p), "friends of {p}");
            assert_eq!(format!("{:?}", a.person_ref(p)), format!("{:?}", b.person_ref(p)));
        }
    }

    /// Pins taken during a write storm observe a monotone history: each
    /// pin's horizon and visible-person count never decrease, the visible
    /// set equals the pin's horizon exactly (person i commits at ts i+1),
    /// a single pin's reads are stable over time, and the pinned reader
    /// never stops the writer.
    #[test]
    fn interleaved_pins_stay_frozen_under_writes() {
        let store = Store::new();
        let ops: Vec<UpdateOp> =
            (0..256u64).map(|i| UpdateOp::AddPerson(person(i, i as i64))).collect();
        let start = Barrier::new(2);
        std::thread::scope(|scope| {
            let (store_ref, start_ref, ops_ref) = (&store, &start, &ops);
            scope.spawn(move || {
                start_ref.wait();
                for op in ops_ref {
                    store_ref.apply(op).unwrap();
                }
            });
            start.wait();
            let mut last_ts = 0u64;
            let mut last_visible = 0usize;
            loop {
                let pin = store.pinned();
                assert!(pin.ts() >= last_ts, "horizon went backwards");
                last_ts = pin.ts();
                let visible =
                    (0..256u64).filter(|&i| pin.person_ref(PersonId(i)).is_some()).count();
                assert!(visible >= last_visible, "a committed person disappeared");
                assert_eq!(visible as u64, pin.ts(), "visible set must equal the pin horizon");
                last_visible = visible;
                let again = (0..256u64).filter(|&i| pin.person_ref(PersonId(i)).is_some()).count();
                assert_eq!(visible, again, "a held pin drifted");
                if visible == 256 {
                    break;
                }
                std::thread::yield_now();
            }
        });
        assert_eq!(store.counters().commits.get(), 256);
        assert!(store.counters().read_latchfree.get() > 0);
    }
}

// --- PR 7: out-of-order publication behind a visibility watermark ---

mod watermark {
    use proptest::prelude::*;
    use snb_core::dict::names::Gender;
    use snb_core::schema::Person;
    use snb_core::time::SimTime;
    use snb_core::update::UpdateOp;
    use snb_core::{PersonId, TagId};
    use snb_store::mvcc::CommitClock;
    use snb_store::Store;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    fn person(id: u64, t: i64) -> Person {
        Person {
            id: PersonId(id),
            first_name: "Karl",
            last_name: "Muller",
            gender: Gender::Male,
            birthday: SimTime(0),
            creation_date: SimTime(t),
            city: 0,
            country: 0,
            browser: "Chrome",
            location_ip: String::new(),
            languages: vec!["de"],
            emails: vec![],
            interests: vec![TagId(1)],
            study_at: None,
            work_at: vec![],
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Clock-level snapshot rule: publisher threads publish shuffled
        /// timestamp batches genuinely out of order while a sampler
        /// asserts the watermark is monotone and never outruns the
        /// contiguous prefix of publishes that have *started*. The
        /// started-set is a superset of the completed-set (each publisher
        /// marks intent before calling `publish`), so `horizon ≤ started
        /// prefix` failing can only mean the watermark jumped a gap.
        #[test]
        fn watermark_advances_only_over_contiguous_published_prefix(
            seed in any::<u64>(),
            writers in 2usize..=4,
            per_writer in 4u64..=48,
        ) {
            let clock = CommitClock::new();
            let k = writers as u64 * per_writer;
            let mut order: Vec<u64> = (0..k).map(|_| clock.reserve()).collect();
            // Fisher–Yates with the deterministic proptest RNG, so each
            // case exercises a different global publish order.
            let mut rng = proptest::TestRng::new(seed);
            for i in (1..order.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            let started: Vec<AtomicBool> = (0..=k).map(|_| AtomicBool::new(false)).collect();
            let writers_left = AtomicUsize::new(writers);
            std::thread::scope(|scope| {
                for w in 0..writers {
                    let mine: Vec<u64> =
                        order.iter().copied().skip(w).step_by(writers).collect();
                    let (clock, started, writers_left) = (&clock, &started, &writers_left);
                    scope.spawn(move || {
                        for ts in mine {
                            started[ts as usize].store(true, Ordering::SeqCst);
                            clock.publish(ts);
                            std::thread::yield_now();
                        }
                        writers_left.fetch_sub(1, Ordering::AcqRel);
                    });
                }
                let mut last = 0u64;
                loop {
                    let finished = writers_left.load(Ordering::Acquire) == 0;
                    let horizon = clock.snapshot_ts();
                    // Read the horizon *before* scanning the started-set:
                    // the set only grows, so the scanned prefix is at
                    // least as long as it was when the horizon was read.
                    let prefix =
                        (1..=k).take_while(|&t| started[t as usize].load(Ordering::SeqCst)).count()
                            as u64;
                    assert!(horizon >= last, "watermark went backwards: {horizon} < {last}");
                    assert!(
                        horizon <= prefix,
                        "watermark {horizon} outran the contiguous started prefix {prefix}"
                    );
                    last = horizon;
                    if finished {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
            prop_assert_eq!(clock.snapshot_ts(), k);
        }

        /// Store-level snapshot rule: concurrent writers commit disjoint
        /// person streams — so publication happens out of order — while a
        /// pinned reader checks that every pin's visible person count
        /// equals its horizon *exactly* (each commit inserts exactly one
        /// person). `count < ts` would mean the watermark exposed a
        /// half-applied gap; `count > ts` would mean a pin leaked an
        /// uncommitted row. The final store matches a serial oracle
        /// pointwise (concurrent-apply == serial-apply).
        #[test]
        fn pinned_readers_see_contiguous_history_under_out_of_order_writers(
            writers in 2usize..=4,
            per_writer in 8u64..=48,
        ) {
            let store = Store::new();
            let total = writers as u64 * per_writer;
            std::thread::scope(|scope| {
                for w in 0..writers {
                    let store = &store;
                    let base = w as u64 * per_writer;
                    scope.spawn(move || {
                        for i in 0..per_writer {
                            let op = UpdateOp::AddPerson(person(base + i, (base + i) as i64));
                            store.apply(&op).expect("disjoint person stream must commit");
                        }
                    });
                }
                let mut last_ts = 0u64;
                loop {
                    let pin = store.pinned();
                    let ts = pin.ts();
                    assert!(ts >= last_ts, "pin horizon went backwards");
                    last_ts = ts;
                    let visible = (0..total)
                        .filter(|&i| pin.person_ref(PersonId(i)).is_some())
                        .count() as u64;
                    assert_eq!(
                        visible, ts,
                        "visible persons must equal the pin horizon exactly"
                    );
                    if visible == total {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
            prop_assert_eq!(store.counters().commits.get(), total);

            let serial = Store::new();
            for w in 0..writers as u64 {
                for i in 0..per_writer {
                    let id = w * per_writer + i;
                    serial.apply(&UpdateOp::AddPerson(person(id, id as i64))).unwrap();
                }
            }
            let a = store.pinned();
            let b = serial.pinned();
            prop_assert_eq!(a.person_slots(), b.person_slots());
            for i in 0..total {
                let p = PersonId(i);
                prop_assert_eq!(
                    format!("{:?}", a.person_ref(p)),
                    format!("{:?}", b.person_ref(p))
                );
            }
        }
    }
}
