//! # snb-queries
//!
//! The SNB-Interactive query workload: the 14 complex read-only queries of
//! the paper's Appendix, the 7 short read-only queries (profile/post
//! lookups), and the 8 transactional updates — each over a
//! [`snb_store::PinnedSnapshot`] (latch pinned once, zero-allocation
//! borrowing scans), with an intended-plan engine and a scan-based naive
//! engine (see [`engine`]). Traversals reuse a per-thread [`QueryScratch`]
//! instead of allocating visited sets per query (see [`scratch`]).

pub mod complex;
pub mod engine;
pub mod helpers;
pub mod params;
pub mod scratch;
pub mod sharded;
pub mod short;
pub mod update;

pub use engine::Engine;
pub use params::{ComplexQuery, ShortQuery};
pub use scratch::{with_scratch, QueryScratch};

#[cfg(test)]
pub(crate) mod testutil {
    use snb_core::time::SimTime;
    use snb_core::PersonId;
    use std::sync::OnceLock;

    pub(crate) struct Fixture {
        pub ds: snb_datagen::Dataset,
        pub store: snb_store::Store,
    }

    /// Shared generated dataset + fully loaded store for query tests.
    pub(crate) fn fixture() -> &'static Fixture {
        static F: OnceLock<Fixture> = OnceLock::new();
        F.get_or_init(|| {
            let ds = snb_datagen::generate(
                snb_datagen::GeneratorConfig::with_persons(350).activity(0.5).seed(7),
            )
            .unwrap();
            let store = snb_store::Store::new();
            store.load_full(&ds);
            Fixture { ds, store }
        })
    }

    /// The highest-degree person — a worst-case-ish query anchor.
    pub(crate) fn busy_person(f: &Fixture) -> PersonId {
        let mut deg = vec![0u32; f.ds.persons.len()];
        for k in &f.ds.knows {
            deg[k.a.index()] += 1;
            deg[k.b.index()] += 1;
        }
        PersonId(deg.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u64)
    }

    /// A date two years into the simulation — most data exists by then.
    pub(crate) fn mid_date() -> SimTime {
        SimTime::from_ymd(2012, 1, 1)
    }
}
