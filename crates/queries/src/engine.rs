//! Execution engines.
//!
//! §3 motivates the workload by choke points — above all, choosing the
//! right plan. We expose two engines over the same store:
//!
//! - [`Engine::Intended`]: the per-query intended plans (Fig. 4/6 style):
//!   index-nested-loop joins out of the small friendship side, date-ordered
//!   index scans with early termination.
//! - [`Engine::Naive`]: what a system without the right indexes or join
//!   orders runs — full table scans with hash probes and full sorts.
//!
//! Both produce identical results (differentially tested per query), so the
//! pair doubles as the evaluation's "two systems" comparison and as a
//! correctness oracle.

/// Which plan family to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Index-based intended plans.
    Intended,
    /// Scan-based baseline plans.
    Naive,
}

impl Engine {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Intended => "intended",
            Engine::Naive => "naive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Engine::Intended.name(), "intended");
        assert_eq!(Engine::Naive.name(), "naive");
    }
}
