//! Q10 — "Friend recommendation".
//!
//! Find top-10 friends-of-friends (excluding direct friends and the person)
//! who post much about the person's interests and little about anything
//! else, restricted by horoscope sign: born in the given month on day ≥ 21,
//! or in the next month on day < 22. Score = (posts with a common interest
//! tag) − (posts without). Descending by score, ascending by id.

use crate::engine::Engine;
use crate::helpers::load_two_hop;
use crate::params::Q10Params;
use crate::scratch::with_scratch;
use snb_core::{MessageId, PersonId, TagId};
use snb_store::PinnedSnapshot;
use std::collections::{HashMap, HashSet};

/// Result limit.
const LIMIT: usize = 10;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q10Row {
    /// The recommended person.
    pub person: PersonId,
    /// First name.
    pub first_name: &'static str,
    /// Last name.
    pub last_name: &'static str,
    /// Common-interest score.
    pub score: i64,
}

/// Execute Q10.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q10Params) -> Vec<Q10Row> {
    let interests: HashSet<TagId> = match snap.person(p.person) {
        Some(me) => me.interests.iter().copied().collect(),
        None => return Vec::new(),
    };
    let cands = horoscope_candidates(snap, p);
    let scores = match engine {
        Engine::Intended => intended(snap, &cands, &interests),
        Engine::Naive => naive(snap, &cands, &interests),
    };
    let mut rows: Vec<Q10Row> = cands
        .iter()
        .filter_map(|&c| {
            let person = snap.person(PersonId(c))?;
            Some(Q10Row {
                person: PersonId(c),
                first_name: person.first_name,
                last_name: person.last_name,
                score: scores.get(&c).copied().unwrap_or(0),
            })
        })
        .collect();
    rows.sort_by_key(|r| (std::cmp::Reverse(r.score), r.person));
    rows.truncate(LIMIT);
    rows
}

/// Strict friends-of-friends passing the horoscope restriction.
pub(crate) fn horoscope_candidates(snap: &PinnedSnapshot<'_>, p: &Q10Params) -> Vec<u64> {
    let next_month = if p.month == 12 { 1 } else { p.month + 1 };
    with_scratch(|sx| {
        load_two_hop(snap, sx, p.person);
        sx.two
            .iter()
            .copied()
            .filter(|&c| {
                snap.person_ref(PersonId(c)).is_some_and(|pr| {
                    let (_, m, d) = pr.birthday.to_ymd();
                    (m == p.month && d >= 21) || (m == next_month && d < 22)
                })
            })
            .collect()
    })
}

fn score_one(common: i64, total: i64) -> i64 {
    common - (total - common)
}

/// Intended: per candidate, scan their posts-only covering index — no
/// per-message row probe just to discard replies (only the tag lookup
/// touches the message table).
pub(crate) fn intended(
    snap: &PinnedSnapshot<'_>,
    cands: &[u64],
    interests: &HashSet<TagId>,
) -> HashMap<u64, i64> {
    let mut scores = HashMap::with_capacity(cands.len());
    for &c in cands {
        let mut common = 0i64;
        let mut total = 0i64;
        for (msg, _) in snap.posts_of_iter(PersonId(c)) {
            total += 1;
            if snap.message_tags(MessageId(msg)).iter().any(|t| interests.contains(t)) {
                common += 1;
            }
        }
        scores.insert(c, score_one(common, total));
    }
    scores
}

/// Naive: one full message scan grouping per candidate.
pub(crate) fn naive(
    snap: &PinnedSnapshot<'_>,
    cands: &[u64],
    interests: &HashSet<TagId>,
) -> HashMap<u64, i64> {
    let cand_set: HashSet<u64> = cands.iter().copied().collect();
    let mut agg: HashMap<u64, (i64, i64)> = HashMap::new();
    for m in 0..snap.message_slots() as u64 {
        let id = MessageId(m);
        let Some(meta) = snap.message_meta(id) else { continue };
        if meta.reply_info.is_some() || !cand_set.contains(&meta.author.raw()) {
            continue;
        }
        let e = agg.entry(meta.author.raw()).or_default();
        e.1 += 1;
        if snap.message_tags(id).iter().any(|t| interests.contains(t)) {
            e.0 += 1;
        }
    }
    cands
        .iter()
        .map(|&c| {
            let (common, total) = agg.get(&c).copied().unwrap_or((0, 0));
            (c, score_one(common, total))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};

    fn params() -> Q10Params {
        // Use a month that certainly has births: probe a few.
        let f = fixture();
        let person = busy_person(f);
        Q10Params { person, month: 6 }
    }

    #[test]
    fn intended_and_naive_agree_across_months() {
        let f = fixture();
        let snap = f.store.pinned();
        let person = busy_person(f);
        for month in [1, 6, 12] {
            let p = Q10Params { person, month };
            assert_eq!(
                run(&snap, Engine::Intended, &p),
                run(&snap, Engine::Naive, &p),
                "month {month}"
            );
        }
    }

    #[test]
    fn candidates_are_strict_friends_of_friends() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        let (one, two) = with_scratch(|sx| {
            load_two_hop(&snap, sx, p.person);
            (sx.one.clone(), sx.two.clone())
        });
        for r in run(&snap, Engine::Intended, &p) {
            assert!(two.contains(&r.person.raw()));
            assert!(!one.contains(&r.person.raw()), "direct friends excluded");
            assert_ne!(r.person, p.person);
        }
    }

    #[test]
    fn horoscope_window_is_respected() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        for r in run(&snap, Engine::Intended, &p) {
            let (_, m, d) = snap.person(r.person).unwrap().birthday.to_ymd();
            assert!((m == p.month && d >= 21) || (m == p.month + 1 && d < 22), "{m}-{d}");
        }
    }

    #[test]
    fn december_wraps_to_january() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = Q10Params { person: busy_person(f), month: 12 };
        for r in run(&snap, Engine::Intended, &p) {
            let (_, m, d) = snap.person(r.person).unwrap().birthday.to_ymd();
            assert!((m == 12 && d >= 21) || (m == 1 && d < 22));
        }
    }

    #[test]
    fn scores_are_sorted_descending() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = run(&snap, Engine::Intended, &params());
        for w in rows.windows(2) {
            assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].person < w[1].person)
            );
        }
    }
}
