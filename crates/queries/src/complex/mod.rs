//! The 14 complex read-only queries (paper Appendix).
//!
//! Each query module exposes `run(snapshot, engine, &params) -> Vec<Row>`
//! with the query's LDBC result ordering and limit. The `Intended` engine
//! executes the per-query intended plan; the `Naive` engine executes a
//! scan-based plan over the same snapshot. The two are differentially
//! tested against each other on generated datasets, so each serves as the
//! other's oracle.

pub mod q1;
pub mod q10;
pub mod q11;
pub mod q12;
pub mod q13;
pub mod q14;
pub mod q2;
pub mod q3;
pub mod q4;
pub mod q5;
pub mod q6;
pub mod q7;
pub mod q8;
pub mod q9;

use crate::engine::Engine;
use crate::params::ComplexQuery;
use snb_store::PinnedSnapshot;

/// Execute any complex query; returns the number of result rows (the
/// uniform interface the workload driver uses — latency is what the
/// benchmark measures, the rows themselves are checked by tests).
/// Result-row counts tick the current [`snb_obs::QueryProfile`] scope.
pub fn run_complex(snap: &PinnedSnapshot<'_>, engine: Engine, q: &ComplexQuery) -> usize {
    let rows = dispatch(snap, engine, q);
    snb_obs::tick_result_rows(rows as u64);
    rows
}

fn dispatch(snap: &PinnedSnapshot<'_>, engine: Engine, q: &ComplexQuery) -> usize {
    match q {
        ComplexQuery::Q1(p) => q1::run(snap, engine, p).len(),
        ComplexQuery::Q2(p) => q2::run(snap, engine, p).len(),
        ComplexQuery::Q3(p) => q3::run(snap, engine, p).len(),
        ComplexQuery::Q4(p) => q4::run(snap, engine, p).len(),
        ComplexQuery::Q5(p) => q5::run(snap, engine, p).len(),
        ComplexQuery::Q6(p) => q6::run(snap, engine, p).len(),
        ComplexQuery::Q7(p) => q7::run(snap, engine, p).len(),
        ComplexQuery::Q8(p) => q8::run(snap, engine, p).len(),
        ComplexQuery::Q9(p) => q9::run(snap, engine, p).len(),
        ComplexQuery::Q10(p) => q10::run(snap, engine, p).len(),
        ComplexQuery::Q11(p) => q11::run(snap, engine, p).len(),
        ComplexQuery::Q12(p) => q12::run(snap, engine, p).len(),
        ComplexQuery::Q13(p) => usize::from(q13::run(snap, engine, p) >= 0),
        ComplexQuery::Q14(p) => q14::run(snap, engine, p).len(),
    }
}
