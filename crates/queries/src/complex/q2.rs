//! Q2 — "Find the newest 20 posts and comments from your friends".
//!
//! Given a start person, find the most recent messages created by their
//! friends at or before a given date. Top 20, descending by creation date,
//! ascending by message id. The intended plan (paper Fig. 6a) is an
//! index-nested-loop from the friend list into the per-person date-ordered
//! message index with a shared top-k threshold.

use crate::engine::Engine;
use crate::helpers::{load_friends, TopK};
use crate::params::Q2Params;
use crate::scratch::with_scratch;
use snb_core::time::SimTime;
use snb_core::{MessageId, PersonId};
use snb_store::PinnedSnapshot;
use std::cmp::Reverse;

/// Result limit.
const LIMIT: usize = 20;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q2Row {
    /// Message author.
    pub author: PersonId,
    /// Author's first name.
    pub first_name: &'static str,
    /// Author's last name.
    pub last_name: &'static str,
    /// The message.
    pub message: MessageId,
    /// Message content (or image file for photos).
    pub content: String,
    /// Message creation date.
    pub creation_date: SimTime,
}

/// Execute Q2.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q2Params) -> Vec<Q2Row> {
    let top = match engine {
        Engine::Intended => intended(snap, p),
        Engine::Naive => naive(snap, p),
    };
    materialize(snap, top)
}

type Key = (Reverse<SimTime>, u64);

fn intended(snap: &PinnedSnapshot<'_>, p: &Q2Params) -> Vec<(Key, ())> {
    let mut top: TopK<Key, ()> = TopK::new(LIMIT);
    for (friend, _) in snap.friends_iter(p.person) {
        // Each friend contributes at most LIMIT candidates; the walk is
        // newest-first so the first rejected key ends the scan.
        for (msg, date) in snap.recent_messages_walk(PersonId(friend), p.max_date).take(LIMIT) {
            let key = (Reverse(date), msg);
            if !top.would_accept(&key) {
                break;
            }
            top.push(key, ());
        }
    }
    top.into_sorted()
}

fn naive(snap: &PinnedSnapshot<'_>, p: &Q2Params) -> Vec<(Key, ())> {
    with_scratch(|sx| {
        load_friends(snap, sx, p.person);
        let mut top: TopK<Key, ()> = TopK::new(LIMIT);
        // Full message-table scan with a visited-map probe into the
        // friend marks (level 1 = direct friend).
        for m in 0..snap.message_slots() as u64 {
            if let Some(meta) = snap.message_meta(MessageId(m)) {
                if meta.creation_date <= p.max_date && sx.level_of(meta.author.raw()) == Some(1) {
                    top.push((Reverse(meta.creation_date), m), ());
                }
            }
        }
        top.into_sorted()
    })
}

fn materialize(snap: &PinnedSnapshot<'_>, top: Vec<(Key, ())>) -> Vec<Q2Row> {
    top.into_iter()
        .filter_map(|((Reverse(date), msg), ())| {
            // Borrow the rows: cloning a MessageRow copies content + tags
            // and cloning a Person copies four Vecs, but the result row
            // only needs the author id, interned names, and the content
            // (one copy, made once below).
            let row = snap.message_ref(MessageId(msg))?;
            let author = snap.person_ref(row.author)?;
            let content = row
                .image_file
                .as_deref()
                .filter(|_| row.content.is_empty())
                .unwrap_or(&row.content)
                .to_string();
            Some(Q2Row {
                author: row.author,
                first_name: author.first_name,
                last_name: author.last_name,
                message: MessageId(msg),
                content,
                creation_date: date,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture, mid_date};

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = Q2Params { person: busy_person(f), max_date: mid_date() };
        let a = run(&snap, Engine::Intended, &p);
        let b = run(&snap, Engine::Naive, &p);
        assert_eq!(a, b);
        assert_eq!(a.len(), LIMIT, "busy person should fill the result");
    }

    #[test]
    fn results_are_friend_messages_before_date() {
        let f = fixture();
        let snap = f.store.pinned();
        let start = busy_person(f);
        let p = Q2Params { person: start, max_date: mid_date() };
        let friends: Vec<u64> = snap.friends_iter(start).map(|(id, _)| id).collect();
        for r in run(&snap, Engine::Intended, &p) {
            assert!(friends.contains(&r.author.raw()));
            assert!(r.creation_date <= p.max_date);
            assert!(!r.content.is_empty());
        }
    }

    #[test]
    fn ordering_is_date_desc_then_id_asc() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = Q2Params { person: busy_person(f), max_date: mid_date() };
        let rows = run(&snap, Engine::Intended, &p);
        for w in rows.windows(2) {
            assert!(
                w[0].creation_date > w[1].creation_date
                    || (w[0].creation_date == w[1].creation_date && w[0].message < w[1].message)
            );
        }
    }

    #[test]
    fn early_date_yields_fewer_results() {
        let f = fixture();
        let snap = f.store.pinned();
        let early =
            Q2Params { person: busy_person(f), max_date: snb_core::SimTime::from_ymd(2010, 2, 1) };
        let rows = run(&snap, Engine::Intended, &early);
        assert!(rows.len() < LIMIT, "almost no content exists that early");
    }
}
