//! Q12 — "Expert Search".
//!
//! Find friends of a person who have replied the most to posts with a tag
//! in a given tag class (or any of its descendant classes). Top 20 persons,
//! descending by reply count, ascending by id; include the matched tag
//! names.

use crate::engine::Engine;
use crate::helpers::load_friends;
use crate::params::Q12Params;
use crate::scratch::with_scratch;
use snb_core::dict::Dictionaries;
use snb_core::{MessageId, PersonId};
use snb_store::PinnedSnapshot;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Result limit.
const LIMIT: usize = 20;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q12Row {
    /// The expert friend.
    pub person: PersonId,
    /// First name.
    pub first_name: &'static str,
    /// Last name.
    pub last_name: &'static str,
    /// Tag names their replies touched (sorted).
    pub tags: Vec<String>,
    /// Number of matching replies.
    pub count: u32,
}

/// Execute Q12.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q12Params) -> Vec<Q12Row> {
    let dicts = Dictionaries::global();
    let classes: HashSet<usize> = dicts.tags.class_descendants(p.tag_class).into_iter().collect();
    let per_friend = match engine {
        Engine::Intended => intended(snap, p, &classes),
        Engine::Naive => naive(snap, p, &classes),
    };
    let mut rows: Vec<Q12Row> = per_friend
        .into_iter()
        .filter(|(_, (count, _))| *count > 0)
        .filter_map(|(friend, (count, tags))| {
            let person = snap.person(PersonId(friend))?;
            Some(Q12Row {
                person: PersonId(friend),
                first_name: person.first_name,
                last_name: person.last_name,
                tags: tag_names(&tags),
                count,
            })
        })
        .collect();
    rows.sort_by_key(|r| (std::cmp::Reverse(r.count), r.person));
    rows.truncate(LIMIT);
    rows
}

/// Per-friend aggregate: reply count plus the matched tag *ids* (names are
/// materialized from the global dictionary only when rows are built, so a
/// sharded merge can union aggregates without shipping strings).
pub(crate) type Agg = HashMap<u64, (u32, BTreeSet<u64>)>;

/// Sorted tag names for a set of tag ids.
pub(crate) fn tag_names(tags: &BTreeSet<u64>) -> Vec<String> {
    let dicts = Dictionaries::global();
    let mut names: Vec<String> =
        tags.iter().map(|&t| dicts.tags.tag(t as usize).name.clone()).collect();
    names.sort();
    names
}

/// Count a comment if its direct parent is a *post* tagged inside the class
/// subtree; collect the matching tag ids.
fn score_comment(
    snap: &PinnedSnapshot<'_>,
    comment: MessageId,
    classes: &HashSet<usize>,
    entry: &mut (u32, BTreeSet<u64>),
) {
    let dicts = Dictionaries::global();
    let Some(meta) = snap.message_meta(comment) else { return };
    let Some((parent, _)) = meta.reply_info else { return };
    let Some(pmeta) = snap.message_meta(parent) else { return };
    if pmeta.reply_info.is_some() {
        return; // parent must be a post, not a comment
    }
    let matched: Vec<u64> = snap
        .message_tags(parent)
        .iter()
        .filter(|t| classes.contains(&dicts.tags.tag(t.index()).class))
        .map(|t| t.raw())
        .collect();
    if !matched.is_empty() {
        entry.0 += 1;
        entry.1.extend(matched);
    }
}

/// Intended: per friend, scan their messages picking comments.
pub(crate) fn intended(snap: &PinnedSnapshot<'_>, p: &Q12Params, classes: &HashSet<usize>) -> Agg {
    let mut agg: Agg = HashMap::new();
    with_scratch(|sx| {
        load_friends(snap, sx, p.person);
        for &friend in &sx.one {
            let entry = agg.entry(friend).or_default();
            for (msg, _) in snap.messages_of_iter(PersonId(friend)) {
                score_comment(snap, MessageId(msg), classes, entry);
            }
        }
    });
    agg
}

/// Naive: full message scan probing the friend marks.
pub(crate) fn naive(snap: &PinnedSnapshot<'_>, p: &Q12Params, classes: &HashSet<usize>) -> Agg {
    let mut agg: Agg = HashMap::new();
    with_scratch(|sx| {
        load_friends(snap, sx, p.person);
        for m in 0..snap.message_slots() as u64 {
            let Some(meta) = snap.message_meta(MessageId(m)) else { continue };
            if meta.reply_info.is_some() && sx.level_of(meta.author.raw()) == Some(1) {
                let entry = agg.entry(meta.author.raw()).or_default();
                score_comment(snap, MessageId(m), classes, entry);
            }
        }
    });
    agg.retain(|_, (c, _)| *c > 0);
    // Intended seeds every friend with a zero entry; align by dropping them
    // there too at the caller (rows filter on count > 0).
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};

    fn params() -> Q12Params {
        let dicts = Dictionaries::global();
        Q12Params {
            person: busy_person(fixture()),
            tag_class: dicts.tags.class_by_name("MusicalArtist").unwrap(),
        }
    }

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        assert_eq!(run(&snap, Engine::Intended, &p), run(&snap, Engine::Naive, &p));
    }

    #[test]
    fn experts_are_friends_with_positive_counts() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        let friends: Vec<u64> = snap.friends_iter(p.person).map(|(id, _)| id).collect();
        let rows = run(&snap, Engine::Intended, &p);
        for r in &rows {
            assert!(friends.contains(&r.person.raw()));
            assert!(r.count > 0);
            assert!(!r.tags.is_empty());
        }
    }

    #[test]
    fn root_class_thing_catches_more_than_a_leaf() {
        let f = fixture();
        let snap = f.store.pinned();
        let person = busy_person(f);
        let dicts = Dictionaries::global();
        let thing = dicts.tags.class_by_name("Thing").unwrap();
        let leaf = dicts.tags.class_by_name("Programming").unwrap();
        let all: u32 = run(&snap, Engine::Intended, &Q12Params { person, tag_class: thing })
            .iter()
            .map(|r| r.count)
            .sum();
        let few: u32 = run(&snap, Engine::Intended, &Q12Params { person, tag_class: leaf })
            .iter()
            .map(|r| r.count)
            .sum();
        assert!(all >= few);
        assert!(all > 0, "Thing subtree covers every tag");
    }
}
