//! Q7 — "Recent likes".
//!
//! For the given person, get the most recent likes on any of their
//! messages: top 20 ordered descending by like date then ascending by liker
//! id, one row per liker (their most recent like), with the latency between
//! the message and the like, flagging likers from outside the person's
//! direct connections.

use crate::engine::Engine;
use crate::params::Q7Params;
use snb_core::time::{SimTime, MILLIS_PER_MINUTE};
use snb_core::{MessageId, PersonId};
use snb_store::PinnedSnapshot;
use std::collections::HashMap;

/// Result limit.
const LIMIT: usize = 20;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q7Row {
    /// The liker.
    pub liker: PersonId,
    /// Liker first name.
    pub first_name: &'static str,
    /// Liker last name.
    pub last_name: &'static str,
    /// When the like happened.
    pub like_date: SimTime,
    /// The liked message.
    pub message: MessageId,
    /// Minutes between message creation and the like.
    pub latency_minutes: i64,
    /// True if the liker is *not* a direct friend of the person.
    pub is_new: bool,
}

/// Execute Q7.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q7Params) -> Vec<Q7Row> {
    // liker -> (like date, message) keeping the most recent like (smallest
    // message id on ties).
    let latest = match engine {
        Engine::Intended => intended(snap, p),
        Engine::Naive => naive(snap, p),
    };
    let mut rows: Vec<Q7Row> = latest
        .into_iter()
        .filter_map(|(liker, (date, msg))| {
            let lp = snap.person(PersonId(liker))?;
            let message = snap.message_meta(MessageId(msg))?;
            Some(Q7Row {
                liker: PersonId(liker),
                first_name: lp.first_name,
                last_name: lp.last_name,
                like_date: date,
                message: MessageId(msg),
                latency_minutes: date.since(message.creation_date) / MILLIS_PER_MINUTE,
                is_new: !snap.are_friends(p.person, PersonId(liker)),
            })
        })
        .collect();
    rows.sort_by_key(|r| (std::cmp::Reverse(r.like_date), r.liker));
    rows.truncate(LIMIT);
    rows
}

fn keep_latest(latest: &mut HashMap<u64, (SimTime, u64)>, liker: u64, date: SimTime, msg: u64) {
    match latest.entry(liker) {
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert((date, msg));
        }
        std::collections::hash_map::Entry::Occupied(mut e) => {
            if (date, std::cmp::Reverse(msg)) > (e.get().0, std::cmp::Reverse(e.get().1)) {
                e.insert((date, msg));
            }
        }
    }
}

/// Intended: scan the person's message index, then each message's like list.
fn intended(snap: &PinnedSnapshot<'_>, p: &Q7Params) -> HashMap<u64, (SimTime, u64)> {
    let mut latest = HashMap::new();
    for (msg, _) in snap.messages_of_iter(p.person) {
        for (liker, date) in snap.likes_of_iter(MessageId(msg)) {
            keep_latest(&mut latest, liker, date, msg);
        }
    }
    latest
}

/// Naive: scan every person's given-likes list, probing the target author.
fn naive(snap: &PinnedSnapshot<'_>, p: &Q7Params) -> HashMap<u64, (SimTime, u64)> {
    let mut latest = HashMap::new();
    for liker in 0..snap.person_slots() as u64 {
        for (msg, date) in snap.likes_by_iter(PersonId(liker)) {
            if snap.message_meta(MessageId(msg)).is_some_and(|m| m.author == p.person) {
                keep_latest(&mut latest, liker, date, msg);
            }
        }
    }
    latest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};

    fn params() -> Q7Params {
        Q7Params { person: busy_person(fixture()) }
    }

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        assert_eq!(run(&snap, Engine::Intended, &p), run(&snap, Engine::Naive, &p));
    }

    #[test]
    fn busy_person_has_recent_likes() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = run(&snap, Engine::Intended, &params());
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.latency_minutes >= 0, "like precedes message");
        }
        for w in rows.windows(2) {
            assert!(
                w[0].like_date > w[1].like_date
                    || (w[0].like_date == w[1].like_date && w[0].liker < w[1].liker)
            );
        }
    }

    #[test]
    fn one_row_per_liker() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = run(&snap, Engine::Intended, &params());
        let mut likers: Vec<u64> = rows.iter().map(|r| r.liker.raw()).collect();
        likers.sort_unstable();
        likers.dedup();
        assert_eq!(likers.len(), rows.len());
    }

    #[test]
    fn is_new_matches_friendship() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        for r in run(&snap, Engine::Intended, &p) {
            assert_eq!(r.is_new, !snap.are_friends(p.person, r.liker));
        }
    }
}
