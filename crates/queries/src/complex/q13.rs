//! Q13 — "Single shortest path".
//!
//! Given two persons, find the length of the shortest path between them in
//! the subgraph induced by the `knows` relationship; −1 if unreachable.

use crate::engine::Engine;
use crate::params::Q13Params;
use snb_core::PersonId;
use snb_store::PinnedSnapshot;
#[cfg(test)]
use std::collections::VecDeque;
use std::collections::{HashMap, HashSet};

/// Execute Q13; returns the path length, 0 for identical endpoints, or −1.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q13Params) -> i32 {
    if p.person_x == p.person_y {
        return 0;
    }
    match engine {
        Engine::Intended => bidirectional_bfs(snap, p),
        Engine::Naive => level_scan_bfs(snap, p),
    }
}

/// Intended: bidirectional BFS — expand the smaller frontier each round;
/// meets in the middle with O(b^(d/2)) work instead of O(b^d).
fn bidirectional_bfs(snap: &PinnedSnapshot<'_>, p: &Q13Params) -> i32 {
    let mut dist_x: HashMap<u64, u32> = HashMap::from([(p.person_x.raw(), 0)]);
    let mut dist_y: HashMap<u64, u32> = HashMap::from([(p.person_y.raw(), 0)]);
    let mut frontier_x = vec![p.person_x.raw()];
    let mut frontier_y = vec![p.person_y.raw()];
    let mut depth_x = 0u32;
    let mut depth_y = 0u32;

    while !frontier_x.is_empty() && !frontier_y.is_empty() {
        // Expand the smaller side.
        let (frontier, dist, other_dist, depth) = if frontier_x.len() <= frontier_y.len() {
            (&mut frontier_x, &mut dist_x, &dist_y, &mut depth_x)
        } else {
            (&mut frontier_y, &mut dist_y, &dist_x, &mut depth_y)
        };
        *depth += 1;
        let mut next = Vec::new();
        let mut best: Option<u32> = None;
        for &u in frontier.iter() {
            for (v, _) in snap.friends_iter(PersonId(u)) {
                if let Some(&od) = other_dist.get(&v) {
                    let total = *depth + od;
                    best = Some(best.map_or(total, |b| b.min(total)));
                }
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                    e.insert(*depth);
                    next.push(v);
                }
            }
        }
        if let Some(b) = best {
            return b as i32;
        }
        *frontier = next;
    }
    -1
}

/// Naive: unidirectional BFS where each level re-scans the whole person
/// table probing adjacency toward the frontier.
fn level_scan_bfs(snap: &PinnedSnapshot<'_>, p: &Q13Params) -> i32 {
    let mut seen: HashSet<u64> = HashSet::from([p.person_x.raw()]);
    let mut frontier: HashSet<u64> = HashSet::from([p.person_x.raw()]);
    let mut depth = 0;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = HashSet::new();
        for v in 0..snap.person_slots() as u64 {
            if seen.contains(&v) {
                continue;
            }
            if snap.friends_iter(PersonId(v)).any(|(f, _)| frontier.contains(&f)) {
                if v == p.person_y.raw() {
                    return depth;
                }
                next.insert(v);
            }
        }
        seen.extend(next.iter().copied());
        frontier = next;
    }
    -1
}

/// Reference BFS used by tests (plain queue-based).
#[cfg(test)]
fn plain_bfs(snap: &PinnedSnapshot<'_>, x: PersonId, y: PersonId) -> i32 {
    let mut dist: HashMap<u64, i32> = HashMap::from([(x.raw(), 0)]);
    let mut q = VecDeque::from([x.raw()]);
    while let Some(u) = q.pop_front() {
        let d = dist[&u];
        for (v, _) in snap.friends_iter(PersonId(u)) {
            if v == y.raw() {
                return d + 1;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(d + 1);
                q.push_back(v);
            }
        }
    }
    -1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};
    use snb_core::rng::{Rng, Stream};

    #[test]
    fn engines_agree_with_reference_on_random_pairs() {
        let f = fixture();
        let snap = f.store.pinned();
        let n = f.ds.persons.len() as u64;
        let mut rng = Rng::for_entity(11, Stream::Misc, 0);
        for _ in 0..25 {
            let p =
                Q13Params { person_x: PersonId(rng.below(n)), person_y: PersonId(rng.below(n)) };
            let reference = plain_bfs(&snap, p.person_x, p.person_y);
            assert_eq!(run(&snap, Engine::Intended, &p), reference, "{p:?}");
            assert_eq!(run(&snap, Engine::Naive, &p), reference, "{p:?}");
        }
    }

    #[test]
    fn identical_endpoints_are_distance_zero() {
        let f = fixture();
        let snap = f.store.pinned();
        let x = busy_person(f);
        let p = Q13Params { person_x: x, person_y: x };
        assert_eq!(run(&snap, Engine::Intended, &p), 0);
    }

    #[test]
    fn direct_friends_are_distance_one() {
        let f = fixture();
        let snap = f.store.pinned();
        let x = busy_person(f);
        let (friend, _) = snap.friends(x)[0];
        let p = Q13Params { person_x: x, person_y: PersonId(friend) };
        assert_eq!(run(&snap, Engine::Intended, &p), 1);
        assert_eq!(run(&snap, Engine::Naive, &p), 1);
    }

    #[test]
    fn unreachable_returns_minus_one() {
        let f = fixture();
        let snap = f.store.pinned();
        if let Some(loner) =
            f.ds.persons.iter().map(|p| p.id).find(|&id| snap.friends(id).is_empty())
        {
            let p = Q13Params { person_x: busy_person(f), person_y: loner };
            assert_eq!(run(&snap, Engine::Intended, &p), -1);
            assert_eq!(run(&snap, Engine::Naive, &p), -1);
        }
    }
}
