//! Q9 — "Latest Posts" (the paper's §3 running example, Fig. 4).
//!
//! Find the most recent 20 posts and comments from all friends or
//! friends-of-friends of a person, created at or before a given date.
//!
//! The intended plan is two index-nested-loop joins out of the small friend
//! side (≈120 friends → ≈thousands of 2-hop friends) followed by the
//! message fetch; §3 reports that replacing the first INL join with a hash
//! join costs ~50 % in HyPer and similar in Virtuoso. Our `Naive` engine is
//! exactly that wrong plan: build the 2-hop hash table, then scan the full
//! message table probing it — the ablation behind the Fig. 4 experiment.

use crate::engine::Engine;
use crate::helpers::{load_two_hop, TopK};
use crate::params::Q9Params;
use crate::scratch::with_scratch;
use snb_core::time::SimTime;
use snb_core::{MessageId, PersonId};
use snb_store::PinnedSnapshot;
use std::cmp::Reverse;

/// Result limit.
const LIMIT: usize = 20;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q9Row {
    /// Message author.
    pub author: PersonId,
    /// Author first name.
    pub first_name: &'static str,
    /// Author last name.
    pub last_name: &'static str,
    /// The message.
    pub message: MessageId,
    /// Message content (or image file).
    pub content: String,
    /// Creation date.
    pub creation_date: SimTime,
}

/// Execute Q9.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q9Params) -> Vec<Q9Row> {
    let top = match engine {
        Engine::Intended => intended(snap, p),
        Engine::Naive => naive(snap, p),
    };
    top.into_iter()
        .filter_map(|((Reverse(date), msg), ())| {
            // Borrowed rows — see Q2's materialize for why.
            let row = snap.message_ref(MessageId(msg))?;
            let author = snap.person_ref(row.author)?;
            let content = row
                .image_file
                .as_deref()
                .filter(|_| row.content.is_empty())
                .unwrap_or(&row.content)
                .to_string();
            Some(Q9Row {
                author: row.author,
                first_name: author.first_name,
                last_name: author.last_name,
                message: MessageId(msg),
                content,
                creation_date: date,
            })
        })
        .collect()
}

type Key = (Reverse<SimTime>, u64);

/// Intended plan: INL from friends into friends-of-friends, then per-person
/// date-index scans with a shared top-k threshold.
fn intended(snap: &PinnedSnapshot<'_>, p: &Q9Params) -> Vec<(Key, ())> {
    with_scratch(|sx| {
        load_two_hop(snap, sx, p.person);
        let mut top: TopK<Key, ()> = TopK::new(LIMIT);
        for &c in sx.one.iter().chain(sx.two.iter()) {
            // Newest-first borrowing walk; the first rejected key ends the
            // scan for this person.
            for (msg, date) in snap.recent_messages_walk(PersonId(c), p.max_date).take(LIMIT) {
                let key = (Reverse(date), msg);
                if !top.would_accept(&key) {
                    break;
                }
                top.push(key, ());
            }
        }
        top.into_sorted()
    })
}

/// The wrong plan: a full message-table scan probing the 2-hop marks. The
/// join-order inversion is the point of this engine; the probe structure is
/// not — it reads the scratch levels directly (1 = friend, 2 = FoF) rather
/// than copying the circle into a third hash set first.
fn naive(snap: &PinnedSnapshot<'_>, p: &Q9Params) -> Vec<(Key, ())> {
    with_scratch(|sx| {
        load_two_hop(snap, sx, p.person);
        let mut top: TopK<Key, ()> = TopK::new(LIMIT);
        for m in 0..snap.message_slots() as u64 {
            if let Some(meta) = snap.message_meta(MessageId(m)) {
                if meta.creation_date <= p.max_date
                    && matches!(sx.level_of(meta.author.raw()), Some(1 | 2))
                {
                    top.push((Reverse(meta.creation_date), m), ());
                }
            }
        }
        top.into_sorted()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture, mid_date};

    fn params() -> Q9Params {
        Q9Params { person: busy_person(fixture()), max_date: mid_date() }
    }

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        let a = run(&snap, Engine::Intended, &p);
        let b = run(&snap, Engine::Naive, &p);
        assert_eq!(a, b);
        assert_eq!(a.len(), LIMIT);
    }

    #[test]
    fn authors_are_in_two_hop_circle() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        let (one, two) = with_scratch(|sx| {
            load_two_hop(&snap, sx, p.person);
            (sx.one.clone(), sx.two.clone())
        });
        for r in run(&snap, Engine::Intended, &p) {
            assert!(one.contains(&r.author.raw()) || two.contains(&r.author.raw()));
            assert!(r.creation_date <= p.max_date);
        }
    }

    #[test]
    fn q9_dominates_q2() {
        // The 2-hop circle is a superset of friends, so Q9's newest message
        // is at least as new as Q2's.
        let f = fixture();
        let snap = f.store.pinned();
        let person = busy_person(f);
        let q9 = run(&snap, Engine::Intended, &Q9Params { person, max_date: mid_date() });
        let q2 = crate::complex::q2::run(
            &snap,
            Engine::Intended,
            &crate::params::Q2Params { person, max_date: mid_date() },
        );
        if let (Some(a), Some(b)) = (q9.first(), q2.first()) {
            assert!(a.creation_date >= b.creation_date);
        }
    }
}
