//! Q1 — "Extract description of friends with a given name".
//!
//! Given a person's `firstName`, return up to 20 people with the same first
//! name, sorted by increasing distance (max 3) from a given person, then by
//! last name, then by id; include workplaces and places of study.

use crate::engine::Engine;
use crate::params::Q1Params;
use crate::scratch::{with_scratch, QueryScratch};
use snb_core::dict::Dictionaries;
use snb_core::PersonId;
use snb_store::PinnedSnapshot;

/// Maximum BFS distance.
const MAX_DISTANCE: u32 = 3;
/// Result limit.
const LIMIT: usize = 20;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q1Row {
    /// The matching person.
    pub person: PersonId,
    /// Distance from the start person (1..=3).
    pub distance: u32,
    /// Last name (sort key within a distance).
    pub last_name: &'static str,
    /// Home city name.
    pub city: &'static str,
    /// `"University (class year)"` descriptions.
    pub universities: Vec<String>,
    /// `"Company (since year, country)"` descriptions.
    pub companies: Vec<String>,
}

/// Execute Q1.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q1Params) -> Vec<Q1Row> {
    let matches = with_scratch(|sx| match engine {
        Engine::Intended => bfs_collect(snap, sx, p),
        Engine::Naive => naive_collect(snap, sx, p),
    });
    materialize(snap, matches)
}

/// Intended plan: level-wise BFS out of the start person; stop expanding
/// once a full level has completed with ≥ 20 matches (deeper levels cannot
/// displace shallower ones in the ordering).
fn bfs_collect(snap: &PinnedSnapshot<'_>, sx: &mut QueryScratch, p: &Q1Params) -> Vec<(u64, u32)> {
    sx.begin(snap.person_slots());
    sx.mark(p.person.raw(), 0);
    let mut frontier = vec![p.person.raw()];
    let mut matches = Vec::new();
    for depth in 1..=MAX_DISTANCE {
        let mut next = Vec::new();
        for &u in &frontier {
            for (v, _) in snap.friends_iter(PersonId(u)) {
                if sx.mark(v, depth as u8) {
                    next.push(v);
                    if snap.person_ref(PersonId(v)).is_some_and(|pr| pr.first_name == p.first_name)
                    {
                        matches.push((v, depth));
                    }
                }
            }
        }
        if matches.len() >= LIMIT {
            break;
        }
        frontier = next;
    }
    matches
}

/// Naive plan: per BFS level, scan the whole person table probing adjacency
/// toward the frontier (the join-order inversion a scan-based system runs).
fn naive_collect(
    snap: &PinnedSnapshot<'_>,
    sx: &mut QueryScratch,
    p: &Q1Params,
) -> Vec<(u64, u32)> {
    sx.begin(snap.person_slots());
    sx.mark(p.person.raw(), 0);
    let mut matches = Vec::new();
    for depth in 1..=MAX_DISTANCE {
        let mut found_any = false;
        for v in 0..snap.person_slots() as u64 {
            if sx.is_marked(v) {
                continue;
            }
            // Probing levels directly distinguishes the previous frontier
            // (level == depth-1) from older levels — no per-level set copy.
            let touches_frontier = snap
                .friends_iter(PersonId(v))
                .any(|(f, _)| sx.level_of(f) == Some((depth - 1) as u8));
            if touches_frontier {
                sx.mark(v, depth as u8);
                found_any = true;
                if snap.person_ref(PersonId(v)).is_some_and(|pr| pr.first_name == p.first_name) {
                    matches.push((v, depth));
                }
            }
        }
        if matches.len() >= LIMIT || !found_any {
            break;
        }
    }
    matches
}

fn materialize(snap: &PinnedSnapshot<'_>, matches: Vec<(u64, u32)>) -> Vec<Q1Row> {
    let dicts = Dictionaries::global();
    let mut rows: Vec<Q1Row> = matches
        .into_iter()
        .filter_map(|(id, distance)| {
            let person = snap.person(PersonId(id))?;
            let universities = person
                .study_at
                .iter()
                .map(|s| {
                    let u = dicts.orgs.university(s.university.index());
                    format!("{} ({})", u.name, s.class_year)
                })
                .collect();
            let companies = person
                .work_at
                .iter()
                .map(|w| {
                    let c = dicts.orgs.company(w.company.index());
                    format!(
                        "{} (since {}, {})",
                        c.name,
                        w.work_from,
                        dicts.places.country(c.country).name
                    )
                })
                .collect();
            Some(Q1Row {
                person: PersonId(id),
                distance,
                last_name: person.last_name,
                city: dicts.places.city(person.city).name,
                universities,
                companies,
            })
        })
        .collect();
    rows.sort_by(|a, b| {
        (a.distance, a.last_name, a.person).cmp(&(b.distance, b.last_name, b.person))
    });
    rows.truncate(LIMIT);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};

    fn params() -> Q1Params {
        let f = fixture();
        let start = busy_person(f);
        // Pick the most common first name among non-start persons so the
        // query has work to do.
        let mut counts = std::collections::HashMap::new();
        for p in &f.ds.persons {
            *counts.entry(p.first_name).or_insert(0usize) += 1;
        }
        let name = counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0;
        Q1Params { person: start, first_name: name.to_string() }
    }

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        let a = run(&snap, Engine::Intended, &p);
        let b = run(&snap, Engine::Naive, &p);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "popular name should match someone within 3 hops");
    }

    #[test]
    fn ordering_and_limit_hold() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = run(&snap, Engine::Intended, &params());
        assert!(rows.len() <= LIMIT);
        for w in rows.windows(2) {
            assert!(
                (w[0].distance, w[0].last_name, w[0].person)
                    <= (w[1].distance, w[1].last_name, w[1].person)
            );
        }
        for r in &rows {
            assert!((1..=MAX_DISTANCE).contains(&r.distance));
        }
    }

    #[test]
    fn start_person_is_excluded() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        for r in run(&snap, Engine::Intended, &p) {
            assert_ne!(r.person, p.person);
        }
    }

    #[test]
    fn unknown_name_yields_empty() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = Q1Params { person: busy_person(f), first_name: "Zzyzx".into() };
        assert!(run(&snap, Engine::Intended, &p).is_empty());
    }
}
