//! Q14 — "Weighted paths".
//!
//! Given two persons, find all shortest paths between them in the `knows`
//! subgraph, weighting each path by the message interactions along it: a
//! comment directly replying to a post contributes 1.0 for its (replier,
//! poster) pair; a comment replying to a comment contributes 0.5. Paths are
//! returned descending by weight.

use crate::engine::Engine;
use crate::params::Q14Params;
use snb_core::{MessageId, PersonId};
use snb_store::PinnedSnapshot;
use std::collections::HashMap;

/// Cap on the number of enumerated shortest paths: dense social graphs can
/// hold combinatorially many; the benchmark's intent (score paths by
/// interaction weight) is preserved under a deterministic cap.
const MAX_PATHS: usize = 1_000;

/// One weighted shortest path.
#[derive(Debug, Clone, PartialEq)]
pub struct Q14Row {
    /// Path from X to Y, inclusive.
    pub path: Vec<PersonId>,
    /// Total interaction weight.
    pub weight: f64,
}

/// Execute Q14.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q14Params) -> Vec<Q14Row> {
    let paths = shortest_paths(snap, engine, p);
    let mut cache: HashMap<(u64, u64), f64> = HashMap::new();
    let mut rows: Vec<Q14Row> = paths
        .into_iter()
        .map(|path| {
            let weight = path.windows(2).map(|w| pair_weight(snap, &mut cache, w[0], w[1])).sum();
            Q14Row { path: path.into_iter().map(PersonId).collect(), weight }
        })
        .collect();
    rows.sort_by(|a, b| b.weight.partial_cmp(&a.weight).unwrap().then_with(|| a.path.cmp(&b.path)));
    rows
}

/// Interaction weight between a pair of adjacent persons, symmetric.
/// Cached per unordered pair.
fn pair_weight(
    snap: &PinnedSnapshot<'_>,
    cache: &mut HashMap<(u64, u64), f64>,
    a: u64,
    b: u64,
) -> f64 {
    let key = (a.min(b), a.max(b));
    if let Some(&w) = cache.get(&key) {
        return w;
    }
    let w = directed_weight(snap, key.0, key.1) + directed_weight(snap, key.1, key.0);
    cache.insert(key, w);
    w
}

/// Weight of `from`'s comments on `to`'s messages.
pub(crate) fn directed_weight(snap: &PinnedSnapshot<'_>, from: u64, to: u64) -> f64 {
    let mut w = 0.0;
    for (msg, _) in snap.messages_of_iter(PersonId(from)) {
        let Some(meta) = snap.message_meta(MessageId(msg)) else { continue };
        let Some((parent, _)) = meta.reply_info else { continue };
        let Some(pmeta) = snap.message_meta(parent) else { continue };
        if pmeta.author.raw() == to {
            w += if pmeta.reply_info.is_none() { 1.0 } else { 0.5 };
        }
    }
    w
}

/// All shortest paths from X to Y as raw id vectors (deterministic order,
/// capped at [`MAX_PATHS`]).
pub(crate) fn shortest_paths(
    snap: &PinnedSnapshot<'_>,
    engine: Engine,
    p: &Q14Params,
) -> Vec<Vec<u64>> {
    if p.person_x == p.person_y {
        return vec![vec![p.person_x.raw()]];
    }
    // BFS from X computing distances; Naive uses the level-scan expansion.
    let dist = match engine {
        Engine::Intended => bfs_distances(snap, p.person_x),
        Engine::Naive => level_scan_distances(snap, p.person_x),
    };
    let Some(&target_d) = dist.get(&p.person_y.raw()) else {
        return Vec::new();
    };
    // Walk backwards from Y along strictly-decreasing distances.
    let mut paths = Vec::new();
    let mut stack = vec![(vec![p.person_y.raw()], target_d)];
    while let Some((path, d)) = stack.pop() {
        if paths.len() >= MAX_PATHS {
            break;
        }
        let head = *path.last().unwrap();
        if d == 0 {
            let mut full: Vec<u64> = path.clone();
            full.reverse();
            paths.push(full);
            continue;
        }
        let mut preds: Vec<u64> = snap
            .friends_iter(PersonId(head))
            .map(|(f, _)| f)
            .filter(|f| dist.get(f) == Some(&(d - 1)))
            .collect();
        preds.sort_unstable();
        for pred in preds.into_iter().rev() {
            let mut next = path.clone();
            next.push(pred);
            stack.push((next, d - 1));
        }
    }
    paths
}

fn bfs_distances(snap: &PinnedSnapshot<'_>, start: PersonId) -> HashMap<u64, u32> {
    let mut dist = HashMap::from([(start.raw(), 0u32)]);
    let mut q = std::collections::VecDeque::from([start.raw()]);
    while let Some(u) = q.pop_front() {
        let d = dist[&u];
        for (v, _) in snap.friends_iter(PersonId(u)) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(d + 1);
                q.push_back(v);
            }
        }
    }
    dist
}

fn level_scan_distances(snap: &PinnedSnapshot<'_>, start: PersonId) -> HashMap<u64, u32> {
    let mut dist = HashMap::from([(start.raw(), 0u32)]);
    let mut frontier: Vec<u64> = vec![start.raw()];
    let mut depth = 0;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for v in 0..snap.person_slots() as u64 {
            if dist.contains_key(&v) {
                continue;
            }
            if snap
                .friends_iter(PersonId(v))
                .any(|(f, _)| dist.get(&f) == Some(&(depth - 1)) && frontier.contains(&f))
            {
                dist.insert(v, depth);
                next.push(v);
            }
        }
        frontier = next;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};
    use snb_core::rng::{Rng, Stream};

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let n = f.ds.persons.len() as u64;
        let mut rng = Rng::for_entity(21, Stream::Misc, 0);
        for _ in 0..8 {
            let p =
                Q14Params { person_x: PersonId(rng.below(n)), person_y: PersonId(rng.below(n)) };
            let a = run(&snap, Engine::Intended, &p);
            let b = run(&snap, Engine::Naive, &p);
            assert_eq!(a, b, "{p:?}");
        }
    }

    #[test]
    fn paths_have_uniform_shortest_length() {
        let f = fixture();
        let snap = f.store.pinned();
        let x = busy_person(f);
        // Find someone at distance 2: a friend-of-friend.
        let two = crate::scratch::with_scratch(|sx| {
            crate::helpers::load_two_hop(&snap, sx, x);
            sx.two.clone()
        });
        if let Some(&fof) = two.first() {
            let p = Q14Params { person_x: x, person_y: PersonId(fof) };
            let rows = run(&snap, Engine::Intended, &p);
            assert!(!rows.is_empty());
            for r in &rows {
                assert_eq!(r.path.len(), 3, "distance-2 paths have 3 nodes");
                assert_eq!(r.path[0], x);
                assert_eq!(*r.path.last().unwrap(), PersonId(fof));
                // Consecutive nodes really are friends.
                for w in r.path.windows(2) {
                    assert!(snap.are_friends(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn weights_sort_descending() {
        let f = fixture();
        let snap = f.store.pinned();
        let x = busy_person(f);
        let two = crate::scratch::with_scratch(|sx| {
            crate::helpers::load_two_hop(&snap, sx, x);
            sx.two.clone()
        });
        if let Some(&fof) = two.first() {
            let rows =
                run(&snap, Engine::Intended, &Q14Params { person_x: x, person_y: PersonId(fof) });
            for w in rows.windows(2) {
                assert!(w[0].weight >= w[1].weight);
            }
        }
    }

    #[test]
    fn identical_endpoints_yield_trivial_path() {
        let f = fixture();
        let snap = f.store.pinned();
        let x = busy_person(f);
        let rows = run(&snap, Engine::Intended, &Q14Params { person_x: x, person_y: x });
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].path, vec![x]);
        assert_eq!(rows[0].weight, 0.0);
    }

    #[test]
    fn comment_to_post_weighs_double() {
        // Unit-level check of the weight rule on a crafted store.
        use snb_core::dict::names::Gender;
        use snb_core::schema::*;
        use snb_core::time::SimTime;
        use snb_core::update::UpdateOp;
        let s = snb_store::Store::new();
        let person = |id: u64| Person {
            id: PersonId(id),
            first_name: "Karl",
            last_name: "Muller",
            gender: Gender::Male,
            birthday: SimTime(0),
            creation_date: SimTime(1),
            city: 0,
            country: 0,
            browser: "Chrome",
            location_ip: String::new(),
            languages: vec!["de"],
            emails: vec![],
            interests: vec![],
            study_at: None,
            work_at: vec![],
        };
        for id in 0..2 {
            s.apply(&UpdateOp::AddPerson(person(id))).unwrap();
        }
        s.apply(&UpdateOp::AddFriendship(Knows {
            a: PersonId(0),
            b: PersonId(1),
            creation_date: SimTime(2),
        }))
        .unwrap();
        s.apply(&UpdateOp::AddForum(Forum {
            id: snb_core::ForumId(0),
            title: "w".into(),
            moderator: PersonId(0),
            creation_date: SimTime(2),
            tags: vec![],
            kind: ForumKind::Wall,
        }))
        .unwrap();
        s.apply(&UpdateOp::AddPost(Post {
            id: MessageId(0),
            author: PersonId(0),
            forum: snb_core::ForumId(0),
            creation_date: SimTime(3),
            content: "post".into(),
            image_file: None,
            tags: vec![],
            language: "de",
            country: 0,
        }))
        .unwrap();
        // 1 comments on 0's post (weight 1.0), then 0 comments on that
        // comment (weight 0.5).
        let comment = |id: u64, author: u64, parent: u64, t: i64| Comment {
            id: MessageId(id),
            author: PersonId(author),
            creation_date: SimTime(t),
            content: "re".into(),
            reply_to: MessageId(parent),
            root_post: MessageId(0),
            forum: snb_core::ForumId(0),
            tags: vec![],
            country: 0,
        };
        s.apply(&UpdateOp::AddComment(comment(1, 1, 0, 4))).unwrap();
        s.apply(&UpdateOp::AddComment(comment(2, 0, 1, 5))).unwrap();
        let snap = s.pinned();
        let rows = run(
            &snap,
            Engine::Intended,
            &Q14Params { person_x: PersonId(0), person_y: PersonId(1) },
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].weight, 1.5);
    }
}
