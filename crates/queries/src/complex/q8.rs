//! Q8 — "Most recent replies".
//!
//! Retrieve the 20 most recent reply comments to all the posts and comments
//! of a person, descending by creation date, ascending by comment id.

use crate::engine::Engine;
use crate::helpers::TopK;
use crate::params::Q8Params;
use snb_core::time::SimTime;
use snb_core::{MessageId, PersonId};
use snb_store::PinnedSnapshot;
use std::cmp::Reverse;

/// Result limit.
const LIMIT: usize = 20;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q8Row {
    /// The replying person.
    pub commenter: PersonId,
    /// Replier first name.
    pub first_name: &'static str,
    /// Replier last name.
    pub last_name: &'static str,
    /// The reply comment.
    pub comment: MessageId,
    /// Reply content.
    pub content: String,
    /// Reply creation date.
    pub creation_date: SimTime,
}

/// Execute Q8.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q8Params) -> Vec<Q8Row> {
    let top = match engine {
        Engine::Intended => intended(snap, p),
        Engine::Naive => naive(snap, p),
    };
    top.into_iter()
        .filter_map(|((Reverse(date), comment), ())| {
            let row = snap.message(MessageId(comment))?;
            let author = snap.person(row.author)?;
            Some(Q8Row {
                commenter: row.author,
                first_name: author.first_name,
                last_name: author.last_name,
                comment: MessageId(comment),
                content: row.content.to_string(),
                creation_date: date,
            })
        })
        .collect()
}

type Key = (Reverse<SimTime>, u64);

/// Intended: person's message index, then each message's reply list.
fn intended(snap: &PinnedSnapshot<'_>, p: &Q8Params) -> Vec<(Key, ())> {
    let mut top: TopK<Key, ()> = TopK::new(LIMIT);
    for (msg, _) in snap.messages_of_iter(p.person) {
        for (reply, date) in snap.replies_of_iter(MessageId(msg)) {
            top.push((Reverse(date), reply), ());
        }
    }
    top.into_sorted()
}

/// Naive: full message scan, checking each comment's parent author.
fn naive(snap: &PinnedSnapshot<'_>, p: &Q8Params) -> Vec<(Key, ())> {
    let mut top: TopK<Key, ()> = TopK::new(LIMIT);
    for m in 0..snap.message_slots() as u64 {
        let Some(meta) = snap.message_meta(MessageId(m)) else { continue };
        let Some((parent, _)) = meta.reply_info else { continue };
        if snap.message_meta(parent).is_some_and(|pm| pm.author == p.person) {
            top.push((Reverse(meta.creation_date), m), ());
        }
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};

    fn params() -> Q8Params {
        Q8Params { person: busy_person(fixture()) }
    }

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        assert_eq!(run(&snap, Engine::Intended, &p), run(&snap, Engine::Naive, &p));
    }

    #[test]
    fn replies_target_the_person() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        let rows = run(&snap, Engine::Intended, &p);
        assert!(!rows.is_empty(), "busy person's messages draw replies");
        for r in &rows {
            let meta = snap.message_meta(r.comment).unwrap();
            let (parent, _) = meta.reply_info.unwrap();
            assert_eq!(snap.message_meta(parent).unwrap().author, p.person);
        }
    }

    #[test]
    fn ordering_is_date_desc_id_asc() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = run(&snap, Engine::Intended, &params());
        assert!(rows.len() <= LIMIT);
        for w in rows.windows(2) {
            assert!(
                w[0].creation_date > w[1].creation_date
                    || (w[0].creation_date == w[1].creation_date && w[0].comment < w[1].comment)
            );
        }
    }
}
