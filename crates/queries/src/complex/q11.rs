//! Q11 — "Job referral".
//!
//! Find top-10 friends or friends-of-friends of a person (excluding the
//! person) who have worked at a company in a given country since before a
//! given year. Ascending by work-from year, then person id, then descending
//! by company name.

use crate::engine::Engine;
use crate::helpers::load_two_hop;
use crate::params::Q11Params;
use crate::scratch::with_scratch;
use snb_core::dict::Dictionaries;
use snb_core::PersonId;
use snb_store::PinnedSnapshot;

/// Result limit.
const LIMIT: usize = 10;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q11Row {
    /// The referred person.
    pub person: PersonId,
    /// First name.
    pub first_name: &'static str,
    /// Last name.
    pub last_name: &'static str,
    /// Employer name.
    pub company: String,
    /// Employment start year.
    pub work_from: i32,
}

/// Execute Q11.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q11Params) -> Vec<Q11Row> {
    let candidates: Vec<u64> = with_scratch(|sx| {
        load_two_hop(snap, sx, p.person);
        match engine {
            // Intended: traverse outward from the person.
            Engine::Intended => sx.one.iter().chain(sx.two.iter()).copied().collect(),
            // Naive join-order inversion: scan the whole person table and
            // probe the 2-hop marks directly (1 = friend, 2 = FoF).
            Engine::Naive => (0..snap.person_slots() as u64)
                .filter(|&c| matches!(sx.level_of(c), Some(1 | 2)))
                .collect(),
        }
    });
    let dicts = Dictionaries::global();
    let mut rows = Vec::new();
    for c in candidates {
        let Some(person) = snap.person(PersonId(c)) else { continue };
        for w in &person.work_at {
            let company = dicts.orgs.company(w.company.index());
            if company.country == p.country && w.work_from < p.max_year {
                rows.push(Q11Row {
                    person: PersonId(c),
                    first_name: person.first_name,
                    last_name: person.last_name,
                    company: company.name.clone(),
                    work_from: w.work_from,
                });
            }
        }
    }
    rows.sort_by(|a, b| {
        (a.work_from, a.person, std::cmp::Reverse(&a.company)).cmp(&(
            b.work_from,
            b.person,
            std::cmp::Reverse(&b.company),
        ))
    });
    rows.truncate(LIMIT);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};

    fn params() -> Q11Params {
        // Use the most common home country in the fixture so local
        // employment is plentiful.
        let f = fixture();
        let mut counts = std::collections::HashMap::new();
        for p in &f.ds.persons {
            *counts.entry(p.country).or_insert(0usize) += 1;
        }
        let country = counts.into_iter().max_by_key(|&(_, c)| c).unwrap().0;
        Q11Params { person: busy_person(f), country, max_year: 2012 }
    }

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        assert_eq!(run(&snap, Engine::Intended, &p), run(&snap, Engine::Naive, &p));
    }

    #[test]
    fn rows_match_filters() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        let dicts = Dictionaries::global();
        let rows = run(&snap, Engine::Intended, &p);
        assert!(!rows.is_empty(), "populous-country referral should hit");
        for r in &rows {
            assert!(r.work_from < p.max_year);
            let person = snap.person(r.person).unwrap();
            let works_there = person.work_at.iter().any(|w| {
                dicts.orgs.company(w.company.index()).name == r.company
                    && dicts.orgs.company(w.company.index()).country == p.country
            });
            assert!(works_there);
        }
    }

    #[test]
    fn ordering_is_year_person_company_desc() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = run(&snap, Engine::Intended, &params());
        for w in rows.windows(2) {
            let a = (&w[0].work_from, w[0].person.raw());
            let b = (&w[1].work_from, w[1].person.raw());
            assert!(a < b || (a == b && w[0].company >= w[1].company));
        }
    }

    #[test]
    fn strict_year_bound() {
        let f = fixture();
        let snap = f.store.pinned();
        let mut p = params();
        p.max_year = 1900;
        assert!(run(&snap, Engine::Intended, &p).is_empty());
    }
}
