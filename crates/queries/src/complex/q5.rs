//! Q5 — "New groups".
//!
//! Given a start person, find the top-20 forums that the friends and
//! friends-of-friends joined after a given date, sorted descending by the
//! number of posts in each forum created by any of those persons (then
//! ascending by forum id). This is the query the paper uses to motivate
//! parameter curation (Fig. 5): its cost tracks the highly variable size of
//! the 2-hop environment. The intended plan is shown in Fig. 6a.

use crate::engine::Engine;
use crate::helpers::load_two_hop;
use crate::params::Q5Params;
use crate::scratch::with_scratch;
use snb_core::{ForumId, MessageId, PersonId};
use snb_store::PinnedSnapshot;
use std::collections::{HashMap, HashSet};

/// Result limit.
const LIMIT: usize = 20;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q5Row {
    /// The forum.
    pub forum: ForumId,
    /// Forum title.
    pub title: String,
    /// Posts by recently joined 2-hop members.
    pub count: u32,
}

/// Execute Q5.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q5Params) -> Vec<Q5Row> {
    let counts = match engine {
        Engine::Intended => intended(snap, p),
        Engine::Naive => naive(snap, p),
    };
    let mut rows: Vec<Q5Row> = counts
        .into_iter()
        .filter_map(|(forum, count)| {
            let f = snap.forum(ForumId(forum))?;
            Some(Q5Row { forum: ForumId(forum), title: f.title, count })
        })
        .collect();
    rows.sort_by_key(|r| (std::cmp::Reverse(r.count), r.forum));
    rows.truncate(LIMIT);
    rows
}

/// Intended plan (Fig. 6a): person → friends → friends-of-friends, then a
/// date-range scan of each candidate's join index, then count posts per
/// forum restricted to the joiners.
fn intended(snap: &PinnedSnapshot<'_>, p: &Q5Params) -> HashMap<u64, u32> {
    // forum -> persons who joined it after min_date.
    let mut joiners: HashMap<u64, HashSet<u64>> = HashMap::new();
    with_scratch(|sx| {
        load_two_hop(snap, sx, p.person);
        for &c in sx.one.iter().chain(sx.two.iter()) {
            for (forum, _join) in snap.forums_of_after(PersonId(c), p.min_date) {
                joiners.entry(forum).or_default().insert(c);
            }
        }
    });
    // Count posts in each candidate forum authored by its recent joiners.
    let mut counts = HashMap::with_capacity(joiners.len());
    for (forum, who) in joiners {
        let mut n = 0u32;
        for (post, _) in snap.posts_in_forum_iter(ForumId(forum)) {
            if let Some(meta) = snap.message_meta(MessageId(post)) {
                if who.contains(&meta.author.raw()) {
                    n += 1;
                }
            }
        }
        counts.insert(forum, n);
    }
    counts
}

/// Naive plan: scan all forums' member lists, then a full message scan.
fn naive(snap: &PinnedSnapshot<'_>, p: &Q5Params) -> HashMap<u64, u32> {
    let mut joiners: HashMap<u64, HashSet<u64>> = HashMap::new();
    with_scratch(|sx| {
        load_two_hop(snap, sx, p.person);
        for forum in 0..snap.forum_slots() as u64 {
            for (member, join) in snap.members_of_iter(ForumId(forum)) {
                // Probe the scratch levels directly (1 = friend, 2 = FoF)
                // instead of copying the circle into a hash set.
                if join > p.min_date && matches!(sx.level_of(member), Some(1 | 2)) {
                    joiners.entry(forum).or_default().insert(member);
                }
            }
        }
    });
    let mut counts: HashMap<u64, u32> = joiners.keys().map(|&f| (f, 0)).collect();
    for m in 0..snap.message_slots() as u64 {
        let Some(meta) = snap.message_meta(MessageId(m)) else { continue };
        if meta.reply_info.is_some() {
            continue;
        }
        if let Some(who) = joiners.get(&meta.forum.raw()) {
            if who.contains(&meta.author.raw()) {
                *counts.get_mut(&meta.forum.raw()).unwrap() += 1;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};
    use snb_core::SimTime;

    fn params() -> Q5Params {
        Q5Params { person: busy_person(fixture()), min_date: SimTime::from_ymd(2011, 1, 1) }
    }

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        assert_eq!(run(&snap, Engine::Intended, &p), run(&snap, Engine::Naive, &p));
    }

    #[test]
    fn busy_person_sees_new_groups() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = run(&snap, Engine::Intended, &params());
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(
                w[0].count > w[1].count || (w[0].count == w[1].count && w[0].forum < w[1].forum)
            );
        }
    }

    #[test]
    fn late_date_shrinks_results() {
        let f = fixture();
        let snap = f.store.pinned();
        let person = busy_person(f);
        let early = run(
            &snap,
            Engine::Intended,
            &Q5Params { person, min_date: SimTime::from_ymd(2010, 1, 1) },
        );
        let late = run(
            &snap,
            Engine::Intended,
            &Q5Params { person, min_date: SimTime::from_ymd(2012, 12, 20) },
        );
        // With an early cutoff every join qualifies; with a very late one
        // almost none do.
        assert!(early.len() >= late.len());
    }

    #[test]
    fn counted_posts_are_by_recent_joiners() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        let counts = intended(&snap, &p);
        // Spot-check one forum against a recount from raw data.
        if let Some((&forum, &count)) = counts.iter().max_by_key(|&(_, &c)| c) {
            let circle: HashSet<u64> = with_scratch(|sx| {
                load_two_hop(&snap, sx, p.person);
                sx.one.iter().chain(sx.two.iter()).copied().collect()
            });
            let joined_after: HashSet<u64> = snap
                .members_of(ForumId(forum))
                .into_iter()
                .filter(|&(m, join)| join > p.min_date && circle.contains(&m))
                .map(|(m, _)| m)
                .collect();
            let recount = snap
                .posts_in_forum(ForumId(forum))
                .into_iter()
                .filter(|&(post, _)| {
                    snap.message_meta(MessageId(post))
                        .is_some_and(|meta| joined_after.contains(&meta.author.raw()))
                })
                .count() as u32;
            assert_eq!(count, recount);
        }
    }
}
