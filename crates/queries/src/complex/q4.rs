//! Q4 — "New Topics".
//!
//! Given a start person, find the top-10 most popular tags (by number of
//! posts) attached to posts created by the person's friends within
//! `[start, start + duration)` — excluding tags that already appeared on
//! friends' posts before the window (only *new* topics count).

use crate::engine::Engine;
use crate::helpers::load_friends;
use crate::params::Q4Params;
use crate::scratch::with_scratch;
use snb_core::dict::Dictionaries;
use snb_core::{MessageId, PersonId};
use snb_store::PinnedSnapshot;
use std::collections::{HashMap, HashSet};

/// Result limit.
const LIMIT: usize = 10;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q4Row {
    /// Tag name.
    pub tag: String,
    /// Number of friend posts in the window carrying the tag.
    pub count: u32,
}

/// Execute Q4.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q4Params) -> Vec<Q4Row> {
    let (in_window, before) = match engine {
        Engine::Intended => intended(snap, p),
        Engine::Naive => naive(snap, p),
    };
    let dicts = Dictionaries::global();
    let mut rows: Vec<Q4Row> = in_window
        .into_iter()
        .filter(|(tag, _)| !before.contains(tag))
        .map(|(tag, count)| Q4Row { tag: dicts.tags.tag(tag as usize).name.clone(), count })
        .collect();
    rows.sort_by(|a, b| {
        (std::cmp::Reverse(a.count), &a.tag).cmp(&(std::cmp::Reverse(b.count), &b.tag))
    });
    rows.truncate(LIMIT);
    rows
}

/// Intended: walk friends, range-scan each friend's message index.
pub(crate) fn intended(
    snap: &PinnedSnapshot<'_>,
    p: &Q4Params,
) -> (HashMap<u64, u32>, HashSet<u64>) {
    let end = p.start.plus_days(p.duration_days);
    let mut in_window: HashMap<u64, u32> = HashMap::new();
    let mut before: HashSet<u64> = HashSet::new();
    with_scratch(|sx| {
        load_friends(snap, sx, p.person);
        for &friend in &sx.one {
            for (msg, date) in snap.messages_of_iter(PersonId(friend)) {
                if date >= end {
                    break; // index is date-ordered
                }
                let id = MessageId(msg);
                let Some(meta) = snap.message_meta(id) else { continue };
                if meta.reply_info.is_some() {
                    continue; // posts only
                }
                if date < p.start {
                    before.extend(snap.message_tags(id).iter().map(|t| t.raw()));
                } else {
                    for t in snap.message_tags(id) {
                        *in_window.entry(t.raw()).or_default() += 1;
                    }
                }
            }
        }
    });
    (in_window, before)
}

/// Naive: full message-table scan.
pub(crate) fn naive(snap: &PinnedSnapshot<'_>, p: &Q4Params) -> (HashMap<u64, u32>, HashSet<u64>) {
    let end = p.start.plus_days(p.duration_days);
    let mut in_window: HashMap<u64, u32> = HashMap::new();
    let mut before: HashSet<u64> = HashSet::new();
    with_scratch(|sx| {
        load_friends(snap, sx, p.person);
        for m in 0..snap.message_slots() as u64 {
            let id = MessageId(m);
            let Some(meta) = snap.message_meta(id) else { continue };
            if meta.reply_info.is_some()
                || sx.level_of(meta.author.raw()) != Some(1)
                || meta.creation_date >= end
            {
                continue;
            }
            if meta.creation_date < p.start {
                before.extend(snap.message_tags(id).iter().map(|t| t.raw()));
            } else {
                for t in snap.message_tags(id) {
                    *in_window.entry(t.raw()).or_default() += 1;
                }
            }
        }
    });
    (in_window, before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};
    use snb_core::SimTime;

    fn params() -> Q4Params {
        Q4Params {
            person: busy_person(fixture()),
            start: SimTime::from_ymd(2012, 3, 1),
            duration_days: 60,
        }
    }

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        assert_eq!(run(&snap, Engine::Intended, &p), run(&snap, Engine::Naive, &p));
    }

    #[test]
    fn new_topics_exclude_pre_window_tags() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        let (_, before) = intended(&snap, &p);
        let dicts = Dictionaries::global();
        let before_names: HashSet<&str> =
            before.iter().map(|&t| dicts.tags.tag(t as usize).name.as_str()).collect();
        for row in run(&snap, Engine::Intended, &p) {
            assert!(!before_names.contains(row.tag.as_str()), "{} is not new", row.tag);
        }
    }

    #[test]
    fn counts_are_positive_and_sorted() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = run(&snap, Engine::Intended, &params());
        assert!(rows.len() <= LIMIT);
        for w in rows.windows(2) {
            assert!(w[0].count > w[1].count || (w[0].count == w[1].count && w[0].tag <= w[1].tag));
        }
        for r in &rows {
            assert!(r.count > 0);
        }
    }

    #[test]
    fn whole_simulation_window_has_no_new_topics_for_quiet_person() {
        // A window starting at simulation start excludes nothing, so any
        // posted tag counts as new; conversely a person with no friends has
        // no results at all.
        let f = fixture();
        let snap = f.store.pinned();
        let loner = f.ds.persons.iter().map(|p| p.id).find(|&id| snap.friends(id).is_empty());
        if let Some(loner) = loner {
            let p = Q4Params {
                person: loner,
                start: SimTime::from_ymd(2010, 1, 1),
                duration_days: 1000,
            };
            assert!(run(&snap, Engine::Intended, &p).is_empty());
        }
    }
}
