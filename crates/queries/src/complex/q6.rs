//! Q6 — "Tag co-occurrence".
//!
//! Given a start person and a tag, find the other tags that occur together
//! with it on posts created by the person's friends and friends-of-friends.
//! Top 10 by post count, then tag name.

use crate::engine::Engine;
use crate::helpers::load_two_hop;
use crate::params::Q6Params;
use crate::scratch::with_scratch;
use snb_core::dict::Dictionaries;
use snb_core::{MessageId, PersonId};
use snb_store::PinnedSnapshot;
use std::collections::HashMap;

/// Result limit.
const LIMIT: usize = 10;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q6Row {
    /// Co-occurring tag name.
    pub tag: String,
    /// Number of posts carrying both tags.
    pub count: u32,
}

/// Execute Q6.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q6Params) -> Vec<Q6Row> {
    let counts = match engine {
        Engine::Intended => intended(snap, p),
        Engine::Naive => naive(snap, p),
    };
    let dicts = Dictionaries::global();
    let mut rows: Vec<Q6Row> = counts
        .into_iter()
        .map(|(tag, count)| Q6Row { tag: dicts.tags.tag(tag as usize).name.clone(), count })
        .collect();
    rows.sort_by(|a, b| {
        (std::cmp::Reverse(a.count), &a.tag).cmp(&(std::cmp::Reverse(b.count), &b.tag))
    });
    rows.truncate(LIMIT);
    rows
}

fn count_post(
    snap: &PinnedSnapshot<'_>,
    msg: MessageId,
    anchor: u64,
    counts: &mut HashMap<u64, u32>,
) {
    let tags = snap.message_tags(msg);
    if tags.iter().any(|t| t.raw() == anchor) {
        for t in tags {
            if t.raw() != anchor {
                *counts.entry(t.raw()).or_default() += 1;
            }
        }
    }
}

/// Intended: traverse the 2-hop circle, scan each candidate's posts via
/// the posts-only covering index — every yielded entry is a post, so the
/// per-message row probe (one random access into the fat message table
/// just to discard replies, formerly the dominant cost of this query) is
/// gone entirely.
pub(crate) fn intended(snap: &PinnedSnapshot<'_>, p: &Q6Params) -> HashMap<u64, u32> {
    let mut counts = HashMap::new();
    with_scratch(|sx| {
        load_two_hop(snap, sx, p.person);
        for &c in sx.one.iter().chain(sx.two.iter()) {
            for (msg, _) in snap.posts_of_iter(PersonId(c)) {
                count_post(snap, MessageId(msg), p.tag as u64, &mut counts);
            }
        }
    });
    counts
}

/// Naive: full message scan with a hash probe.
pub(crate) fn naive(snap: &PinnedSnapshot<'_>, p: &Q6Params) -> HashMap<u64, u32> {
    let mut counts = HashMap::new();
    with_scratch(|sx| {
        load_two_hop(snap, sx, p.person);
        for m in 0..snap.message_slots() as u64 {
            let id = MessageId(m);
            let Some(meta) = snap.message_meta(id) else { continue };
            // Level probe (1 = friend, 2 = FoF) replaces the circle copy.
            if meta.reply_info.is_none() && matches!(sx.level_of(meta.author.raw()), Some(1 | 2)) {
                count_post(snap, id, p.tag as u64, &mut counts);
            }
        }
    });
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};

    fn params() -> Q6Params {
        // Anchor on the busy person's own primary interest: their circle is
        // interest-correlated (§2.3), so co-occurrences exist.
        let f = fixture();
        let person = busy_person(f);
        let tag = f.ds.persons[person.index()].interests[0].index();
        Q6Params { person, tag }
    }

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        assert_eq!(run(&snap, Engine::Intended, &p), run(&snap, Engine::Naive, &p));
    }

    #[test]
    fn anchor_tag_is_not_its_own_co_occurrence() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        let anchor = Dictionaries::global().tags.tag(p.tag).name.clone();
        for r in run(&snap, Engine::Intended, &p) {
            assert_ne!(r.tag, anchor);
            assert!(r.count > 0);
        }
    }

    #[test]
    fn ordering_and_limit() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = run(&snap, Engine::Intended, &params());
        assert!(rows.len() <= LIMIT);
        for w in rows.windows(2) {
            assert!(w[0].count > w[1].count || (w[0].count == w[1].count && w[0].tag <= w[1].tag));
        }
    }
}
