//! Q3 — "Friends within 2 steps that recently traveled to countries X and Y".
//!
//! Find top-20 friends and friends-of-friends of a person who made a post
//! or comment in both foreign countries X and Y within the window
//! `[start, start + duration)`. Foreign means neither country is the
//! candidate's home country. Sorted descending by total message count,
//! ascending by person id.

use crate::engine::Engine;
use crate::helpers::load_two_hop;
use crate::params::Q3Params;
use crate::scratch::with_scratch;
use snb_core::{MessageId, PersonId};
use snb_store::PinnedSnapshot;
use std::collections::HashMap;

/// Result limit.
const LIMIT: usize = 20;

/// One result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Q3Row {
    /// The travelling person.
    pub person: PersonId,
    /// First name.
    pub first_name: &'static str,
    /// Last name.
    pub last_name: &'static str,
    /// Messages sent from country X in the window.
    pub x_count: u32,
    /// Messages sent from country Y in the window.
    pub y_count: u32,
}

/// Execute Q3.
pub fn run(snap: &PinnedSnapshot<'_>, engine: Engine, p: &Q3Params) -> Vec<Q3Row> {
    let counts = match engine {
        Engine::Intended => intended(snap, p),
        Engine::Naive => naive(snap, p),
    };
    let mut rows: Vec<Q3Row> = counts
        .into_iter()
        .filter(|&(_, (x, y))| x > 0 && y > 0)
        .filter_map(|(id, (x_count, y_count))| {
            let person = snap.person(PersonId(id))?;
            Some(Q3Row {
                person: PersonId(id),
                first_name: person.first_name,
                last_name: person.last_name,
                x_count,
                y_count,
            })
        })
        .collect();
    rows.sort_by_key(|r| (std::cmp::Reverse(r.x_count + r.y_count), r.person));
    rows.truncate(LIMIT);
    rows
}

/// Candidates whose home country is neither X nor Y.
fn candidates(snap: &PinnedSnapshot<'_>, p: &Q3Params) -> Vec<u64> {
    with_scratch(|sx| {
        load_two_hop(snap, sx, p.person);
        sx.one
            .iter()
            .chain(sx.two.iter())
            .copied()
            .filter(|&c| {
                snap.person_ref(PersonId(c))
                    .is_some_and(|pr| pr.country != p.country_x && pr.country != p.country_y)
            })
            .collect()
    })
}

/// Intended plan: traverse from the person; per candidate, a date-range
/// scan of their message index, fetching the country only for in-window
/// messages.
pub(crate) fn intended(snap: &PinnedSnapshot<'_>, p: &Q3Params) -> HashMap<u64, (u32, u32)> {
    let end = p.start.plus_days(p.duration_days);
    let mut counts = HashMap::new();
    for c in candidates(snap, p) {
        let mut x = 0u32;
        let mut y = 0u32;
        for (msg, date) in snap.messages_of_iter(PersonId(c)) {
            if date < p.start || date >= end {
                continue;
            }
            if let Some(meta) = snap.message_meta(MessageId(msg)) {
                if meta.country as usize == p.country_x {
                    x += 1;
                } else if meta.country as usize == p.country_y {
                    y += 1;
                }
            }
        }
        if x > 0 || y > 0 {
            counts.insert(c, (x, y));
        }
    }
    counts
}

/// Naive plan: full message scan grouped by author, filtered afterwards.
pub(crate) fn naive(snap: &PinnedSnapshot<'_>, p: &Q3Params) -> HashMap<u64, (u32, u32)> {
    let end = p.start.plus_days(p.duration_days);
    let cands: std::collections::HashSet<u64> = candidates(snap, p).into_iter().collect();
    let mut counts: HashMap<u64, (u32, u32)> = HashMap::new();
    for m in 0..snap.message_slots() as u64 {
        let Some(meta) = snap.message_meta(MessageId(m)) else { continue };
        if meta.creation_date < p.start || meta.creation_date >= end {
            continue;
        }
        if !cands.contains(&meta.author.raw()) {
            continue;
        }
        let entry = counts.entry(meta.author.raw()).or_default();
        if meta.country as usize == p.country_x {
            entry.0 += 1;
        } else if meta.country as usize == p.country_y {
            entry.1 += 1;
        }
    }
    counts.retain(|_, &mut (x, y)| x > 0 || y > 0);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};
    use snb_core::SimTime;

    fn params() -> Q3Params {
        let f = fixture();
        let dicts = snb_core::dict::Dictionaries::global();
        Q3Params {
            person: busy_person(f),
            country_x: dicts.places.country_by_name("China").unwrap(),
            country_y: dicts.places.country_by_name("India").unwrap(),
            start: SimTime::from_ymd(2010, 6, 1),
            duration_days: 700,
        }
    }

    #[test]
    fn intended_and_naive_agree() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        assert_eq!(run(&snap, Engine::Intended, &p), run(&snap, Engine::Naive, &p));
    }

    #[test]
    fn results_require_both_countries_and_exclude_residents() {
        let f = fixture();
        let snap = f.store.pinned();
        let p = params();
        for r in run(&snap, Engine::Intended, &p) {
            assert!(r.x_count > 0 && r.y_count > 0);
            let home = snap.person(r.person).unwrap().country;
            assert_ne!(home, p.country_x);
            assert_ne!(home, p.country_y);
        }
    }

    #[test]
    fn ordering_is_total_desc_then_id() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = run(&snap, Engine::Intended, &params());
        for w in rows.windows(2) {
            let t0 = w[0].x_count + w[0].y_count;
            let t1 = w[1].x_count + w[1].y_count;
            assert!(t0 > t1 || (t0 == t1 && w[0].person < w[1].person));
        }
    }

    #[test]
    fn empty_window_yields_nothing() {
        let f = fixture();
        let snap = f.store.pinned();
        let mut p = params();
        p.duration_days = 0;
        assert!(run(&snap, Engine::Intended, &p).is_empty());
    }
}
