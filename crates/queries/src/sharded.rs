//! Scatter-gather execution of the read queries across shards.
//!
//! The paper's driver targets a *distributed* SUT (§4): updates are
//! partitioned across driver threads and the GCT keeps dependent updates
//! ordered across machines. This module supplies the query half of that
//! story — every complex read and S2 can be answered exactly by a set of
//! shard processes that each hold the replicated person/knows graph plus a
//! forum-partitioned slice of the activity
//! ([`snb_core::shard::ShardMap`]), because each query decomposes into a
//! per-shard **partial** plus a pure client-side **merge**:
//!
//! * **Top-union queries** (Q2, Q5, Q7, Q8, Q9, S2): result items live on
//!   exactly one shard, and every ordering key is computable locally. The
//!   global top-k is the top-k of the union of per-shard top-k lists, so a
//!   shard ships its own `run()` rows and [`merge`] re-sorts the union.
//!   Q7 additionally de-duplicates per liker (keep the latest like); the
//!   per-shard winner for a liker equals the global winner on the shard
//!   that owns it, so local-dedup-then-union stays exact.
//! * **Additive-group queries** (Q3, Q4, Q6, Q10, Q12, Q14): the measure
//!   is a sum over messages, and every message is owned by exactly one
//!   shard, so per-group partial aggregates add up to the global
//!   aggregate. Shards ship the **untruncated** group map (it is bounded
//!   by the candidate circle or tag dictionary, not the message count) and
//!   [`merge`] sums, filters, and ranks. Q14 ships path-pair weights in
//!   integer half-units so cross-shard addition is exact.
//! * **Replicated-only queries** (Q1, Q11, Q13): they touch persons and
//!   knows exclusively, which every shard replicates, so any single shard
//!   answers exactly ([`scatters`] returns false and the connector routes
//!   them whole).
//!
//! Rows cross the wire as [`MergedRow`]: an explicit ascending sort `key`
//! (descending orders are encoded by negation), identifier/measure
//! columns, and the display strings that only the owning shard can
//! resolve (message content, person names). Strings resolvable from the
//! embedded dictionaries (tag names, company names) are re-resolved
//! client-side instead of shipped.

use crate::complex::{q1, q10, q11, q12, q13, q14, q2, q3, q4, q5, q6, q7, q8, q9};
use crate::engine::Engine;
use crate::params::{ComplexQuery, ShortQuery};
use crate::short;
use snb_core::dict::Dictionaries;
use snb_store::PinnedSnapshot;
use std::cmp::Reverse;
use std::collections::{HashMap, HashSet};

/// One merged result row: an explicit sort key (ascending; descending
/// orders negate), id/measure columns, and owning-shard-resolved strings.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct MergedRow {
    /// Ascending composite sort key.
    pub key: [i64; 3],
    /// Identifier and measure columns (per-query layout, documented on
    /// [`partial`]).
    pub cols: Vec<i64>,
    /// Display strings only the owning shard can resolve.
    pub text: Vec<String>,
}

/// One per-shard group aggregate: `(k1, k2)` identify the group, `a`/`b`
/// carry additive measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupRow {
    /// Primary group key (person, tag, forum, or pair-min id).
    pub k1: u64,
    /// Secondary key / kind discriminator (query-specific).
    pub k2: u64,
    /// First additive measure.
    pub a: i64,
    /// Second additive measure.
    pub b: i64,
}

/// A shard's contribution to one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partial {
    /// Local top-`limit` rows in final-key form (top-union queries, and
    /// the whole result for replicated-only queries).
    Top {
        /// Global result limit the merge applies after re-sorting.
        limit: u32,
        /// Local rows, already keyed.
        rows: Vec<MergedRow>,
    },
    /// Untruncated additive aggregates (group queries).
    Groups {
        /// Per-group partial sums.
        rows: Vec<GroupRow>,
        /// Set-valued attachments (Q12: friend → matched tag id).
        pairs: Vec<(u64, u64)>,
        /// Q14 only: the shortest paths (identical on every shard — the
        /// knows graph is replicated — so the merge reads the first).
        paths: Vec<Vec<u64>>,
    },
}

/// Whether the sharded connector scatters this query to every shard.
/// False for the replicated-only queries, which any one shard answers.
pub fn scatters(q: &ComplexQuery) -> bool {
    !matches!(q, ComplexQuery::Q1(_) | ComplexQuery::Q11(_) | ComplexQuery::Q13(_))
}

/// Whether the sharded connector scatters this short read. Only S2 (a
/// person's newest messages) spans shards; the rest are single-row point
/// lookups routed by owner.
pub fn scatters_short(s: &ShortQuery) -> bool {
    matches!(s, ShortQuery::S2(_))
}

/// Rows in rank order wrapped as an unlimited Top partial (replicated-only
/// queries: the single answering shard already produced the final order).
fn rank_rows(rows: impl Iterator<Item = MergedRow>) -> Partial {
    let rows = rows
        .enumerate()
        .map(|(i, mut r)| {
            r.key = [i as i64, 0, 0];
            r
        })
        .collect();
    Partial::Top { limit: u32::MAX, rows }
}

fn top(limit: u32, rows: Vec<MergedRow>) -> Partial {
    Partial::Top { limit, rows }
}

fn groups(mut rows: Vec<GroupRow>) -> Partial {
    // Deterministic wire order (aggregation maps iterate randomly).
    rows.sort_by_key(|r| (r.k1, r.k2));
    Partial::Groups { rows, pairs: Vec::new(), paths: Vec::new() }
}

/// Compute this shard's partial answer. Column layouts (`cols` / `text`):
///
/// | query | cols | text |
/// |-------|------|------|
/// | Q1  | person, distance, #unis | last, city, unis…, companies… |
/// | Q2/Q9 | author, message, date | first, last, content |
/// | Q3  | person, x_count, y_count | — |
/// | Q4/Q6 | count | tag name |
/// | Q5  | forum, count | title |
/// | Q7  | liker, message, like_date, latency_min, is_new | first, last |
/// | Q8  | commenter, comment, date | first, last, content |
/// | Q10 | person, score | first, last |
/// | Q11 | person, work_from | first, last, company |
/// | Q12 | person, count | first, last, tag names… |
/// | Q13 | path length (one row iff reachable) | — |
/// | Q14 | weight half-units, path… | — |
/// | S2  | message, date, root_post, root_author | content |
pub fn partial(snap: &PinnedSnapshot<'_>, engine: Engine, q: &ComplexQuery) -> Partial {
    match q {
        ComplexQuery::Q1(p) => rank_rows(q1::run(snap, engine, p).into_iter().map(|r| {
            let mut text = vec![r.last_name.to_string(), r.city.to_string()];
            let unis = r.universities.len() as i64;
            text.extend(r.universities);
            text.extend(r.companies);
            MergedRow {
                key: [0; 3],
                cols: vec![r.person.raw() as i64, r.distance as i64, unis],
                text,
            }
        })),
        ComplexQuery::Q2(p) => top(
            20,
            q2::run(snap, engine, p)
                .into_iter()
                .map(|r| MergedRow {
                    key: [-r.creation_date.0, r.message.raw() as i64, 0],
                    cols: vec![r.author.raw() as i64, r.message.raw() as i64, r.creation_date.0],
                    text: vec![r.first_name.to_string(), r.last_name.to_string(), r.content],
                })
                .collect(),
        ),
        ComplexQuery::Q3(p) => {
            let counts = match engine {
                Engine::Intended => q3::intended(snap, p),
                Engine::Naive => q3::naive(snap, p),
            };
            groups(
                counts
                    .into_iter()
                    .map(|(id, (x, y))| GroupRow { k1: id, k2: 0, a: x as i64, b: y as i64 })
                    .collect(),
            )
        }
        ComplexQuery::Q4(p) => {
            let (in_window, before) = match engine {
                Engine::Intended => q4::intended(snap, p),
                Engine::Naive => q4::naive(snap, p),
            };
            let mut rows: Vec<GroupRow> = in_window
                .into_iter()
                .map(|(tag, count)| GroupRow { k1: tag, k2: 0, a: count as i64, b: 0 })
                .collect();
            rows.extend(before.into_iter().map(|tag| GroupRow { k1: tag, k2: 1, a: 0, b: 0 }));
            groups(rows)
        }
        ComplexQuery::Q5(p) => top(
            20,
            q5::run(snap, engine, p)
                .into_iter()
                .map(|r| MergedRow {
                    key: [-(r.count as i64), r.forum.raw() as i64, 0],
                    cols: vec![r.forum.raw() as i64, r.count as i64],
                    text: vec![r.title],
                })
                .collect(),
        ),
        ComplexQuery::Q6(p) => {
            let counts = match engine {
                Engine::Intended => q6::intended(snap, p),
                Engine::Naive => q6::naive(snap, p),
            };
            groups(
                counts
                    .into_iter()
                    .map(|(tag, count)| GroupRow { k1: tag, k2: 0, a: count as i64, b: 0 })
                    .collect(),
            )
        }
        ComplexQuery::Q7(p) => top(
            20,
            q7::run(snap, engine, p)
                .into_iter()
                .map(|r| MergedRow {
                    key: [-r.like_date.0, r.liker.raw() as i64, 0],
                    cols: vec![
                        r.liker.raw() as i64,
                        r.message.raw() as i64,
                        r.like_date.0,
                        r.latency_minutes,
                        i64::from(r.is_new),
                    ],
                    text: vec![r.first_name.to_string(), r.last_name.to_string()],
                })
                .collect(),
        ),
        ComplexQuery::Q8(p) => top(
            20,
            q8::run(snap, engine, p)
                .into_iter()
                .map(|r| MergedRow {
                    key: [-r.creation_date.0, r.comment.raw() as i64, 0],
                    cols: vec![r.commenter.raw() as i64, r.comment.raw() as i64, r.creation_date.0],
                    text: vec![r.first_name.to_string(), r.last_name.to_string(), r.content],
                })
                .collect(),
        ),
        ComplexQuery::Q9(p) => top(
            20,
            q9::run(snap, engine, p)
                .into_iter()
                .map(|r| MergedRow {
                    key: [-r.creation_date.0, r.message.raw() as i64, 0],
                    cols: vec![r.author.raw() as i64, r.message.raw() as i64, r.creation_date.0],
                    text: vec![r.first_name.to_string(), r.last_name.to_string(), r.content],
                })
                .collect(),
        ),
        ComplexQuery::Q10(p) => {
            let interests: HashSet<snb_core::TagId> = match snap.person(p.person) {
                Some(me) => me.interests.iter().copied().collect(),
                None => return groups(Vec::new()),
            };
            let cands = q10::horoscope_candidates(snap, p);
            let scores = match engine {
                Engine::Intended => q10::intended(snap, &cands, &interests),
                Engine::Naive => q10::naive(snap, &cands, &interests),
            };
            // score = 2·common − total is linear in per-message terms, so
            // per-shard scores add up to the global score.
            groups(scores.into_iter().map(|(c, s)| GroupRow { k1: c, k2: 0, a: s, b: 0 }).collect())
        }
        ComplexQuery::Q11(p) => {
            rank_rows(q11::run(snap, engine, p).into_iter().map(|r| MergedRow {
                key: [0; 3],
                cols: vec![r.person.raw() as i64, r.work_from as i64],
                text: vec![r.first_name.to_string(), r.last_name.to_string(), r.company],
            }))
        }
        ComplexQuery::Q12(p) => {
            let dicts = Dictionaries::global();
            let classes: HashSet<usize> =
                dicts.tags.class_descendants(p.tag_class).into_iter().collect();
            let agg = match engine {
                Engine::Intended => q12::intended(snap, p, &classes),
                Engine::Naive => q12::naive(snap, p, &classes),
            };
            let mut rows = Vec::with_capacity(agg.len());
            let mut pairs = Vec::new();
            for (friend, (count, tags)) in agg {
                rows.push(GroupRow { k1: friend, k2: 0, a: count as i64, b: 0 });
                pairs.extend(tags.into_iter().map(|t| (friend, t)));
            }
            rows.sort_by_key(|r| (r.k1, r.k2));
            pairs.sort_unstable();
            Partial::Groups { rows, pairs, paths: Vec::new() }
        }
        ComplexQuery::Q13(p) => {
            let len = q13::run(snap, engine, p);
            let rows = if len >= 0 {
                vec![MergedRow { key: [0; 3], cols: vec![len as i64], text: Vec::new() }]
            } else {
                Vec::new()
            };
            Partial::Top { limit: u32::MAX, rows }
        }
        ComplexQuery::Q14(p) => {
            let paths = q14::shortest_paths(snap, engine, p);
            // Weight every unique adjacent pair once, in integer
            // half-units (post-parent reply = 2, comment-parent = 1) so
            // the cross-shard sum is exact.
            let mut rows = Vec::new();
            let mut seen: HashSet<(u64, u64)> = HashSet::new();
            for path in &paths {
                for w in path.windows(2) {
                    let pair = (w[0].min(w[1]), w[0].max(w[1]));
                    if seen.insert(pair) {
                        let halves = half_units(
                            q14::directed_weight(snap, pair.0, pair.1)
                                + q14::directed_weight(snap, pair.1, pair.0),
                        );
                        rows.push(GroupRow { k1: pair.0, k2: pair.1, a: halves, b: 0 });
                    }
                }
            }
            rows.sort_by_key(|r| (r.k1, r.k2));
            Partial::Groups { rows, pairs: Vec::new(), paths }
        }
    }
}

/// Partial for a scattered short read (S2 only; see [`scatters_short`]).
pub fn partial_short(snap: &PinnedSnapshot<'_>, s: &ShortQuery) -> Option<Partial> {
    match s {
        ShortQuery::S2(person) => Some(top(
            10,
            short::s2_recent_messages(snap, *person)
                .into_iter()
                .map(|r| MergedRow {
                    // S2 walk order: date desc, message id desc.
                    key: [-r.creation_date.0, -(r.message.raw() as i64), 0],
                    cols: vec![
                        r.message.raw() as i64,
                        r.creation_date.0,
                        r.root_post.raw() as i64,
                        r.root_author.raw() as i64,
                    ],
                    text: vec![r.content],
                })
                .collect(),
        )),
        _ => None,
    }
}

/// Exact conversion of weights that are multiples of 0.5 into half-units.
fn half_units(w: f64) -> i64 {
    (w * 2.0).round() as i64
}

/// Merge per-shard partials into the final result rows (final order,
/// truncated to the query's limit). Exact for every query — see the
/// module docs for the per-class argument.
pub fn merge(q: &ComplexQuery, parts: Vec<Partial>) -> Vec<MergedRow> {
    match q {
        ComplexQuery::Q1(_)
        | ComplexQuery::Q2(_)
        | ComplexQuery::Q5(_)
        | ComplexQuery::Q8(_)
        | ComplexQuery::Q9(_)
        | ComplexQuery::Q11(_)
        | ComplexQuery::Q13(_) => merge_top(parts),
        ComplexQuery::Q7(_) => merge_q7(parts),
        ComplexQuery::Q3(_) => {
            let (acc, _, _) = sum_groups(parts);
            let mut out: Vec<MergedRow> = acc
                .into_iter()
                .filter(|&(_, (x, y))| x > 0 && y > 0)
                .map(|((id, _), (x, y))| MergedRow {
                    key: [-(x + y), id as i64, 0],
                    cols: vec![id as i64, x, y],
                    text: Vec::new(),
                })
                .collect();
            out.sort();
            out.truncate(20);
            out
        }
        ComplexQuery::Q4(_) => {
            let (acc, _, _) = sum_groups(parts);
            let mut win: HashMap<u64, i64> = HashMap::new();
            let mut before: HashSet<u64> = HashSet::new();
            for ((tag, kind), (count, _)) in acc {
                if kind == 0 {
                    *win.entry(tag).or_default() += count;
                } else {
                    before.insert(tag);
                }
            }
            win.retain(|tag, _| !before.contains(tag));
            rank_tag_counts(win, 10)
        }
        ComplexQuery::Q6(_) => {
            let (acc, _, _) = sum_groups(parts);
            rank_tag_counts(acc.into_iter().map(|((tag, _), (c, _))| (tag, c)).collect(), 10)
        }
        ComplexQuery::Q10(_) => {
            let (acc, _, _) = sum_groups(parts);
            let mut out: Vec<(Reverse<i64>, u64)> =
                acc.into_iter().map(|((id, _), (score, _))| (Reverse(score), id)).collect();
            out.sort_unstable();
            out.truncate(10);
            out.into_iter()
                .map(|(Reverse(score), id)| MergedRow {
                    key: [-score, id as i64, 0],
                    cols: vec![id as i64, score],
                    text: Vec::new(),
                })
                .collect()
        }
        ComplexQuery::Q12(_) => {
            let (acc, pairs, _) = sum_groups(parts);
            let mut tags: HashMap<u64, std::collections::BTreeSet<u64>> = HashMap::new();
            for (friend, tag) in pairs {
                tags.entry(friend).or_default().insert(tag);
            }
            let mut out: Vec<(Reverse<i64>, u64)> = acc
                .into_iter()
                .filter(|&(_, (count, _))| count > 0)
                .map(|((id, _), (count, _))| (Reverse(count), id))
                .collect();
            out.sort_unstable();
            out.truncate(20);
            out.into_iter()
                .map(|(Reverse(count), id)| MergedRow {
                    key: [-count, id as i64, 0],
                    cols: vec![id as i64, count],
                    text: q12::tag_names(&tags.remove(&id).unwrap_or_default()),
                })
                .collect()
        }
        ComplexQuery::Q14(_) => {
            let (acc, _, paths) = sum_groups(parts);
            let mut out: Vec<MergedRow> = paths
                .into_iter()
                .map(|path| {
                    let halves: i64 = path
                        .windows(2)
                        .map(|w| {
                            let pair = (w[0].min(w[1]), w[0].max(w[1]));
                            acc.get(&pair).map_or(0, |&(h, _)| h)
                        })
                        .sum();
                    let mut cols = vec![halves];
                    cols.extend(path.iter().map(|&p| p as i64));
                    MergedRow { key: [-halves, 0, 0], cols, text: Vec::new() }
                })
                .collect();
            // Weight desc, then path asc (cols after the shared halves
            // column compare lexicographically over the path ids).
            out.sort();
            out
        }
    }
}

/// Merge partials of a scattered short read (S2 only).
pub fn merge_short(s: &ShortQuery, parts: Vec<Partial>) -> Vec<MergedRow> {
    debug_assert!(scatters_short(s));
    merge_top(parts)
}

/// Union per-shard top lists, re-sort on the explicit key, truncate.
fn merge_top(parts: Vec<Partial>) -> Vec<MergedRow> {
    let mut limit = usize::MAX;
    let mut all = Vec::new();
    for p in parts {
        if let Partial::Top { limit: l, rows } = p {
            limit = l as usize;
            all.extend(rows);
        }
    }
    all.sort();
    all.truncate(limit);
    all
}

/// Q7: de-duplicate per liker keeping the globally latest like (larger
/// date; smaller message id on ties), then rank.
fn merge_q7(parts: Vec<Partial>) -> Vec<MergedRow> {
    let mut latest: HashMap<i64, MergedRow> = HashMap::new();
    for p in parts {
        let Partial::Top { rows, .. } = p else { continue };
        for row in rows {
            let (liker, msg, date) = (row.cols[0], row.cols[1], row.cols[2]);
            match latest.entry(liker) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(row);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let cur = e.get();
                    if (date, Reverse(msg)) > (cur.cols[2], Reverse(cur.cols[1])) {
                        e.insert(row);
                    }
                }
            }
        }
    }
    let mut all: Vec<MergedRow> = latest.into_values().collect();
    all.sort();
    all.truncate(20);
    all
}

/// Sum group measures per (k1, k2); union pairs; keep the first shard's
/// paths (identical everywhere — the knows graph is replicated).
type GroupSums = (HashMap<(u64, u64), (i64, i64)>, Vec<(u64, u64)>, Vec<Vec<u64>>);

fn sum_groups(parts: Vec<Partial>) -> GroupSums {
    let mut acc: HashMap<(u64, u64), (i64, i64)> = HashMap::new();
    let mut all_pairs = Vec::new();
    let mut first_paths: Option<Vec<Vec<u64>>> = None;
    for p in parts {
        let Partial::Groups { rows, pairs, paths } = p else { continue };
        for r in rows {
            let e = acc.entry((r.k1, r.k2)).or_default();
            e.0 += r.a;
            e.1 += r.b;
        }
        all_pairs.extend(pairs);
        first_paths.get_or_insert(paths);
    }
    (acc, all_pairs, first_paths.unwrap_or_default())
}

/// Shared Q4/Q6 ranking: count desc, tag name asc, truncate, materialize
/// names from the embedded dictionary (identical in every process).
fn rank_tag_counts(counts: HashMap<u64, i64>, limit: usize) -> Vec<MergedRow> {
    let dicts = Dictionaries::global();
    let mut out: Vec<(Reverse<i64>, String)> = counts
        .into_iter()
        .map(|(tag, count)| (Reverse(count), dicts.tags.tag(tag as usize).name.clone()))
        .collect();
    out.sort_unstable();
    out.truncate(limit);
    out.into_iter()
        .enumerate()
        .map(|(i, (Reverse(count), name))| MergedRow {
            key: [i as i64, 0, 0],
            cols: vec![count],
            text: vec![name],
        })
        .collect()
}

/// Single-process oracle: the plain `run()` rows converted into the same
/// [`MergedRow`] layout [`merge`] produces. Differential tests (and the
/// sharded loopback test in `snb-net`) compare scattered merges against
/// this pointwise.
pub fn reference(snap: &PinnedSnapshot<'_>, engine: Engine, q: &ComplexQuery) -> Vec<MergedRow> {
    match q {
        ComplexQuery::Q3(p) => q3::run(snap, engine, p)
            .into_iter()
            .map(|r| {
                let (x, y) = (r.x_count as i64, r.y_count as i64);
                MergedRow {
                    key: [-(x + y), r.person.raw() as i64, 0],
                    cols: vec![r.person.raw() as i64, x, y],
                    text: Vec::new(),
                }
            })
            .collect(),
        ComplexQuery::Q4(p) => q4::run(snap, engine, p)
            .into_iter()
            .enumerate()
            .map(|(i, r)| MergedRow {
                key: [i as i64, 0, 0],
                cols: vec![r.count as i64],
                text: vec![r.tag],
            })
            .collect(),
        ComplexQuery::Q6(p) => q6::run(snap, engine, p)
            .into_iter()
            .enumerate()
            .map(|(i, r)| MergedRow {
                key: [i as i64, 0, 0],
                cols: vec![r.count as i64],
                text: vec![r.tag],
            })
            .collect(),
        ComplexQuery::Q10(p) => q10::run(snap, engine, p)
            .into_iter()
            .map(|r| MergedRow {
                key: [-r.score, r.person.raw() as i64, 0],
                cols: vec![r.person.raw() as i64, r.score],
                text: Vec::new(),
            })
            .collect(),
        ComplexQuery::Q12(p) => q12::run(snap, engine, p)
            .into_iter()
            .map(|r| MergedRow {
                key: [-(r.count as i64), r.person.raw() as i64, 0],
                cols: vec![r.person.raw() as i64, r.count as i64],
                text: r.tags,
            })
            .collect(),
        ComplexQuery::Q14(p) => q14::run(snap, engine, p)
            .into_iter()
            .map(|r| {
                let halves = half_units(r.weight);
                let mut cols = vec![halves];
                cols.extend(r.path.iter().map(|p| p.raw() as i64));
                MergedRow { key: [-halves, 0, 0], cols, text: Vec::new() }
            })
            .collect(),
        // Top-union and replicated-only queries: the reference conversion
        // is exactly the partial conversion over the full store.
        _ => merge(q, vec![partial(snap, engine, q)]),
    }
}

/// Single-process S2 oracle (see [`reference`]).
pub fn reference_short(snap: &PinnedSnapshot<'_>, s: &ShortQuery) -> Vec<MergedRow> {
    partial_short(snap, s).map(|p| merge_short(s, vec![p])).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::*;
    use crate::testutil::{busy_person, fixture, mid_date};
    use snb_core::shard::ShardMap;
    use snb_core::PersonId;
    use snb_store::Store;
    use std::sync::OnceLock;

    /// Two stores holding the 2-shard split of the fixture dataset.
    fn shards() -> &'static [Store; 2] {
        static S: OnceLock<[Store; 2]> = OnceLock::new();
        S.get_or_init(|| {
            let f = fixture();
            let map = ShardMap::new(2);
            let mk = |i| {
                let s = Store::new();
                s.bulk_load_sharded(&f.ds, f.ds.config.end, 2, map, i);
                s
            };
            [mk(0), mk(1)]
        })
    }

    fn queries() -> Vec<ComplexQuery> {
        let f = fixture();
        let person = busy_person(f);
        let other =
            PersonId((person.raw() + f.ds.persons.len() as u64 / 2) % f.ds.persons.len() as u64);
        let dicts = snb_core::dict::Dictionaries::global();
        let start = mid_date();
        vec![
            ComplexQuery::Q1(Q1Params { person, first_name: "John".into() }),
            ComplexQuery::Q2(Q2Params { person, max_date: start }),
            ComplexQuery::Q3(Q3Params {
                person,
                country_x: 1,
                country_y: 2,
                start,
                duration_days: 120,
            }),
            ComplexQuery::Q4(Q4Params { person, start, duration_days: 90 }),
            ComplexQuery::Q5(Q5Params { person, min_date: start }),
            ComplexQuery::Q6(Q6Params { person, tag: 3 }),
            ComplexQuery::Q7(Q7Params { person }),
            ComplexQuery::Q8(Q8Params { person }),
            ComplexQuery::Q9(Q9Params { person, max_date: start }),
            ComplexQuery::Q10(Q10Params { person, month: 4 }),
            ComplexQuery::Q11(Q11Params { person, country: 1, max_year: 2011 }),
            ComplexQuery::Q12(Q12Params {
                person,
                tag_class: dicts.tags.class_by_name("Thing").unwrap(),
            }),
            ComplexQuery::Q13(Q13Params { person_x: person, person_y: other }),
            ComplexQuery::Q14(Q14Params { person_x: person, person_y: other }),
        ]
    }

    #[test]
    fn merging_one_full_partial_matches_the_plain_run() {
        let f = fixture();
        let snap = f.store.pinned();
        for q in queries() {
            for engine in [Engine::Intended, Engine::Naive] {
                let merged = merge(&q, vec![partial(&snap, engine, &q)]);
                let expect = reference(&snap, engine, &q);
                assert_eq!(merged, expect, "{q:?} single-partial identity");
            }
        }
    }

    #[test]
    fn two_shard_scatter_merge_is_pointwise_equal_to_the_full_store() {
        let f = fixture();
        let full = f.store.pinned();
        let [s0, s1] = shards();
        let (p0, p1) = (s0.pinned(), s1.pinned());
        for q in queries() {
            let expect = reference(&full, Engine::Intended, &q);
            if scatters(&q) {
                let merged = merge(
                    &q,
                    vec![partial(&p0, Engine::Intended, &q), partial(&p1, Engine::Intended, &q)],
                );
                assert_eq!(merged, expect, "{q:?} 2-shard scatter");
            } else {
                // Replicated-only queries: any single shard answers whole.
                for p in [&p0, &p1] {
                    let merged = merge(&q, vec![partial(p, Engine::Intended, &q)]);
                    assert_eq!(merged, expect, "{q:?} single-shard route");
                }
            }
        }
    }

    #[test]
    fn two_shard_s2_matches_the_full_store_for_many_persons() {
        let f = fixture();
        let full = f.store.pinned();
        let [s0, s1] = shards();
        let (p0, p1) = (s0.pinned(), s1.pinned());
        for raw in (0..f.ds.persons.len() as u64).step_by(7) {
            let s = ShortQuery::S2(PersonId(raw));
            let merged = merge_short(
                &s,
                vec![partial_short(&p0, &s).unwrap(), partial_short(&p1, &s).unwrap()],
            );
            assert_eq!(merged, reference_short(&full, &s), "S2 person {raw}");
        }
    }

    #[test]
    fn row_counts_match_run_complex() {
        // The driver's uniform row-count interface must agree with the
        // sharded path, since OpOutcome.rows feeds validation.
        let f = fixture();
        let snap = f.store.pinned();
        for q in queries() {
            let rows = merge(&q, vec![partial(&snap, Engine::Intended, &q)]).len();
            let plain = crate::complex::run_complex(&snap, Engine::Intended, &q);
            assert_eq!(rows, plain, "{q:?} row count");
        }
    }

    #[test]
    fn shard_stores_hold_disjoint_activity_and_replicated_persons() {
        let f = fixture();
        let [s0, s1] = shards();
        let (p0, p1) = (s0.pinned(), s1.pinned());
        let full = f.store.pinned();
        assert_eq!(p0.person_slots(), full.person_slots());
        assert_eq!(p1.person_slots(), full.person_slots());
        let m0: usize = (0..p0.message_slots() as u64)
            .filter(|&m| p0.message_meta(snb_core::MessageId(m)).is_some())
            .count();
        let m1: usize = (0..p1.message_slots() as u64)
            .filter(|&m| p1.message_meta(snb_core::MessageId(m)).is_some())
            .count();
        let mf: usize = (0..full.message_slots() as u64)
            .filter(|&m| full.message_meta(snb_core::MessageId(m)).is_some())
            .count();
        assert!(m0 > 0 && m1 > 0, "both shards own activity");
        assert_eq!(m0 + m1, mf, "activity partitions exactly");
    }
}
