//! Transactional update execution (U1–U8).
//!
//! The update operations themselves are defined in
//! [`snb_core::update::UpdateOp`] and applied by the store as single ACID
//! transactions; this module is the workload-side executor the driver calls,
//! mirroring [`crate::complex::run_complex`] / [`crate::short::run_short`].

use snb_core::update::UpdateOp;
use snb_core::SnbResult;
use snb_store::Store;

/// Execute one update transaction against the store.
pub fn run_update(store: &Store, op: &UpdateOp) -> SnbResult<()> {
    store.apply(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fixture;
    use snb_store::Store;

    #[test]
    fn replaying_the_update_stream_executes_all_eight_types() {
        let f = fixture();
        let store = Store::new();
        store.bulk_load(&f.ds);
        let mut seen = [0usize; 9];
        for u in f.ds.update_stream() {
            run_update(&store, &u.op).unwrap();
            seen[u.op.query_number()] += 1;
        }
        for (q, &n) in seen.iter().enumerate().skip(1) {
            assert!(n > 0, "U{q} never executed");
        }
    }

    #[test]
    fn duplicate_update_is_rejected() {
        let f = fixture();
        let store = Store::new();
        store.bulk_load(&f.ds);
        let stream = f.ds.update_stream();
        let first_person = stream.iter().find(|u| matches!(u.op, UpdateOp::AddPerson(_))).unwrap();
        run_update(&store, &first_person.op).unwrap();
        assert!(run_update(&store, &first_person.op).is_err());
    }
}
