//! Per-thread reusable query workspace.
//!
//! Traversal-heavy queries used to allocate a fresh `HashSet`/`HashMap`
//! per execution for visited tracking — pure allocator churn plus hashing
//! on every probe. Persons are dense in the id space (the store's tables
//! are id-indexed vectors), so a dense epoch-stamped visited map does the
//! same job with O(1) clears and index-arithmetic probes, and it can be
//! kept alive across queries in a thread-local and reused.
//!
//! [`with_scratch`] hands the current thread's workspace to a closure —
//! the standard shape for every query entry point. Reuses are ticked into
//! the current [`snb_obs::QueryProfile`] scope (`scratch_reuses`), so full
//! disclosure shows how often the workspace was warm.

use snb_obs::tick_scratch_reuses;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Reusable dense visited map plus traversal buffers.
///
/// The visited map is epoch-stamped: slot `i` is marked iff
/// `stamp[i] == epoch`, so [`QueryScratch::begin`] clears it by bumping
/// the epoch instead of touching memory. A marked slot also records its
/// hop level (0 = the anchor person, 1 = friend, 2 = friend-of-friend, …),
/// which is what lets queries probe "one-hop or two-hop?" without copying
/// the two frontiers into a merged set.
#[derive(Debug, Default)]
pub struct QueryScratch {
    stamp: Vec<u32>,
    level: Vec<u8>,
    epoch: u32,
    /// Direct friends of the anchor (filled by the `load_*` helpers).
    pub one: Vec<u64>,
    /// Friends-of-friends, excluding friends and the anchor.
    pub two: Vec<u64>,
    /// BFS queue carrying `(person, depth)` — depth rides in the entry so
    /// no distance-map lookup is needed per pop.
    pub(crate) queue: VecDeque<(u64, u32)>,
    used: bool,
}

impl QueryScratch {
    pub fn new() -> QueryScratch {
        QueryScratch::default()
    }

    /// Start a new query over a person id space of `slots`: clears the
    /// visited map (epoch bump) and the frontier buffers.
    pub fn begin(&mut self, slots: usize) {
        if self.stamp.len() < slots {
            self.stamp.resize(slots, 0);
            self.level.resize(slots, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wraparound: stale stamps could collide; hard-clear once
            // every 4 billion queries.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.one.clear();
        self.two.clear();
        self.queue.clear();
    }

    /// Mark `id` at `level`; returns true when it was not yet marked this
    /// epoch (ids outside the `begin` bound are reported as already seen).
    #[inline]
    pub fn mark(&mut self, id: u64, level: u8) -> bool {
        let Some(slot) = self.stamp.get_mut(id as usize) else {
            return false;
        };
        if *slot == self.epoch {
            return false;
        }
        *slot = self.epoch;
        self.level[id as usize] = level;
        true
    }

    /// Whether `id` was marked this epoch.
    #[inline]
    pub fn is_marked(&self, id: u64) -> bool {
        self.stamp.get(id as usize).is_some_and(|&s| s == self.epoch)
    }

    /// Hop level of `id`, if marked this epoch.
    #[inline]
    pub fn level_of(&self, id: u64) -> Option<u8> {
        self.is_marked(id).then(|| self.level[id as usize])
    }
}

thread_local! {
    static SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::new());
}

/// Run `f` with this thread's [`QueryScratch`]. Reuse (any call after the
/// thread's first) ticks `scratch_reuses` in the current profile scope.
/// Re-entrant calls fall back to a fresh workspace instead of panicking,
/// so helpers stay composable.
pub fn with_scratch<R>(f: impl FnOnce(&mut QueryScratch) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut sx) => {
            if sx.used {
                tick_scratch_reuses(1);
            }
            sx.used = true;
            f(&mut sx)
        }
        Err(_) => f(&mut QueryScratch::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_clears_marks_in_constant_time() {
        let mut sx = QueryScratch::new();
        sx.begin(8);
        assert!(sx.mark(3, 1));
        assert!(!sx.mark(3, 2), "re-mark must report already-seen");
        assert!(sx.is_marked(3));
        assert_eq!(sx.level_of(3), Some(1), "first mark's level wins");
        sx.begin(8);
        assert!(!sx.is_marked(3), "epoch bump clears the map");
        assert_eq!(sx.level_of(3), None);
    }

    #[test]
    fn out_of_range_ids_are_never_marked() {
        let mut sx = QueryScratch::new();
        sx.begin(4);
        assert!(!sx.mark(9, 1));
        assert!(!sx.is_marked(9));
    }

    #[test]
    fn scratch_is_reused_across_queries() {
        let profile = std::sync::Arc::new(snb_obs::QueryProfile::new());
        let _guard = snb_obs::QueryProfile::enter(std::sync::Arc::clone(&profile));
        with_scratch(|sx| sx.begin(4));
        with_scratch(|sx| sx.begin(4));
        // At least the second call reuses (the first may too if another
        // test on this thread warmed the workspace).
        assert!(profile.snapshot().scratch_reuses >= 1);
    }

    #[test]
    fn nested_with_scratch_falls_back_to_fresh() {
        with_scratch(|outer| {
            outer.begin(4);
            outer.mark(1, 1);
            with_scratch(|inner| {
                inner.begin(4);
                assert!(!inner.is_marked(1), "nested scope must not alias the outer workspace");
            });
            assert!(outer.is_marked(1));
        });
    }
}
