//! The 7 short read-only queries (§4, "Simple read-only queries").
//!
//! "The bulk of the user queries are simpler and perform lookups: (i)
//! Profile view [...] (ii) Post view". Following the LDBC specification
//! these decompose into S1-S3 (person-anchored) and S4-S7
//! (message-anchored); the driver chains them in a random walk where
//! profile lookups feed post lookups and vice versa.

use crate::params::ShortQuery;
use snb_core::time::SimTime;
use snb_core::{ForumId, MessageId, PersonId};
use snb_store::PinnedSnapshot;

/// S1 — person profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// First name.
    pub first_name: &'static str,
    /// Last name.
    pub last_name: &'static str,
    /// Birthday.
    pub birthday: SimTime,
    /// IP address.
    pub location_ip: String,
    /// Browser.
    pub browser: &'static str,
    /// Home city (dictionary index).
    pub city: usize,
    /// Gender string.
    pub gender: &'static str,
    /// Account creation date.
    pub creation_date: SimTime,
}

/// Run S1.
pub fn s1_profile(snap: &PinnedSnapshot<'_>, person: PersonId) -> Option<ProfileRow> {
    let p = snap.person(person)?;
    Some(ProfileRow {
        first_name: p.first_name,
        last_name: p.last_name,
        birthday: p.birthday,
        location_ip: p.location_ip.clone(),
        browser: p.browser,
        city: p.city,
        gender: p.gender.as_str(),
        creation_date: p.creation_date,
    })
}

/// S2 — a person's 10 most recent messages, with the root post of each
/// thread and its author.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecentMessageRow {
    /// The message.
    pub message: MessageId,
    /// Its content (or image file).
    pub content: String,
    /// Creation date.
    pub creation_date: SimTime,
    /// Root post of the conversation (the message itself for posts).
    pub root_post: MessageId,
    /// Author of the root post.
    pub root_author: PersonId,
}

/// Run S2.
pub fn s2_recent_messages(snap: &PinnedSnapshot<'_>, person: PersonId) -> Vec<RecentMessageRow> {
    snap.recent_messages_walk(person, SimTime(i64::MAX))
        .take(10)
        .filter_map(|(msg, date)| {
            let row = snap.message(MessageId(msg))?;
            let root = row.reply_info.map(|(_, root)| root).unwrap_or(MessageId(msg));
            let root_author = snap.message_meta(root)?.author;
            let content = row
                .image_file
                .as_deref()
                .filter(|_| row.content.is_empty())
                .unwrap_or(&row.content)
                .to_string();
            Some(RecentMessageRow {
                message: MessageId(msg),
                content,
                creation_date: date,
                root_post: root,
                root_author,
            })
        })
        .collect()
}

/// S3 — friends of a person with friendship dates, newest first, id
/// tie-break ascending.
pub fn s3_friends(snap: &PinnedSnapshot<'_>, person: PersonId) -> Vec<(PersonId, SimTime)> {
    let mut friends: Vec<(PersonId, SimTime)> =
        snap.friends_iter(person).map(|(id, date)| (PersonId(id), date)).collect();
    friends.sort_by_key(|&(id, date)| (std::cmp::Reverse(date), id));
    friends
}

/// S4 — message content and creation date.
pub fn s4_message(snap: &PinnedSnapshot<'_>, message: MessageId) -> Option<(String, SimTime)> {
    let m = snap.message(message)?;
    let content =
        m.image_file.as_deref().filter(|_| m.content.is_empty()).unwrap_or(&m.content).to_string();
    Some((content, m.creation_date))
}

/// S5 — creator of a message.
pub fn s5_creator(snap: &PinnedSnapshot<'_>, message: MessageId) -> Option<PersonId> {
    Some(snap.message_meta(message)?.author)
}

/// S6 — forum of a message (via the root post for comments) and its
/// moderator.
pub fn s6_forum(
    snap: &PinnedSnapshot<'_>,
    message: MessageId,
) -> Option<(ForumId, String, PersonId)> {
    let meta = snap.message_meta(message)?;
    let root = meta.reply_info.map(|(_, r)| r).unwrap_or(message);
    let forum_id = snap.message_meta(root)?.forum;
    let forum = snap.forum(forum_id)?;
    Some((forum_id, forum.title, forum.moderator))
}

/// S7 — replies to a message with their authors and a flag telling whether
/// the reply author knows the original author. Newest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyRow {
    /// The reply comment.
    pub comment: MessageId,
    /// Reply creation date.
    pub creation_date: SimTime,
    /// Reply author.
    pub author: PersonId,
    /// Whether the reply author knows the original message's author.
    pub knows_original_author: bool,
}

/// Run S7.
pub fn s7_replies(snap: &PinnedSnapshot<'_>, message: MessageId) -> Vec<ReplyRow> {
    let Some(original) = snap.message_meta(message) else {
        return Vec::new();
    };
    let mut replies: Vec<ReplyRow> = snap
        .replies_of_iter(message)
        .filter_map(|(reply, date)| {
            let author = snap.message_meta(MessageId(reply))?.author;
            Some(ReplyRow {
                comment: MessageId(reply),
                creation_date: date,
                author,
                knows_original_author: snap.are_friends(author, original.author),
            })
        })
        .collect();
    replies.sort_by_key(|r| (std::cmp::Reverse(r.creation_date), r.comment));
    replies
}

/// Uniform executor used by the driver; returns the result row count.
pub fn run_short(snap: &PinnedSnapshot<'_>, q: &ShortQuery) -> usize {
    let rows = match *q {
        ShortQuery::S1(p) => usize::from(s1_profile(snap, p).is_some()),
        ShortQuery::S2(p) => s2_recent_messages(snap, p).len(),
        ShortQuery::S3(p) => s3_friends(snap, p).len(),
        ShortQuery::S4(m) => usize::from(s4_message(snap, m).is_some()),
        ShortQuery::S5(m) => usize::from(s5_creator(snap, m).is_some()),
        ShortQuery::S6(m) => usize::from(s6_forum(snap, m).is_some()),
        ShortQuery::S7(m) => s7_replies(snap, m).len(),
    };
    snb_obs::tick_result_rows(rows as u64);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{busy_person, fixture};

    #[test]
    fn s1_returns_profile() {
        let f = fixture();
        let snap = f.store.pinned();
        let person = busy_person(f);
        let row = s1_profile(&snap, person).unwrap();
        let expect = &f.ds.persons[person.index()];
        assert_eq!(row.first_name, expect.first_name);
        assert_eq!(row.city, expect.city);
        assert!(s1_profile(&snap, PersonId(u64::MAX / 2)).is_none());
    }

    #[test]
    fn s2_returns_recent_messages_with_roots() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = s2_recent_messages(&snap, busy_person(f));
        assert!(!rows.is_empty() && rows.len() <= 10);
        for w in rows.windows(2) {
            assert!(w[0].creation_date >= w[1].creation_date);
        }
        for r in &rows {
            let root = snap.message_meta(r.root_post).unwrap();
            assert!(root.reply_info.is_none(), "root must be a post");
            assert_eq!(root.author, r.root_author);
        }
    }

    #[test]
    fn s3_orders_friends_by_date_desc() {
        let f = fixture();
        let snap = f.store.pinned();
        let rows = s3_friends(&snap, busy_person(f));
        assert!(!rows.is_empty());
        for w in rows.windows(2) {
            assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
        }
    }

    #[test]
    fn s4_s5_s6_resolve_message_anchors() {
        let f = fixture();
        let snap = f.store.pinned();
        let comment = &f.ds.comments[0];
        let (content, date) = s4_message(&snap, comment.id).unwrap();
        assert_eq!(content, comment.content);
        assert_eq!(date, comment.creation_date);
        assert_eq!(s5_creator(&snap, comment.id).unwrap(), comment.author);
        let (forum, _title, moderator) = s6_forum(&snap, comment.id).unwrap();
        assert_eq!(forum, comment.forum);
        assert_eq!(moderator, f.ds.forums[forum.index()].moderator);
    }

    #[test]
    fn s7_lists_replies_with_knows_flag() {
        let f = fixture();
        let snap = f.store.pinned();
        // The first comment's parent certainly has at least one reply.
        let parent = f.ds.comments[0].reply_to;
        let rows = s7_replies(&snap, parent);
        assert!(!rows.is_empty());
        let original_author = snap.message_meta(parent).unwrap().author;
        for r in &rows {
            assert_eq!(r.knows_original_author, snap.are_friends(r.author, original_author));
        }
    }

    #[test]
    fn run_short_counts() {
        let f = fixture();
        let snap = f.store.pinned();
        let person = busy_person(f);
        assert_eq!(run_short(&snap, &ShortQuery::S1(person)), 1);
        assert!(run_short(&snap, &ShortQuery::S3(person)) > 0);
        assert_eq!(run_short(&snap, &ShortQuery::S4(MessageId(u64::MAX / 2))), 0);
    }
}
