//! Parameter types for every query template in the Interactive workload.
//!
//! The Appendix defines each complex read together with its parameters
//! (highlighted in the paper); these structs are the binding targets that
//! parameter curation (`snb-params`) fills in.

use snb_core::time::SimTime;
use snb_core::{MessageId, PersonId};

/// Q1 — friends with a given first name, distance ≤ 3.
#[derive(Debug, Clone)]
pub struct Q1Params {
    /// Start person.
    pub person: PersonId,
    /// First name to search for.
    pub first_name: String,
}

/// Q2 — newest 20 messages from friends before a date.
#[derive(Debug, Clone, Copy)]
pub struct Q2Params {
    /// Start person.
    pub person: PersonId,
    /// Only messages created at or before this date.
    pub max_date: SimTime,
}

/// Q3 — friends within 2 steps who posted from both foreign countries.
#[derive(Debug, Clone, Copy)]
pub struct Q3Params {
    /// Start person.
    pub person: PersonId,
    /// First foreign country (dictionary index).
    pub country_x: usize,
    /// Second foreign country.
    pub country_y: usize,
    /// Window start.
    pub start: SimTime,
    /// Window length in days.
    pub duration_days: i64,
}

/// Q4 — new topics on friends' posts within a window.
#[derive(Debug, Clone, Copy)]
pub struct Q4Params {
    /// Start person.
    pub person: PersonId,
    /// Window start.
    pub start: SimTime,
    /// Window length in days.
    pub duration_days: i64,
}

/// Q5 — new groups joined by the 2-hop circle after a date.
#[derive(Debug, Clone, Copy)]
pub struct Q5Params {
    /// Start person.
    pub person: PersonId,
    /// Memberships strictly after this date count.
    pub min_date: SimTime,
}

/// Q6 — tag co-occurrence on the 2-hop circle's posts.
#[derive(Debug, Clone)]
pub struct Q6Params {
    /// Start person.
    pub person: PersonId,
    /// The anchor tag (dictionary index).
    pub tag: usize,
}

/// Q7 — recent likes on the person's messages.
#[derive(Debug, Clone, Copy)]
pub struct Q7Params {
    /// Target person.
    pub person: PersonId,
}

/// Q8 — most recent replies to the person's messages.
#[derive(Debug, Clone, Copy)]
pub struct Q8Params {
    /// Target person.
    pub person: PersonId,
}

/// Q9 — newest 20 messages from the 2-hop circle before a date.
#[derive(Debug, Clone, Copy)]
pub struct Q9Params {
    /// Start person.
    pub person: PersonId,
    /// Only messages created at or before this date.
    pub max_date: SimTime,
}

/// Q10 — friend-of-friend recommendation with horoscope restriction.
#[derive(Debug, Clone, Copy)]
pub struct Q10Params {
    /// Start person.
    pub person: PersonId,
    /// Horoscope month (1-12).
    pub month: u8,
}

/// Q11 — job referral: 2-hop circle working in a country before a year.
#[derive(Debug, Clone, Copy)]
pub struct Q11Params {
    /// Start person.
    pub person: PersonId,
    /// Country of the employing company.
    pub country: usize,
    /// Only employments that started strictly before this year.
    pub max_year: i32,
}

/// Q12 — expert search over a tag class.
#[derive(Debug, Clone)]
pub struct Q12Params {
    /// Start person.
    pub person: PersonId,
    /// Root tag class (dictionary index); descendants included.
    pub tag_class: usize,
}

/// Q13 — single shortest path length.
#[derive(Debug, Clone, Copy)]
pub struct Q13Params {
    /// Endpoint X.
    pub person_x: PersonId,
    /// Endpoint Y.
    pub person_y: PersonId,
}

/// Q14 — all weighted shortest paths.
#[derive(Debug, Clone, Copy)]
pub struct Q14Params {
    /// Endpoint X.
    pub person_x: PersonId,
    /// Endpoint Y.
    pub person_y: PersonId,
}

/// A complex read-only query with bound parameters.
#[derive(Debug, Clone)]
pub enum ComplexQuery {
    /// Q1 — friends with a given name.
    Q1(Q1Params),
    /// Q2 — newest friend messages.
    Q2(Q2Params),
    /// Q3 — friends who travelled.
    Q3(Q3Params),
    /// Q4 — new topics.
    Q4(Q4Params),
    /// Q5 — new groups.
    Q5(Q5Params),
    /// Q6 — tag co-occurrence.
    Q6(Q6Params),
    /// Q7 — recent likes.
    Q7(Q7Params),
    /// Q8 — recent replies.
    Q8(Q8Params),
    /// Q9 — latest messages (2-hop).
    Q9(Q9Params),
    /// Q10 — friend recommendation.
    Q10(Q10Params),
    /// Q11 — job referral.
    Q11(Q11Params),
    /// Q12 — expert search.
    Q12(Q12Params),
    /// Q13 — shortest path.
    Q13(Q13Params),
    /// Q14 — weighted shortest paths.
    Q14(Q14Params),
}

impl ComplexQuery {
    /// 1-based query number.
    pub fn number(&self) -> usize {
        match self {
            ComplexQuery::Q1(_) => 1,
            ComplexQuery::Q2(_) => 2,
            ComplexQuery::Q3(_) => 3,
            ComplexQuery::Q4(_) => 4,
            ComplexQuery::Q5(_) => 5,
            ComplexQuery::Q6(_) => 6,
            ComplexQuery::Q7(_) => 7,
            ComplexQuery::Q8(_) => 8,
            ComplexQuery::Q9(_) => 9,
            ComplexQuery::Q10(_) => 10,
            ComplexQuery::Q11(_) => 11,
            ComplexQuery::Q12(_) => 12,
            ComplexQuery::Q13(_) => 13,
            ComplexQuery::Q14(_) => 14,
        }
    }
}

/// A short read-only query with bound parameters (§4: profile and post
/// lookups chained by the driver's random walk).
#[derive(Debug, Clone, Copy)]
pub enum ShortQuery {
    /// S1 — person profile.
    S1(PersonId),
    /// S2 — person's recent messages.
    S2(PersonId),
    /// S3 — person's friends.
    S3(PersonId),
    /// S4 — message content.
    S4(MessageId),
    /// S5 — message creator.
    S5(MessageId),
    /// S6 — forum of a message.
    S6(MessageId),
    /// S7 — replies to a message.
    S7(MessageId),
}

impl ShortQuery {
    /// 1-based short-query number.
    pub fn number(&self) -> usize {
        match self {
            ShortQuery::S1(_) => 1,
            ShortQuery::S2(_) => 2,
            ShortQuery::S3(_) => 3,
            ShortQuery::S4(_) => 4,
            ShortQuery::S5(_) => 5,
            ShortQuery::S6(_) => 6,
            ShortQuery::S7(_) => 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbering_is_stable() {
        assert_eq!(
            ComplexQuery::Q1(Q1Params { person: PersonId(0), first_name: "K".into() }).number(),
            1
        );
        assert_eq!(
            ComplexQuery::Q14(Q14Params { person_x: PersonId(0), person_y: PersonId(1) }).number(),
            14
        );
        assert_eq!(ShortQuery::S7(MessageId(3)).number(), 7);
    }
}
