//! Shared traversal and top-k helpers.
//!
//! These tick the current [`snb_obs::QueryProfile`] scope (neighbors
//! expanded, rows scanned), so every query built on them reports operator
//! counts without per-query instrumentation.

use snb_core::PersonId;
use snb_obs::{tick_neighbors_expanded, tick_rows_scanned};
use snb_store::Snapshot;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Direct friends of `p` as a set of raw person ids.
pub fn friend_set(snap: &Snapshot<'_>, p: PersonId) -> HashSet<u64> {
    let set: HashSet<u64> = snap.friends(p).into_iter().map(|(f, _)| f).collect();
    tick_neighbors_expanded(set.len() as u64);
    set
}

/// Friends and friends-of-friends of `p`, excluding `p` itself.
/// Returns `(one_hop, two_hop_only)`.
pub fn two_hop(snap: &Snapshot<'_>, p: PersonId) -> (HashSet<u64>, HashSet<u64>) {
    let one: HashSet<u64> = friend_set(snap, p);
    let mut two = HashSet::new();
    let mut expanded = 0u64;
    for &f in &one {
        for (ff, _) in snap.friends(PersonId(f)) {
            expanded += 1;
            if ff != p.raw() && !one.contains(&ff) {
                two.insert(ff);
            }
        }
    }
    tick_neighbors_expanded(expanded);
    (one, two)
}

/// BFS distances from `start` up to `max_depth`; returns `(person, dist)`
/// for every reached person except `start`.
pub fn bfs_within(snap: &Snapshot<'_>, start: PersonId, max_depth: u32) -> Vec<(u64, u32)> {
    let mut dist: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
    dist.insert(start.raw(), 0);
    let mut queue = VecDeque::from([start.raw()]);
    let mut out = Vec::new();
    let mut expanded = 0u64;
    while let Some(u) = queue.pop_front() {
        let d = dist[&u];
        if d == max_depth {
            continue;
        }
        for (v, _) in snap.friends(PersonId(u)) {
            expanded += 1;
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(d + 1);
                out.push((v, d + 1));
                queue.push_back(v);
            }
        }
    }
    tick_neighbors_expanded(expanded);
    out
}

/// Bounded top-k collector over a key `K`: keeps the k *smallest* keys.
/// Encode "descending by date, ascending by id" orderings by key choice,
/// e.g. `(Reverse(date), id)`.
#[derive(Debug)]
pub struct TopK<K: Ord, V> {
    k: usize,
    heap: BinaryHeap<KeyedEntry<K, V>>,
}

#[derive(Debug)]
struct KeyedEntry<K: Ord, V>(K, V);

impl<K: Ord, V> PartialEq for KeyedEntry<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<K: Ord, V> Eq for KeyedEntry<K, V> {}
impl<K: Ord, V> PartialOrd for KeyedEntry<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, V> Ord for KeyedEntry<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl<K: Ord, V> TopK<K, V> {
    /// New collector for the `k` smallest keys.
    pub fn new(k: usize) -> TopK<K, V> {
        TopK { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offer an item.
    pub fn push(&mut self, key: K, value: V) {
        tick_rows_scanned(1);
        if self.heap.len() < self.k {
            self.heap.push(KeyedEntry(key, value));
        } else if let Some(top) = self.heap.peek() {
            if key < top.0 {
                self.heap.pop();
                self.heap.push(KeyedEntry(key, value));
            }
        }
    }

    /// Current threshold: the largest retained key, if the collector is
    /// full. Scans over key-ordered inputs can stop once their next key
    /// exceeds this.
    pub fn threshold(&self) -> Option<&K> {
        (self.heap.len() == self.k).then(|| &self.heap.peek().unwrap().0)
    }

    /// Whether `key` would be accepted right now.
    pub fn would_accept(&self, key: &K) -> bool {
        self.heap.len() < self.k || *key < self.heap.peek().unwrap().0
    }

    /// Finish: items in ascending key order.
    pub fn into_sorted(self) -> Vec<(K, V)> {
        let mut v: Vec<(K, V)> = self.heap.into_iter().map(|e| (e.0, e.1)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn topk_keeps_k_smallest_in_order() {
        let mut t = TopK::new(3);
        for x in [5, 1, 9, 3, 7, 2] {
            t.push(x, x * 10);
        }
        let got: Vec<i32> = t.into_sorted().into_iter().map(|(k, _)| k).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn topk_reverse_key_gives_most_recent_first() {
        // Typical usage: key (Reverse(date), id) → newest first, id tiebreak.
        let mut t = TopK::new(2);
        for (date, id) in [(10, 1), (30, 2), (20, 3), (30, 1)] {
            t.push((Reverse(date), id), ());
        }
        let got: Vec<(i32, i32)> =
            t.into_sorted().into_iter().map(|((Reverse(d), i), _)| (d, i)).collect();
        assert_eq!(got, vec![(30, 1), (30, 2)]);
    }

    #[test]
    fn topk_threshold_enables_early_exit() {
        let mut t = TopK::new(2);
        t.push(5, ());
        assert!(t.threshold().is_none());
        t.push(3, ());
        assert_eq!(t.threshold(), Some(&5));
        assert!(t.would_accept(&4));
        assert!(!t.would_accept(&6));
    }
}
