//! Shared traversal and top-k helpers.
//!
//! Traversals run over a [`PinnedSnapshot`]'s zero-allocation iterators
//! and mark visited persons in the caller's [`QueryScratch`] (dense
//! epoch-stamped map) instead of building per-query hash sets. They tick
//! the current [`snb_obs::QueryProfile`] scope (neighbors expanded), so
//! every query built on them reports operator counts without per-query
//! instrumentation.

use crate::scratch::QueryScratch;
use snb_core::PersonId;
use snb_obs::{tick_neighbors_expanded, tick_rows_scanned};
use snb_store::PinnedSnapshot;
use std::collections::BinaryHeap;

/// Load the direct friends of `p` into `sx.one`, marking `p` at level 0
/// and each friend at level 1 in the visited map. Probe membership with
/// `sx.is_marked` / `sx.level_of` afterwards.
pub fn load_friends(snap: &PinnedSnapshot<'_>, sx: &mut QueryScratch, p: PersonId) {
    sx.begin(snap.person_slots());
    sx.mark(p.raw(), 0);
    for (f, _) in snap.friends_iter(p) {
        if sx.mark(f, 1) {
            sx.one.push(f);
        }
    }
    tick_neighbors_expanded(sx.one.len() as u64);
}

/// Load friends (level 1, `sx.one`) and friends-of-friends excluding `p`
/// and its friends (level 2, `sx.two`) into the scratch.
pub fn load_two_hop(snap: &PinnedSnapshot<'_>, sx: &mut QueryScratch, p: PersonId) {
    load_friends(snap, sx, p);
    let mut expanded = 0u64;
    for i in 0..sx.one.len() {
        let f = sx.one[i];
        for (ff, _) in snap.friends_iter(PersonId(f)) {
            expanded += 1;
            if sx.mark(ff, 2) {
                sx.two.push(ff);
            }
        }
    }
    tick_neighbors_expanded(expanded);
}

/// BFS distances from `start` up to `max_depth`; returns `(person, dist)`
/// for every reached person except `start`, in discovery order. The depth
/// rides in the queue entry (no distance-map re-lookup per pop) and
/// visited tracking is the scratch's dense map.
pub fn bfs_within(
    snap: &PinnedSnapshot<'_>,
    sx: &mut QueryScratch,
    start: PersonId,
    max_depth: u32,
) -> Vec<(u64, u32)> {
    sx.begin(snap.person_slots());
    sx.mark(start.raw(), 0);
    let mut queue = std::mem::take(&mut sx.queue);
    queue.push_back((start.raw(), 0));
    let mut out = Vec::new();
    let mut expanded = 0u64;
    while let Some((u, d)) = queue.pop_front() {
        if d == max_depth {
            continue;
        }
        for (v, _) in snap.friends_iter(PersonId(u)) {
            expanded += 1;
            if sx.mark(v, (d + 1).min(u8::MAX as u32) as u8) {
                out.push((v, d + 1));
                queue.push_back((v, d + 1));
            }
        }
    }
    sx.queue = queue;
    tick_neighbors_expanded(expanded);
    out
}

/// Bounded top-k collector over a key `K`: keeps the k *smallest* keys.
/// Encode "descending by date, ascending by id" orderings by key choice,
/// e.g. `(Reverse(date), id)`.
#[derive(Debug)]
pub struct TopK<K: Ord, V> {
    k: usize,
    heap: BinaryHeap<KeyedEntry<K, V>>,
}

#[derive(Debug)]
struct KeyedEntry<K: Ord, V>(K, V);

impl<K: Ord, V> PartialEq for KeyedEntry<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<K: Ord, V> Eq for KeyedEntry<K, V> {}
impl<K: Ord, V> PartialOrd for KeyedEntry<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, V> Ord for KeyedEntry<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl<K: Ord, V> TopK<K, V> {
    /// New collector for the `k` smallest keys.
    pub fn new(k: usize) -> TopK<K, V> {
        TopK { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offer an item.
    pub fn push(&mut self, key: K, value: V) {
        tick_rows_scanned(1);
        if self.heap.len() < self.k {
            self.heap.push(KeyedEntry(key, value));
        } else if let Some(top) = self.heap.peek() {
            if key < top.0 {
                self.heap.pop();
                self.heap.push(KeyedEntry(key, value));
            }
        }
    }

    /// Current threshold: the largest retained key, if the collector is
    /// full. Scans over key-ordered inputs can stop once their next key
    /// exceeds this.
    pub fn threshold(&self) -> Option<&K> {
        (self.heap.len() == self.k).then(|| &self.heap.peek().unwrap().0)
    }

    /// Whether `key` would be accepted right now. Strict `<`: a key tied
    /// with the current threshold is rejected — first-come-wins on equal
    /// keys, which keeps threshold-based early exits exact.
    pub fn would_accept(&self, key: &K) -> bool {
        self.heap.len() < self.k || *key < self.heap.peek().unwrap().0
    }

    /// Finish: items in ascending key order.
    pub fn into_sorted(self) -> Vec<(K, V)> {
        let mut v: Vec<(K, V)> = self.heap.into_iter().map(|e| (e.0, e.1)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn topk_keeps_k_smallest_in_order() {
        let mut t = TopK::new(3);
        for x in [5, 1, 9, 3, 7, 2] {
            t.push(x, x * 10);
        }
        let got: Vec<i32> = t.into_sorted().into_iter().map(|(k, _)| k).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn topk_reverse_key_gives_most_recent_first() {
        // Typical usage: key (Reverse(date), id) → newest first, id tiebreak.
        let mut t = TopK::new(2);
        for (date, id) in [(10, 1), (30, 2), (20, 3), (30, 1)] {
            t.push((Reverse(date), id), ());
        }
        let got: Vec<(i32, i32)> =
            t.into_sorted().into_iter().map(|((Reverse(d), i), _)| (d, i)).collect();
        assert_eq!(got, vec![(30, 1), (30, 2)]);
    }

    #[test]
    fn topk_threshold_enables_early_exit() {
        let mut t = TopK::new(2);
        t.push(5, ());
        assert!(t.threshold().is_none());
        t.push(3, ());
        assert_eq!(t.threshold(), Some(&5));
        assert!(t.would_accept(&4));
        assert!(!t.would_accept(&6));
    }

    #[test]
    fn topk_rejects_key_tied_with_threshold() {
        let mut t = TopK::new(2);
        t.push(3, "a");
        t.push(5, "b");
        // Full, threshold = 5. A tied key must be rejected (strict `<`) …
        assert!(!t.would_accept(&5));
        t.push(5, "c");
        let got: Vec<(i32, &str)> = t.into_sorted();
        assert_eq!(got, vec![(3, "a"), (5, "b")], "first-come-wins on equal keys");
        // … and while not full, ties are accepted freely.
        let mut u = TopK::new(3);
        u.push(7, "x");
        assert!(u.would_accept(&7));
        u.push(7, "y");
        assert_eq!(u.into_sorted().len(), 2);
    }

    #[test]
    fn threshold_early_exit_matches_exhaustive_scan_on_date_ordered_input() {
        // A date-descending scan (the store's recent-first walk order) may
        // stop at the first key would_accept rejects: later keys are only
        // larger. Verify the early-exit result equals the exhaustive one.
        let scan: Vec<(i64, u64)> = (0..200).map(|i| (1_000 - (i / 2), i as u64)).collect(); // dates descending, with ties
        let k = 10;

        let mut exhaustive = TopK::new(k);
        for &(date, id) in &scan {
            exhaustive.push((Reverse(date), id), ());
        }

        let mut early = TopK::new(k);
        let mut scanned = 0usize;
        for &(date, id) in &scan {
            let key = (Reverse(date), id);
            if !early.would_accept(&key) {
                break;
            }
            scanned += 1;
            early.push(key, ());
        }

        assert_eq!(early.into_sorted(), exhaustive.into_sorted());
        assert!(scanned < scan.len(), "early exit must actually cut the scan short");
    }
}
