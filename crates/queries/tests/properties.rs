//! Property-based tests for the query layer: the two engines must agree on
//! arbitrary parameter bindings (not just curated ones), and the shared
//! top-k collector must match a full sort.

use proptest::prelude::*;
use snb_core::time::SimTime;
use snb_core::PersonId;
use snb_queries::helpers::TopK;
use snb_queries::params::*;
use snb_queries::{complex, Engine};
use std::sync::OnceLock;

struct Fixture {
    ds: snb_datagen::Dataset,
    store: snb_store::Store,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let ds = snb_datagen::generate(
            snb_datagen::GeneratorConfig::with_persons(250).activity(0.4).seed(17),
        )
        .unwrap();
        let store = snb_store::Store::new();
        store.load_full(&ds);
        Fixture { ds, store }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TopK over any input equals sort-then-truncate.
    #[test]
    fn topk_matches_full_sort(items in proptest::collection::vec((any::<i32>(), any::<u8>()), 0..300), k in 1usize..40) {
        let mut topk = TopK::new(k);
        for &(key, v) in &items {
            topk.push(key, v);
        }
        let got: Vec<i32> = topk.into_sorted().into_iter().map(|(key, _)| key).collect();
        let mut expect: Vec<i32> = items.iter().map(|&(key, _)| key).collect();
        expect.sort_unstable();
        expect.truncate(k);
        prop_assert_eq!(got, expect);
    }

    /// Q2/Q9: engines agree for arbitrary persons and dates.
    #[test]
    fn feed_queries_agree_on_arbitrary_bindings(person in 0u64..250, day_offset in 0i64..1_095) {
        let f = fixture();
        let snap = f.store.pinned();
        let max_date = SimTime::SIM_START.plus_days(day_offset);
        let q2 = Q2Params { person: PersonId(person), max_date };
        prop_assert_eq!(
            complex::q2::run(&snap, Engine::Intended, &q2),
            complex::q2::run(&snap, Engine::Naive, &q2)
        );
        let q9 = Q9Params { person: PersonId(person), max_date };
        prop_assert_eq!(
            complex::q9::run(&snap, Engine::Intended, &q9),
            complex::q9::run(&snap, Engine::Naive, &q9)
        );
    }

    /// Q3/Q4/Q5: window queries agree for arbitrary windows.
    #[test]
    fn window_queries_agree_on_arbitrary_bindings(
        person in 0u64..250,
        start_day in 0i64..1_000,
        duration in 0i64..400,
        cx in 0usize..25,
        cy in 0usize..25,
    ) {
        let f = fixture();
        let snap = f.store.pinned();
        let start = SimTime::SIM_START.plus_days(start_day);
        let q3 = Q3Params {
            person: PersonId(person),
            country_x: cx,
            country_y: cy,
            start,
            duration_days: duration,
        };
        prop_assert_eq!(
            complex::q3::run(&snap, Engine::Intended, &q3),
            complex::q3::run(&snap, Engine::Naive, &q3)
        );
        let q4 = Q4Params { person: PersonId(person), start, duration_days: duration };
        prop_assert_eq!(
            complex::q4::run(&snap, Engine::Intended, &q4),
            complex::q4::run(&snap, Engine::Naive, &q4)
        );
        let q5 = Q5Params { person: PersonId(person), min_date: start };
        prop_assert_eq!(
            complex::q5::run(&snap, Engine::Intended, &q5),
            complex::q5::run(&snap, Engine::Naive, &q5)
        );
    }

    /// Q10/Q12: categorical filters agree for arbitrary bindings.
    #[test]
    fn categorical_queries_agree(person in 0u64..250, month in 1u8..=12, class in 0usize..13, tag in 0usize..120) {
        let f = fixture();
        let snap = f.store.pinned();
        let q10 = Q10Params { person: PersonId(person), month };
        prop_assert_eq!(
            complex::q10::run(&snap, Engine::Intended, &q10),
            complex::q10::run(&snap, Engine::Naive, &q10)
        );
        let q12 = Q12Params { person: PersonId(person), tag_class: class };
        prop_assert_eq!(
            complex::q12::run(&snap, Engine::Intended, &q12),
            complex::q12::run(&snap, Engine::Naive, &q12)
        );
        let q6 = Q6Params { person: PersonId(person), tag };
        prop_assert_eq!(
            complex::q6::run(&snap, Engine::Intended, &q6),
            complex::q6::run(&snap, Engine::Naive, &q6)
        );
    }

    /// Path queries agree and are symmetric in their endpoints.
    #[test]
    fn path_queries_agree_and_are_symmetric(x in 0u64..250, y in 0u64..250) {
        let f = fixture();
        let snap = f.store.pinned();
        let p = Q13Params { person_x: PersonId(x), person_y: PersonId(y) };
        let fwd = complex::q13::run(&snap, Engine::Intended, &p);
        prop_assert_eq!(fwd, complex::q13::run(&snap, Engine::Naive, &p));
        let rev = Q13Params { person_x: PersonId(y), person_y: PersonId(x) };
        prop_assert_eq!(fwd, complex::q13::run(&snap, Engine::Intended, &rev), "distance not symmetric");
        // Q14 paths have matching length and reversed weights are equal.
        let q14 = Q14Params { person_x: PersonId(x), person_y: PersonId(y) };
        let paths = complex::q14::run(&snap, Engine::Intended, &q14);
        if fwd >= 0 {
            prop_assert!(!paths.is_empty());
            for row in &paths {
                prop_assert_eq!(row.path.len() as i32, fwd + 1);
            }
        } else {
            prop_assert!(paths.is_empty());
        }
    }

    /// Q7/Q8 agree for arbitrary persons, including ones with no content.
    #[test]
    fn like_and_reply_queries_agree(person in 0u64..260) {
        // Range deliberately exceeds the population to cover missing ids.
        let f = fixture();
        let snap = f.store.pinned();
        let q7 = Q7Params { person: PersonId(person) };
        prop_assert_eq!(
            complex::q7::run(&snap, Engine::Intended, &q7),
            complex::q7::run(&snap, Engine::Naive, &q7)
        );
        let q8 = Q8Params { person: PersonId(person) };
        prop_assert_eq!(
            complex::q8::run(&snap, Engine::Intended, &q8),
            complex::q8::run(&snap, Engine::Naive, &q8)
        );
    }

    /// Short reads never panic on arbitrary (possibly dangling) anchors.
    #[test]
    fn short_reads_are_total(person in 0u64..10_000, message in 0u64..100_000) {
        let f = fixture();
        let snap = f.store.pinned();
        let _ = snb_queries::short::run_short(&snap, &ShortQuery::S1(PersonId(person)));
        let _ = snb_queries::short::run_short(&snap, &ShortQuery::S2(PersonId(person)));
        let _ = snb_queries::short::run_short(&snap, &ShortQuery::S3(PersonId(person)));
        let _ = snb_queries::short::run_short(&snap, &ShortQuery::S4(snb_core::MessageId(message)));
        let _ = snb_queries::short::run_short(&snap, &ShortQuery::S5(snb_core::MessageId(message)));
        let _ = snb_queries::short::run_short(&snap, &ShortQuery::S6(snb_core::MessageId(message)));
        let _ = snb_queries::short::run_short(&snap, &ShortQuery::S7(snb_core::MessageId(message)));
        let _ = &f.ds;
    }
}
