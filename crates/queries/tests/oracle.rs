//! Hand-computed oracle: a small, fully specified graph where the exact
//! result of every complex query is derived on paper. The differential
//! tests (intended vs naive) cannot catch a bug present in *both* engines;
//! this fixture can.
//!
//! Topology (person ids / knows edges):
//!
//! ```text
//!   0 —— 1 —— 3 —— 5        6 —— 7      (6,7 disconnected from 0..5)
//!   |
//!   2 —— 4
//! ```
//!
//! Forum 0 is person 0's wall (members 0, 1, 2); forum 1 is a group of
//! persons 6, 7. Messages 0-6 and likes are laid out in the constants
//! below; all expected rows in the tests are derived by hand from them.

use snb_core::dict::names::Gender;
use snb_core::dict::Dictionaries;
use snb_core::schema::*;
use snb_core::time::SimTime;
use snb_core::update::UpdateOp;
use snb_core::{ForumId, MessageId, OrganisationId, PersonId, TagId};
use snb_queries::params::*;
use snb_queries::{complex, Engine};
use snb_store::Store;

/// Tag indices in the dictionary: the first country's four tags are
/// (music, football, politics, cuisine) of that country.
const T_MUSIC: u64 = 0; // class MusicalArtist
const T_SPORT: u64 = 1; // class Sport
const T_POLITICS: u64 = 2; // class Politician

fn person(id: u64, first_name: &'static str, birthday: SimTime) -> Person {
    Person {
        id: PersonId(id),
        first_name,
        last_name: "Muller",
        gender: Gender::Male,
        birthday,
        creation_date: SimTime(1_000 + id as i64),
        city: 0,
        country: 0,
        browser: "Chrome",
        location_ip: String::new(),
        languages: vec!["zh"],
        emails: vec![],
        interests: vec![TagId(T_MUSIC)],
        study_at: None,
        work_at: vec![],
    }
}

fn post(id: u64, author: u64, forum: u64, t: i64, tags: &[u64], country: usize) -> Post {
    Post {
        id: MessageId(id),
        author: PersonId(author),
        forum: ForumId(forum),
        creation_date: SimTime(t),
        content: format!("post {id}"),
        image_file: None,
        tags: tags.iter().map(|&t| TagId(t)).collect(),
        language: "zh",
        country,
    }
}

#[allow(clippy::too_many_arguments)]
fn comment(
    id: u64,
    author: u64,
    parent: u64,
    root: u64,
    forum: u64,
    t: i64,
    tags: &[u64],
    country: usize,
) -> Comment {
    Comment {
        id: MessageId(id),
        author: PersonId(author),
        creation_date: SimTime(t),
        content: format!("comment {id}"),
        reply_to: MessageId(parent),
        root_post: MessageId(root),
        forum: ForumId(forum),
        tags: tags.iter().map(|&t| TagId(t)).collect(),
        country,
    }
}

/// Build the oracle store through the transactional interface.
fn oracle_store() -> Store {
    let store = Store::new();
    let apply = |op: UpdateOp| store.apply(&op).expect("oracle insert");

    // Persons. Q1 searches for "Karl" from person 0.
    let names = ["Hans", "Walter", "Karl", "Fritz", "Karl", "Karl", "Karl", "Paul"];
    for (id, name) in names.iter().enumerate() {
        // Birthdays: person 3 → Jun 25 (horoscope month 6, day ≥ 21),
        // person 4 → Jul 10 (month 7, day < 22); others in January.
        let birthday = match id {
            3 => SimTime::from_ymd(1985, 6, 25),
            4 => SimTime::from_ymd(1985, 7, 10),
            _ => SimTime::from_ymd(1985, 1, 5),
        };
        apply(UpdateOp::AddPerson(person(id as u64, name, birthday)));
    }
    // knows edges.
    for (a, b, t) in [
        (0u64, 1u64, 2_000i64),
        (0, 2, 2_100),
        (1, 3, 2_200),
        (2, 4, 2_300),
        (3, 5, 2_400),
        (6, 7, 2_500),
    ] {
        apply(UpdateOp::AddFriendship(Knows {
            a: PersonId(a),
            b: PersonId(b),
            creation_date: SimTime(t),
        }));
    }

    // Forums.
    apply(UpdateOp::AddForum(Forum {
        id: ForumId(0),
        title: "wall of 0".into(),
        moderator: PersonId(0),
        creation_date: SimTime(3_000),
        tags: vec![TagId(T_MUSIC)],
        kind: ForumKind::Wall,
    }));
    apply(UpdateOp::AddForum(Forum {
        id: ForumId(1),
        title: "group of 6".into(),
        moderator: PersonId(6),
        creation_date: SimTime(3_100),
        tags: vec![TagId(T_POLITICS)],
        kind: ForumKind::Group,
    }));
    for (forum, p, t) in
        [(0u64, 0u64, 3_000i64), (0, 1, 3_050), (0, 2, 3_060), (1, 6, 3_100), (1, 7, 3_110)]
    {
        apply(UpdateOp::AddMembership(ForumMembership {
            forum: ForumId(forum),
            person: PersonId(p),
            join_date: SimTime(t),
        }));
    }

    // Messages (ids dense, creation-ordered).
    apply(UpdateOp::AddPost(post(0, 1, 0, 4_000, &[T_MUSIC, T_SPORT], 3)));
    apply(UpdateOp::AddPost(post(1, 2, 0, 4_100, &[T_SPORT, T_POLITICS], 5)));
    apply(UpdateOp::AddPost(post(2, 0, 0, 4_200, &[T_MUSIC], 0)));
    apply(UpdateOp::AddPost(post(3, 6, 1, 4_300, &[T_POLITICS], 0)));
    apply(UpdateOp::AddComment(comment(4, 2, 0, 0, 0, 4_400, &[T_MUSIC], 0)));
    apply(UpdateOp::AddComment(comment(5, 0, 4, 0, 0, 4_500, &[], 0)));
    apply(UpdateOp::AddComment(comment(6, 1, 2, 2, 0, 4_600, &[], 5)));

    // Likes.
    for (p, m, t) in [(2u64, 2u64, 5_000i64), (1, 2, 5_100), (0, 0, 5_200)] {
        apply(UpdateOp::AddPostLike(Like {
            person: PersonId(p),
            message: MessageId(m),
            creation_date: SimTime(t),
        }));
    }
    store
}

fn both<T: PartialEq + std::fmt::Debug>(run: impl Fn(Engine) -> T) -> T {
    let a = run(Engine::Intended);
    let b = run(Engine::Naive);
    assert_eq!(a, b, "engines disagree on the oracle graph");
    a
}

#[test]
fn q1_finds_karls_by_distance() {
    let store = oracle_store();
    let snap = store.pinned();
    let rows = both(|e| {
        complex::q1::run(&snap, e, &Q1Params { person: PersonId(0), first_name: "Karl".into() })
    });
    // Karls reachable from 0 within 3 hops: 2 (d1), 4 (d2), 5 (d3).
    // Person 6 is a Karl but unreachable.
    let got: Vec<(u64, u32)> = rows.iter().map(|r| (r.person.raw(), r.distance)).collect();
    assert_eq!(got, vec![(2, 1), (4, 2), (5, 3)]);
}

#[test]
fn q2_returns_friend_messages_newest_first() {
    let store = oracle_store();
    let snap = store.pinned();
    let rows = both(|e| {
        complex::q2::run(&snap, e, &Q2Params { person: PersonId(0), max_date: SimTime(5_000) })
    });
    // Friends of 0 = {1, 2}. Their messages ≤ 5000:
    // msg6 (by 1, 4600), msg4 (by 2, 4400), msg1 (by 2, 4100), msg0 (by 1, 4000).
    let got: Vec<u64> = rows.iter().map(|r| r.message.raw()).collect();
    assert_eq!(got, vec![6, 4, 1, 0]);
}

#[test]
fn q3_requires_messages_from_both_foreign_countries() {
    let store = oracle_store();
    let snap = store.pinned();
    let rows = both(|e| {
        complex::q3::run(
            &snap,
            e,
            &Q3Params {
                person: PersonId(0),
                country_x: 3,
                country_y: 5,
                start: SimTime(3_900),
                duration_days: 1, // window [3900, 3900 + 86400000)
            },
        )
    });
    // In-window messages from country 3: msg0 (person 1); from country 5:
    // msg1 (person 2) and msg6 (person 1). Only person 1 has both.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].person, PersonId(1));
    assert_eq!((rows[0].x_count, rows[0].y_count), (1, 1));
}

#[test]
fn q4_reports_only_new_topics() {
    let store = oracle_store();
    let snap = store.pinned();
    let rows = both(|e| {
        complex::q4::run(
            &snap,
            e,
            &Q4Params { person: PersonId(0), start: SimTime(4_050), duration_days: 1 },
        )
    });
    // Friend posts in-window: msg1 (tags sport, politics). Before the
    // window: msg0 (music, sport). Sport is old news; politics is new.
    let dicts = Dictionaries::global();
    let politics = dicts.tags.tag(T_POLITICS as usize).name.clone();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].tag, politics);
    assert_eq!(rows[0].count, 1);
}

#[test]
fn q5_counts_posts_of_recent_joiners() {
    let store = oracle_store();
    let snap = store.pinned();
    let rows = both(|e| {
        complex::q5::run(&snap, e, &Q5Params { person: PersonId(0), min_date: SimTime(3_040) })
    });
    // 2-hop circle of 0 = {1, 2, 3, 4}. Joins after 3040: 1 and 2 into
    // forum 0. Posts in forum 0 by {1, 2}: msg0, msg1 -> count 2.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].forum, ForumId(0));
    assert_eq!(rows[0].count, 2);
}

#[test]
fn q6_counts_cooccurring_tags_on_posts() {
    let store = oracle_store();
    let snap = store.pinned();
    let rows = both(|e| {
        complex::q6::run(&snap, e, &Q6Params { person: PersonId(0), tag: T_MUSIC as usize })
    });
    // Posts by the 2-hop circle with the music tag: msg0 (music, sport).
    // (msg2 is by person 0 — excluded; msg4 is a comment.)
    let dicts = Dictionaries::global();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].tag, dicts.tags.tag(T_SPORT as usize).name);
    assert_eq!(rows[0].count, 1);
}

#[test]
fn q7_returns_latest_like_per_liker() {
    let store = oracle_store();
    let snap = store.pinned();
    let rows = both(|e| complex::q7::run(&snap, e, &Q7Params { person: PersonId(0) }));
    // Likes on 0's messages (msg2, msg5): person 2 @5000, person 1 @5100.
    let got: Vec<(u64, i64)> = rows.iter().map(|r| (r.liker.raw(), r.like_date.millis())).collect();
    assert_eq!(got, vec![(1, 5_100), (2, 5_000)]);
    // Both likers are direct friends -> not "new".
    assert!(rows.iter().all(|r| !r.is_new));
}

#[test]
fn q8_returns_most_recent_replies() {
    let store = oracle_store();
    let snap = store.pinned();
    let rows = both(|e| complex::q8::run(&snap, e, &Q8Params { person: PersonId(0) }));
    // Replies to 0's messages: msg6 replies msg2 (0's post). msg5 is BY 0.
    let got: Vec<(u64, u64)> = rows.iter().map(|r| (r.comment.raw(), r.commenter.raw())).collect();
    assert_eq!(got, vec![(6, 1)]);
}

#[test]
fn q9_returns_two_hop_messages_before_date() {
    let store = oracle_store();
    let snap = store.pinned();
    let rows = both(|e| {
        complex::q9::run(&snap, e, &Q9Params { person: PersonId(0), max_date: SimTime(4_450) })
    });
    // 2-hop = {1,2,3,4}; messages ≤ 4450: msg4 (4400), msg1 (4100), msg0 (4000).
    let got: Vec<u64> = rows.iter().map(|r| r.message.raw()).collect();
    assert_eq!(got, vec![4, 1, 0]);
}

#[test]
fn q10_filters_by_horoscope_and_scores_posts() {
    let store = oracle_store();
    let snap = store.pinned();
    let rows = both(|e| complex::q10::run(&snap, e, &Q10Params { person: PersonId(0), month: 6 }));
    // Strict friends-of-friends of 0: {3, 4}. Horoscope month 6 accepts
    // person 3 (Jun 25) and person 4 (Jul 10 < 22). Neither has posts, so
    // both score 0; ties break by id.
    let got: Vec<(u64, i64)> = rows.iter().map(|r| (r.person.raw(), r.score)).collect();
    assert_eq!(got, vec![(3, 0), (4, 0)]);
}

#[test]
fn q11_finds_employment_in_country() {
    // Person 3 gets a job at the first company of country 0, then the store
    // is rebuilt with that row (work_at is set at insert time).
    let dicts = Dictionaries::global();
    let company = dicts.orgs.companies_in_country(0)[0];
    let store = Store::new();
    let mut p3 = person(3, "Fritz", SimTime::from_ymd(1985, 6, 25));
    p3.work_at = vec![WorkAt { company: OrganisationId(company as u64), work_from: 2005 }];
    // Minimal subgraph: 0 - 1 - 3.
    store.apply(&UpdateOp::AddPerson(person(0, "Hans", SimTime::from_ymd(1985, 1, 5)))).unwrap();
    store.apply(&UpdateOp::AddPerson(person(1, "Walter", SimTime::from_ymd(1985, 1, 5)))).unwrap();
    store.apply(&UpdateOp::AddPerson(p3)).unwrap();
    store
        .apply(&UpdateOp::AddFriendship(Knows {
            a: PersonId(0),
            b: PersonId(1),
            creation_date: SimTime(2_000),
        }))
        .unwrap();
    store
        .apply(&UpdateOp::AddFriendship(Knows {
            a: PersonId(1),
            b: PersonId(3),
            creation_date: SimTime(2_200),
        }))
        .unwrap();
    let snap = store.pinned();
    let rows = both(|e| {
        complex::q11::run(&snap, e, &Q11Params { person: PersonId(0), country: 0, max_year: 2013 })
    });
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].person, PersonId(3));
    assert_eq!(rows[0].work_from, 2005);
    assert_eq!(rows[0].company, dicts.orgs.company(company).name);
    // A tighter year bound excludes it.
    let none = both(|e| {
        complex::q11::run(&snap, e, &Q11Params { person: PersonId(0), country: 0, max_year: 2005 })
    });
    assert!(none.is_empty());
}

#[test]
fn q12_counts_expert_replies_to_tagged_posts() {
    let store = oracle_store();
    let snap = store.pinned();
    let dicts = Dictionaries::global();
    let music_class = dicts.tags.tag(T_MUSIC as usize).class;
    let rows = both(|e| {
        complex::q12::run(&snap, e, &Q12Params { person: PersonId(0), tag_class: music_class })
    });
    // Friends of 0 = {1, 2}. Comments whose direct parent is a post with a
    // music-class tag: msg4 (by 2, parent msg0: music+sport) and msg6
    // (by 1, parent msg2: music). One each; ties by id.
    let got: Vec<(u64, u32)> = rows.iter().map(|r| (r.person.raw(), r.count)).collect();
    assert_eq!(got, vec![(1, 1), (2, 1)]);
}

#[test]
fn q13_and_q14_agree_with_the_drawn_topology() {
    let store = oracle_store();
    let snap = store.pinned();
    let d = |x: u64, y: u64| {
        both(|e| {
            complex::q13::run(&snap, e, &Q13Params { person_x: PersonId(x), person_y: PersonId(y) })
        })
    };
    assert_eq!(d(0, 0), 0);
    assert_eq!(d(0, 1), 1);
    assert_eq!(d(0, 4), 2);
    assert_eq!(d(0, 5), 3);
    assert_eq!(d(0, 6), -1);

    let rows = both(|e| {
        complex::q14::run(&snap, e, &Q14Params { person_x: PersonId(0), person_y: PersonId(4) })
    });
    // Single shortest path 0-2-4. Interactions: msg5 (by 0) replies msg4
    // (comment by 2) -> pair (0,2) weight 0.5; no (2,4) interactions.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].path, vec![PersonId(0), PersonId(2), PersonId(4)]);
    assert_eq!(rows[0].weight, 0.5);
}

mod short_reads {
    use super::*;
    use snb_queries::short;

    #[test]
    fn s1_profile_matches_inserted_person() {
        let store = oracle_store();
        let snap = store.pinned();
        let row = short::s1_profile(&snap, PersonId(2)).unwrap();
        assert_eq!(row.first_name, "Karl");
        assert_eq!(row.last_name, "Muller");
        assert_eq!(row.creation_date, SimTime(1_002));
    }

    #[test]
    fn s2_threads_resolve_to_root_posts() {
        let store = oracle_store();
        let snap = store.pinned();
        // Person 2's messages: msg1 (post, 4100) and msg4 (comment on msg0).
        let rows = short::s2_recent_messages(&snap, PersonId(2));
        let got: Vec<(u64, u64, u64)> = rows
            .iter()
            .map(|r| (r.message.raw(), r.root_post.raw(), r.root_author.raw()))
            .collect();
        // Newest first: msg4 roots at msg0 (author 1); msg1 roots at itself.
        assert_eq!(got, vec![(4, 0, 1), (1, 1, 2)]);
    }

    #[test]
    fn s3_friends_are_date_ordered() {
        let store = oracle_store();
        let snap = store.pinned();
        // Person 0 befriended 1 @2000 and 2 @2100 -> newest first: 2, 1.
        let rows = short::s3_friends(&snap, PersonId(0));
        let got: Vec<(u64, i64)> = rows.iter().map(|&(p, d)| (p.raw(), d.millis())).collect();
        assert_eq!(got, vec![(2, 2_100), (1, 2_000)]);
    }

    #[test]
    fn s4_s5_s6_resolve_the_comment_chain() {
        let store = oracle_store();
        let snap = store.pinned();
        // msg5 is 0's comment deep in msg0's thread (forum 0, moderator 0).
        let (content, date) = short::s4_message(&snap, MessageId(5)).unwrap();
        assert_eq!(content, "comment 5");
        assert_eq!(date, SimTime(4_500));
        assert_eq!(short::s5_creator(&snap, MessageId(5)), Some(PersonId(0)));
        let (forum, title, moderator) = short::s6_forum(&snap, MessageId(5)).unwrap();
        assert_eq!(forum, ForumId(0));
        assert_eq!(title, "wall of 0");
        assert_eq!(moderator, PersonId(0));
    }

    #[test]
    fn s7_replies_carry_the_knows_flag() {
        let store = oracle_store();
        let snap = store.pinned();
        // Replies to msg0 (by person 1): msg4 by person 2. 1 and 2 are NOT
        // friends (only 0-1 and 0-2 edges exist).
        let rows = short::s7_replies(&snap, MessageId(0));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].comment, MessageId(4));
        assert_eq!(rows[0].author, PersonId(2));
        assert!(!rows[0].knows_original_author);
        // Replies to msg4 (by person 2): msg5 by person 0 — who DOES know 2.
        let rows = short::s7_replies(&snap, MessageId(4));
        assert_eq!(rows.len(), 1);
        assert!(rows[0].knows_original_author);
    }
}
