//! Edge-case coverage for the query layer: empty stores, dangling ids,
//! degenerate parameters — every query must return a well-defined (usually
//! empty) result instead of panicking.

use snb_core::time::SimTime;
use snb_core::{MessageId, PersonId};
use snb_queries::params::*;
use snb_queries::{complex, short, Engine, ShortQuery};
use snb_store::Store;

fn empty_snapshot_queries(engine: Engine) {
    let store = Store::new();
    let snap = store.pinned();
    let p = PersonId(0);
    let date = SimTime::from_ymd(2012, 1, 1);
    assert!(complex::q1::run(&snap, engine, &Q1Params { person: p, first_name: "Karl".into() })
        .is_empty());
    assert!(complex::q2::run(&snap, engine, &Q2Params { person: p, max_date: date }).is_empty());
    assert!(complex::q3::run(
        &snap,
        engine,
        &Q3Params { person: p, country_x: 0, country_y: 1, start: date, duration_days: 10 }
    )
    .is_empty());
    assert!(complex::q4::run(
        &snap,
        engine,
        &Q4Params { person: p, start: date, duration_days: 10 }
    )
    .is_empty());
    assert!(complex::q5::run(&snap, engine, &Q5Params { person: p, min_date: date }).is_empty());
    assert!(complex::q6::run(&snap, engine, &Q6Params { person: p, tag: 0 }).is_empty());
    assert!(complex::q7::run(&snap, engine, &Q7Params { person: p }).is_empty());
    assert!(complex::q8::run(&snap, engine, &Q8Params { person: p }).is_empty());
    assert!(complex::q9::run(&snap, engine, &Q9Params { person: p, max_date: date }).is_empty());
    assert!(complex::q10::run(&snap, engine, &Q10Params { person: p, month: 6 }).is_empty());
    assert!(complex::q11::run(&snap, engine, &Q11Params { person: p, country: 0, max_year: 2012 })
        .is_empty());
    assert!(complex::q12::run(&snap, engine, &Q12Params { person: p, tag_class: 0 }).is_empty());
    assert_eq!(
        complex::q13::run(&snap, engine, &Q13Params { person_x: p, person_y: PersonId(1) }),
        -1
    );
    assert!(complex::q14::run(&snap, engine, &Q14Params { person_x: p, person_y: PersonId(1) })
        .is_empty());
}

#[test]
fn all_complex_queries_handle_an_empty_store() {
    empty_snapshot_queries(Engine::Intended);
    empty_snapshot_queries(Engine::Naive);
}

#[test]
fn all_short_queries_handle_an_empty_store() {
    let store = Store::new();
    let snap = store.pinned();
    for q in [
        ShortQuery::S1(PersonId(7)),
        ShortQuery::S2(PersonId(7)),
        ShortQuery::S3(PersonId(7)),
        ShortQuery::S4(MessageId(7)),
        ShortQuery::S5(MessageId(7)),
        ShortQuery::S6(MessageId(7)),
        ShortQuery::S7(MessageId(7)),
    ] {
        assert_eq!(short::run_short(&snap, &q), 0, "{q:?}");
    }
}

#[test]
fn queries_tolerate_ids_beyond_the_population() {
    let ds = snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(60).activity(0.3))
        .unwrap();
    let store = Store::new();
    store.load_full(&ds);
    let snap = store.pinned();
    let ghost = PersonId(1_000_000);
    assert!(complex::q2::run(
        &snap,
        Engine::Intended,
        &Q2Params { person: ghost, max_date: SimTime::SIM_END }
    )
    .is_empty());
    assert!(complex::q7::run(&snap, Engine::Intended, &Q7Params { person: ghost }).is_empty());
    assert_eq!(
        complex::q13::run(
            &snap,
            Engine::Intended,
            &Q13Params { person_x: ghost, person_y: PersonId(0) }
        ),
        -1
    );
    assert!(complex::q10::run(&snap, Engine::Intended, &Q10Params { person: ghost, month: 1 })
        .is_empty());
}

#[test]
fn degenerate_parameters_are_well_defined() {
    let ds = snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(60).activity(0.3))
        .unwrap();
    let store = Store::new();
    store.load_full(&ds);
    let snap = store.pinned();
    let p = PersonId(0);
    // Same foreign country twice in Q3: Y-count can never be disjoint from
    // X-count, so either every row double-counts or nothing matches; the
    // engines must still agree.
    let q3 = Q3Params {
        person: p,
        country_x: 2,
        country_y: 2,
        start: SimTime::SIM_START,
        duration_days: 2_000,
    };
    assert_eq!(
        complex::q3::run(&snap, Engine::Intended, &q3),
        complex::q3::run(&snap, Engine::Naive, &q3)
    );
    // Zero-length window.
    let q4 = Q4Params { person: p, start: SimTime::SIM_START, duration_days: 0 };
    assert!(complex::q4::run(&snap, Engine::Intended, &q4).is_empty());
    // max_date before anything exists.
    let q9 = Q9Params { person: p, max_date: SimTime::from_ymd(2009, 1, 1) };
    assert!(complex::q9::run(&snap, Engine::Intended, &q9).is_empty());
    // Out-of-range tag class index must not panic in Q12... (valid range
    // only; guard at the dictionary boundary).
    let classes = snb_core::dict::Dictionaries::global().tags.class_count();
    let q12 = Q12Params { person: p, tag_class: classes - 1 };
    let _ = complex::q12::run(&snap, Engine::Intended, &q12);
}
