//! Barrier stress test for the latch-free concurrent read/write path
//! (PR 5): N writer threads apply disjoint update streams while M pinned
//! readers run Q2/Q6/S2 against the same store. Asserts three things the
//! tentpole promises:
//!
//! 1. a pinned reader never blocks `apply` — the writers finish while
//!    readers hold long-lived pins (under the old guard-holding pin this
//!    test deadlocks on the first reader/writer overlap);
//! 2. no reader ever observes a partially published transaction — every
//!    visible index entry resolves to a visible row (each stream creates
//!    its referents before referencing them, so a visible edge with an
//!    invisible endpoint could only mean torn publication);
//! 3. the final concurrent state is pointwise identical to the same
//!    streams applied serially. The store is insert-only, reads sort by
//!    `(date, id)`, and dates are fixed per op, so the serial apply order
//!    (any dependency-respecting order, commit-ts order included) cannot
//!    change the final state — which is exactly what makes this oracle
//!    valid.

use snb_core::dict::names::Gender;
use snb_core::schema::{Comment, Forum, ForumKind, Knows, Like, Person, Post};
use snb_core::time::SimTime;
use snb_core::update::UpdateOp;
use snb_core::{ForumId, MessageId, PersonId, TagId};
use snb_queries::params::{Q2Params, Q6Params};
use snb_queries::{complex, short, Engine};
use snb_store::Store;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

const WRITERS: usize = 4;
const READERS: usize = 2;
/// Persons per writer stream; each also creates 2 forums, ~3 messages and
/// ~2 likes per person.
const PERSONS_PER_WRITER: u64 = 12;

fn person(id: u64, t: i64) -> Person {
    Person {
        id: PersonId(id),
        first_name: "Karl",
        last_name: "Muller",
        gender: Gender::Male,
        birthday: SimTime(0),
        creation_date: SimTime(t),
        city: 0,
        country: 0,
        browser: "Chrome",
        location_ip: String::new(),
        languages: vec!["de"],
        emails: vec![],
        interests: vec![TagId(1)],
        study_at: None,
        work_at: vec![],
    }
}

/// One writer's self-contained stream: every op references only entities
/// created earlier in the same stream, so streams commute across threads.
fn stream(base: u64) -> Vec<UpdateOp> {
    let mut ops = Vec::new();
    let mut t = base as i64; // distinct dates per stream, fixed per op
    let mut date = move || {
        t += 1;
        SimTime(t)
    };
    for i in 0..PERSONS_PER_WRITER {
        ops.push(UpdateOp::AddPerson(person(base + i, date().0)));
        if i > 0 {
            ops.push(UpdateOp::AddFriendship(Knows {
                a: PersonId(base + i - 1),
                b: PersonId(base + i),
                creation_date: date(),
            }));
        }
    }
    for f in 0..2u64 {
        ops.push(UpdateOp::AddForum(Forum {
            id: ForumId(base + f),
            title: "group".into(),
            moderator: PersonId(base),
            creation_date: date(),
            tags: vec![TagId(1)],
            kind: ForumKind::Group,
        }));
    }
    let mut messages = Vec::new();
    for i in 0..PERSONS_PER_WRITER {
        let author = PersonId(base + i);
        let forum = ForumId(base + i % 2);
        let post_id = base + i * 3;
        ops.push(UpdateOp::AddPost(Post {
            id: MessageId(post_id),
            author,
            forum,
            creation_date: date(),
            content: "hello".into(),
            image_file: None,
            tags: vec![TagId(1)],
            language: "de",
            country: 0,
        }));
        messages.push(post_id);
        ops.push(UpdateOp::AddComment(Comment {
            id: MessageId(post_id + 1),
            author: PersonId(base + (i + 1) % PERSONS_PER_WRITER),
            creation_date: date(),
            content: "re".into(),
            reply_to: MessageId(post_id),
            root_post: MessageId(post_id),
            forum,
            tags: vec![],
            country: 0,
        }));
        messages.push(post_id + 1);
        ops.push(UpdateOp::AddPostLike(Like {
            person: PersonId(base + (i + 2) % PERSONS_PER_WRITER),
            message: MessageId(post_id),
            creation_date: date(),
        }));
    }
    ops
}

fn fixture_dataset() -> snb_datagen::Dataset {
    snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(120).activity(0.3).seed(23))
        .unwrap()
}

/// Entity-id window base for writer `w`, placed past every dataset id.
fn writer_base(ds: &snb_datagen::Dataset, w: usize) -> u64 {
    let persons = ds.persons.iter().map(|p| p.id.raw()).max().unwrap_or(0);
    let forums = ds.forums.iter().map(|f| f.id.raw()).max().unwrap_or(0);
    let posts = ds.posts.iter().map(|p| p.id.raw()).max().unwrap_or(0);
    let comments = ds.comments.iter().map(|c| c.id.raw()).max().unwrap_or(0);
    let floor = persons.max(forums).max(posts).max(comments) + 1;
    floor + (w as u64) * 64
}

#[test]
fn concurrent_writers_and_pinned_readers() {
    let ds = fixture_dataset();
    let store = Store::new();
    store.bulk_load(&ds);
    let streams: Vec<Vec<UpdateOp>> = (0..WRITERS).map(|w| stream(writer_base(&ds, w))).collect();
    let bases: Vec<u64> = (0..WRITERS).map(|w| writer_base(&ds, w)).collect();

    // A pin held across the whole concurrent phase: it must stay frozen
    // and must not stop a single writer from committing.
    let long_pin = store.pinned();
    let pre_write_slots = long_pin.person_slots();

    let start = Barrier::new(WRITERS + READERS);
    let done = AtomicBool::new(false);
    let reads_done = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for ops in &streams {
            let (store, start) = (&store, &start);
            scope.spawn(move || {
                start.wait();
                for op in ops {
                    store.apply(op).expect("disjoint stream op must commit");
                }
            });
        }
        for r in 0..READERS {
            let (store, start, done, reads_done) = (&store, &start, &done, &reads_done);
            let bases = &bases;
            scope.spawn(move || {
                start.wait();
                let mut last_ts = 0;
                let mut rounds = 0u64;
                while !done.load(Ordering::Acquire) || rounds == 0 {
                    let pin = store.pinned();
                    assert!(pin.ts() >= last_ts, "snapshot horizon went backwards");
                    last_ts = pin.ts();
                    // Q2/Q6/S2 on dataset persons plus this round's writer
                    // window: both engines must agree mid-write, and
                    // running them twice on one pin must be deterministic.
                    let p = PersonId((rounds * 7 + r as u64) % 120);
                    let q2 = Q2Params { person: p, max_date: SimTime(i64::MAX) };
                    let first = complex::q2::run(&pin, Engine::Intended, &q2);
                    assert_eq!(first, complex::q2::run(&pin, Engine::Naive, &q2));
                    assert_eq!(first, complex::q2::run(&pin, Engine::Intended, &q2));
                    let q6 = Q6Params { person: p, tag: 1 };
                    assert_eq!(
                        complex::q6::run(&pin, Engine::Intended, &q6),
                        complex::q6::run(&pin, Engine::Naive, &q6)
                    );
                    let s2 = short::s2_recent_messages(&pin, p);
                    assert_eq!(s2, short::s2_recent_messages(&pin, p));
                    // Torn-publication check over the writer windows: every
                    // visible index entry must resolve to a visible row.
                    for &base in bases {
                        for i in 0..PERSONS_PER_WRITER {
                            let pid = PersonId(base + i);
                            for (friend, _) in pin.friends_iter(pid) {
                                assert!(
                                    pin.person_ref(PersonId(friend)).is_some(),
                                    "visible edge to invisible person {friend}"
                                );
                            }
                            for (msg, _) in pin.messages_of_iter(pid) {
                                assert!(
                                    pin.message_ref(MessageId(msg)).is_some(),
                                    "visible authorship of invisible message {msg}"
                                );
                            }
                            for (msg, _) in pin.likes_by_iter(pid) {
                                assert!(
                                    pin.message_ref(MessageId(msg)).is_some(),
                                    "visible like of invisible message {msg}"
                                );
                            }
                        }
                    }
                    reads_done.fetch_add(1, Ordering::Relaxed);
                    rounds += 1;
                }
            });
        }
        // Writers are the first WRITERS spawned handles; the scope joins
        // everything, so flip `done` once all writer ops are visible.
        let total_ops: usize = streams.iter().map(Vec::len).sum();
        while (store.counters().commits.get() as usize) < total_ops {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
    });
    assert!(reads_done.load(Ordering::Relaxed) > 0, "readers never completed a round");

    // The long pin stayed frozen at its snapshot horizon even though every
    // writer committed underneath it. (Slot high-water marks are scan
    // bounds, not visibility facts — they may grow under a live pin, but
    // every row committed after the pin stays invisible to it.)
    assert!(long_pin.person_slots() >= pre_write_slots);
    for &base in &bases {
        for i in 0..PERSONS_PER_WRITER {
            assert!(
                long_pin.person_ref(PersonId(base + i)).is_none(),
                "post-pin commit leaked into a held pin"
            );
        }
    }

    // Final-state oracle: the same streams applied serially (stream order;
    // see the module doc for why any dependency-respecting order gives the
    // same final state as commit-ts order).
    let serial = Store::new();
    serial.bulk_load(&ds);
    for ops in &streams {
        for op in ops {
            serial.apply(op).unwrap();
        }
    }
    let a = store.pinned();
    let b = serial.pinned();
    assert_eq!(a.person_slots(), b.person_slots());
    assert_eq!(a.forum_slots(), b.forum_slots());
    assert_eq!(a.message_slots(), b.message_slots());
    for i in 0..a.person_slots() as u64 {
        let p = PersonId(i);
        assert_eq!(a.friends(p), b.friends(p), "friends of {p}");
        assert_eq!(a.messages_of(p), b.messages_of(p), "messages of {p}");
        assert_eq!(a.forums_of(p), b.forums_of(p), "forums of {p}");
        assert_eq!(a.likes_by(p), b.likes_by(p), "likes by {p}");
        assert_eq!(format!("{:?}", a.person_ref(p)), format!("{:?}", b.person_ref(p)));
    }
    for i in 0..a.forum_slots() as u64 {
        let f = ForumId(i);
        assert_eq!(a.posts_in_forum(f), b.posts_in_forum(f), "posts in {f}");
        assert_eq!(a.members_of(f), b.members_of(f), "members of {f}");
    }
    for i in 0..a.message_slots() as u64 {
        let m = MessageId(i);
        assert_eq!(a.replies_of(m), b.replies_of(m), "replies of {m}");
        assert_eq!(a.likes_of(m), b.likes_of(m), "likes of {m}");
        assert_eq!(format!("{:?}", a.message_ref(m)), format!("{:?}", b.message_ref(m)));
    }
    // And the three stressed queries agree on the final states too.
    for i in (0..120u64).step_by(17) {
        let p = PersonId(i);
        let q2 = Q2Params { person: p, max_date: SimTime(i64::MAX) };
        assert_eq!(
            complex::q2::run(&a, Engine::Intended, &q2),
            complex::q2::run(&b, Engine::Intended, &q2)
        );
        let q6 = Q6Params { person: p, tag: 1 };
        assert_eq!(
            complex::q6::run(&a, Engine::Intended, &q6),
            complex::q6::run(&b, Engine::Intended, &q6)
        );
        assert_eq!(short::s2_recent_messages(&a, p), short::s2_recent_messages(&b, p));
    }
}
