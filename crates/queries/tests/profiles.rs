//! Operator-profile coverage: running the complex and short reads inside a
//! profiling scope must produce non-zero operator counters for most query
//! kinds — the observability layer is useless if queries don't tick it.

use snb_obs::QueryProfile;
use snb_queries::{complex, short, Engine};
use std::sync::Arc;

#[test]
fn complex_queries_tick_operator_counters() {
    let ds = snb_datagen::generate(
        snb_datagen::GeneratorConfig::with_persons(300).activity(0.5).seed(11),
    )
    .unwrap();
    let store = snb_store::Store::new();
    store.load_full(&ds);
    let bindings = snb_params::curated_bindings(&ds, 2);
    let snap = store.pinned();

    let mut nonzero_kinds = 0;
    let mut with_probes = 0;
    for q in 1..=14usize {
        let profile = Arc::new(QueryProfile::new());
        {
            let _guard = QueryProfile::enter(Arc::clone(&profile));
            for binding in bindings.all(q) {
                complex::run_complex(&snap, Engine::Intended, binding);
            }
        }
        let snap_p = profile.snapshot();
        if !snap_p.is_zero() {
            nonzero_kinds += 1;
        }
        if snap_p.index_probes > 0 || snap_p.versions_walked > 0 {
            with_probes += 1;
        }
    }
    assert!(
        nonzero_kinds >= 5,
        "expected at least 5 complex queries with non-zero operator counters, got {nonzero_kinds}"
    );
    assert!(
        with_probes >= 5,
        "expected store-level ticks (probes/versions) in at least 5 queries, got {with_probes}"
    );
}

#[test]
fn short_reads_tick_result_rows_and_probes() {
    let ds = snb_datagen::generate(
        snb_datagen::GeneratorConfig::with_persons(200).activity(0.5).seed(13),
    )
    .unwrap();
    let store = snb_store::Store::new();
    store.load_full(&ds);
    let snap = store.pinned();
    let person = snb_core::PersonId(0);

    let profile = Arc::new(QueryProfile::new());
    {
        let _guard = QueryProfile::enter(Arc::clone(&profile));
        short::run_short(&snap, &snb_queries::ShortQuery::S1(person));
        short::run_short(&snap, &snb_queries::ShortQuery::S2(person));
        short::run_short(&snap, &snb_queries::ShortQuery::S3(person));
    }
    let p = profile.snapshot();
    assert!(p.index_probes > 0, "S1 must probe the person table");
    assert!(p.result_rows > 0, "short reads must report result rows");
}

#[test]
fn queries_outside_a_scope_record_nothing_and_still_work() {
    let ds = snb_datagen::generate(
        snb_datagen::GeneratorConfig::with_persons(120).activity(0.4).seed(17),
    )
    .unwrap();
    let store = snb_store::Store::new();
    store.load_full(&ds);
    let snap = store.pinned();
    // No scope installed: ticks are no-ops, queries behave identically.
    let rows = short::run_short(&snap, &snb_queries::ShortQuery::S3(snb_core::PersonId(0)));
    let profile = Arc::new(QueryProfile::new());
    let rows_in_scope = {
        let _guard = QueryProfile::enter(Arc::clone(&profile));
        short::run_short(&snap, &snb_queries::ShortQuery::S3(snb_core::PersonId(0)))
    };
    assert_eq!(rows, rows_in_scope);
}
