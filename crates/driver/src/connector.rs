//! Database connectors.
//!
//! The driver is system-agnostic: it hands operations to a [`Connector`].
//! [`StoreConnector`] targets the in-workspace `snb-store`;
//! [`SleepConnector`] is the paper's §4.2 "dummy database connector that,
//! rather than executing transactions against a database, simply sleeps for
//! a configured duration" — the instrument behind the driver-scalability
//! experiment (Table 5).

use snb_core::update::UpdateOp;
use snb_core::{MessageId, PersonId, SimTime, SnbError, SnbResult};
use snb_obs::HistogramSnapshot;
use snb_queries::params::{ComplexQuery, ShortQuery};
use snb_queries::sharded::Partial;
use snb_queries::{complex, sharded, short, Engine};
use snb_store::Store;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One operation of the interactive workload.
#[derive(Debug, Clone)]
pub enum Operation {
    /// A transactional update (U1–U8).
    Update(UpdateOp),
    /// A complex read (Q1–Q14).
    Complex(ComplexQuery),
    /// A short read (S1–S7).
    Short(ShortQuery),
}

/// Classification used by the metrics recorder: `(class, 1-based number)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Update Ui.
    Update(usize),
    /// Complex read Qi.
    Complex(usize),
    /// Short read Si.
    Short(usize),
}

impl Operation {
    /// Kind for metrics.
    pub fn kind(&self) -> OpKind {
        match self {
            Operation::Update(u) => OpKind::Update(u.query_number()),
            Operation::Complex(q) => OpKind::Complex(q.number()),
            Operation::Short(s) => OpKind::Short(s.number()),
        }
    }
}

/// What an execution returned: a row count plus optional anchors the
/// short-read random walk can continue from (§4: "results of the
/// [complex] queries become input for simple read-only queries").
#[derive(Debug, Clone, Copy, Default)]
pub struct OpOutcome {
    /// Result rows (or 1 for a successful update).
    pub rows: usize,
    /// A person surfaced by the result.
    pub seed_person: Option<PersonId>,
    /// A message surfaced by the result.
    pub seed_message: Option<MessageId>,
}

/// A shard's reply to a scattered read: the mergeable partial result plus
/// the shard-local walk-seed candidate — the most recent message the
/// query's anchor person authored *on this shard*, with its creation
/// date. A sharded router takes the `(date, id)`-max candidate across
/// shards, which reproduces exactly the seed a single-process
/// [`StoreConnector`] derives (`recent_messages_of` walks newest-first
/// under the same `(date, id)` order), so the driver's short-read walk is
/// deployment-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialOutcome {
    /// The shard-local partial result for the client-side merge.
    pub partial: Partial,
    /// This shard's walk-seed candidate for the op's anchor person.
    pub seed: Option<(MessageId, SimTime)>,
}

/// An execution target.
pub trait Connector: Send + Sync {
    /// Execute one operation to completion.
    fn execute(&self, op: &Operation) -> SnbResult<OpOutcome>;

    /// Runtime counters of the system under test, as `(name, value)` pairs
    /// for the full-disclosure report. Default: none.
    fn counters(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Latency distributions of the system under test — write-pipeline
    /// stage histograms, WAL fsync, stripe waits — as full
    /// [`HistogramSnapshot`]s, not scalar summaries, so a remote run's
    /// full disclosure equals an in-process run's. Default: none.
    fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        Vec::new()
    }

    /// Execute the shard-local half of a scatterable read and return its
    /// [`Partial`] for a client-side merge (see `snb_queries::sharded`),
    /// plus this shard's walk-seed candidate. Only meaningful on targets
    /// that hold a shard (or the whole graph); the default refuses so
    /// non-sharded connectors stay oblivious.
    fn execute_partial(&self, op: &Operation) -> SnbResult<PartialOutcome> {
        let _ = op;
        Err(SnbError::Config("connector does not support partial execution".into()))
    }

    /// High-water mark (creation date, millis) of the *replicated* updates
    /// this target has applied — AddPerson and AddFriendship, the rows
    /// every shard must hold before dependent operations touch them. A
    /// sharded driver compares each shard's horizon against the updates it
    /// broadcast to verify the GCT dependency-visibility invariant.
    /// Default: 0 (nothing replicated, nothing to verify).
    fn gct_horizon(&self) -> i64 {
        0
    }
}

/// Shared connectors delegate: callers that must keep a handle after the
/// run (e.g. for a post-run GCT verification RPC) can hand the driver an
/// `Arc` of the same instance.
impl<T: Connector + ?Sized> Connector for Arc<T> {
    fn execute(&self, op: &Operation) -> SnbResult<OpOutcome> {
        (**self).execute(op)
    }

    fn counters(&self) -> Vec<(String, u64)> {
        (**self).counters()
    }

    fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        (**self).histograms()
    }

    fn execute_partial(&self, op: &Operation) -> SnbResult<PartialOutcome> {
        (**self).execute_partial(op)
    }

    fn gct_horizon(&self) -> i64 {
        (**self).gct_horizon()
    }
}

/// Connector running against the in-workspace store.
///
/// Partition threads call [`Connector::execute`] concurrently on one
/// shared instance. Since the store's latch-free read / striped-write
/// path (DESIGN.md "Concurrency model"), those calls genuinely run in
/// parallel: updates touching different entity stripes commit
/// concurrently and queries never block behind a writer, so partition
/// count translates to real SUT-side parallelism instead of queueing on
/// a global store latch.
pub struct StoreConnector {
    store: Arc<Store>,
    engine: Engine,
    /// Max creation date of applied replicated updates (AddPerson /
    /// AddFriendship) — the value [`Connector::gct_horizon`] reports.
    replicated_horizon: AtomicI64,
}

impl StoreConnector {
    /// Wrap a store; complex reads run on the given engine.
    pub fn new(store: Arc<Store>, engine: Engine) -> StoreConnector {
        StoreConnector { store, engine, replicated_horizon: AtomicI64::new(0) }
    }

    /// The wrapped store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }
}

impl Connector for StoreConnector {
    fn counters(&self) -> Vec<(String, u64)> {
        // Bring the store.mem.* gauges up to date so the report carries
        // measured footprints, not whatever the last refresh saw.
        self.store.refresh_mem_gauges();
        self.store
            .counters()
            .snapshot()
            .into_iter()
            .map(|(name, value)| (name.to_string(), value))
            .collect()
    }

    fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.store.counters().histogram_snapshots()
    }

    fn execute(&self, op: &Operation) -> SnbResult<OpOutcome> {
        match op {
            Operation::Update(u) => {
                self.store.apply(u)?;
                if matches!(u, UpdateOp::AddPerson(_) | UpdateOp::AddFriendship(_)) {
                    self.replicated_horizon.fetch_max(u.creation_date().0, Ordering::Release);
                }
                Ok(OpOutcome { rows: 1, ..Default::default() })
            }
            Operation::Complex(q) => {
                let snap = self.store.pinned();
                let rows = complex::run_complex(&snap, self.engine, q);
                // Seed the random walk with the query's anchor person and —
                // for message-touching queries only — one of their recent
                // messages. Q1/Q11/Q13 read persons and knows alone, so
                // they seed no message: those tables are replicated on
                // every shard, which keeps the walk identical whether the
                // query ran against the whole graph or one shard's slice.
                let person = anchor_person(q);
                let seed_message = match q {
                    ComplexQuery::Q1(_) | ComplexQuery::Q11(_) | ComplexQuery::Q13(_) => None,
                    _ => person.and_then(|p| {
                        snap.recent_messages_of(p, snb_core::SimTime(i64::MAX), 1)
                            .first()
                            .map(|&(m, _)| MessageId(m))
                    }),
                };
                Ok(OpOutcome { rows, seed_person: person, seed_message })
            }
            Operation::Short(s) => {
                let snap = self.store.pinned();
                let rows = short::run_short(&snap, s);
                let (seed_person, seed_message) = match *s {
                    ShortQuery::S2(p) => {
                        let m = snap
                            .recent_messages_of(p, snb_core::SimTime(i64::MAX), 1)
                            .first()
                            .map(|&(m, _)| MessageId(m));
                        (Some(p), m)
                    }
                    ShortQuery::S3(p) => {
                        let f = snap.friends(p).first().map(|&(f, _)| PersonId(f));
                        (f, None)
                    }
                    ShortQuery::S5(m) => (snap.message_meta(m).map(|meta| meta.author), Some(m)),
                    ShortQuery::S7(m) => {
                        let r = snap.replies_of(m).first().map(|&(r, _)| MessageId(r));
                        (None, r.or(Some(m)))
                    }
                    ShortQuery::S1(p) => (Some(p), None),
                    ShortQuery::S4(m) | ShortQuery::S6(m) => (None, Some(m)),
                };
                Ok(OpOutcome { rows, seed_person, seed_message })
            }
        }
    }

    fn execute_partial(&self, op: &Operation) -> SnbResult<PartialOutcome> {
        let snap = self.store.pinned();
        let partial = match op {
            Operation::Complex(q) => sharded::partial(&snap, self.engine, q),
            Operation::Short(s) => sharded::partial_short(&snap, s).ok_or_else(|| {
                SnbError::Config(format!("S{} is a point lookup, not scatterable", s.number()))
            })?,
            Operation::Update(_) => {
                return Err(SnbError::Config("updates have no partial execution".into()))
            }
        };
        // The same anchor + recent-message seed `execute` derives, but
        // over this shard's slice only — the router maxes across shards.
        let anchor = match op {
            Operation::Complex(q) => anchor_person(q),
            Operation::Short(ShortQuery::S2(p)) => Some(*p),
            _ => None,
        };
        let seed = anchor.and_then(|p| {
            snap.recent_messages_of(p, SimTime(i64::MAX), 1)
                .first()
                .map(|&(m, date)| (MessageId(m), date))
        });
        Ok(PartialOutcome { partial, seed })
    }

    fn gct_horizon(&self) -> i64 {
        self.replicated_horizon.load(Ordering::Acquire)
    }
}

/// The anchor person of a complex query's parameters.
pub fn anchor_person(q: &ComplexQuery) -> Option<PersonId> {
    Some(match q {
        ComplexQuery::Q1(p) => p.person,
        ComplexQuery::Q2(p) => p.person,
        ComplexQuery::Q3(p) => p.person,
        ComplexQuery::Q4(p) => p.person,
        ComplexQuery::Q5(p) => p.person,
        ComplexQuery::Q6(p) => p.person,
        ComplexQuery::Q7(p) => p.person,
        ComplexQuery::Q8(p) => p.person,
        ComplexQuery::Q9(p) => p.person,
        ComplexQuery::Q10(p) => p.person,
        ComplexQuery::Q11(p) => p.person,
        ComplexQuery::Q12(p) => p.person,
        ComplexQuery::Q13(p) => p.person_x,
        ComplexQuery::Q14(p) => p.person_x,
    })
}

/// The paper's dummy connector: sleep for a fixed duration per operation.
pub struct SleepConnector {
    duration: Duration,
}

impl SleepConnector {
    /// Sleep `duration` per operation (the paper uses 1 ms and 100 µs).
    pub fn new(duration: Duration) -> SleepConnector {
        SleepConnector { duration }
    }
}

impl Connector for SleepConnector {
    fn execute(&self, _op: &Operation) -> SnbResult<OpOutcome> {
        // A true blocking sleep, even for the 100 µs mode: the experiment
        // measures driver synchronization overhead, and blocked "queries"
        // from different partitions must overlap in wall time (they model a
        // remote SUT, not local CPU work). Spinning would serialize the
        // whole run on machines with few cores.
        std::thread::sleep(self.duration);
        Ok(OpOutcome { rows: 1, ..Default::default() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn sleep_connector_sleeps_approximately() {
        let c = SleepConnector::new(Duration::from_micros(200));
        let op = Operation::Short(ShortQuery::S1(PersonId(0)));
        let t0 = Instant::now();
        for _ in 0..50 {
            c.execute(&op).unwrap();
        }
        let per_op = t0.elapsed() / 50;
        assert!(per_op >= Duration::from_micros(200), "per-op {per_op:?}");
        assert!(per_op < Duration::from_millis(5), "per-op {per_op:?}");
    }

    #[test]
    fn op_kinds_classify() {
        let q = Operation::Complex(ComplexQuery::Q7(snb_queries::params::Q7Params {
            person: PersonId(1),
        }));
        assert_eq!(q.kind(), OpKind::Complex(7));
        let s = Operation::Short(ShortQuery::S4(MessageId(2)));
        assert_eq!(s.kind(), OpKind::Short(4));
    }

    #[test]
    fn store_connector_runs_all_classes() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(150).activity(0.3))
                .unwrap();
        let store = Arc::new(Store::new());
        store.bulk_load(&ds);
        let conn = StoreConnector::new(Arc::clone(&store), Engine::Intended);
        // Update.
        let stream = ds.update_stream();
        let first = &stream[0];
        conn.execute(&Operation::Update(first.op.clone())).unwrap();
        // Complex with outcome seeds.
        let out = conn
            .execute(&Operation::Complex(ComplexQuery::Q2(snb_queries::params::Q2Params {
                person: PersonId(0),
                max_date: ds.config.update_split,
            })))
            .unwrap();
        assert_eq!(out.seed_person, Some(PersonId(0)));
        // Short read.
        let out = conn.execute(&Operation::Short(ShortQuery::S1(PersonId(0)))).unwrap();
        assert_eq!(out.rows, 1);
    }
}
