//! Database connectors.
//!
//! The driver is system-agnostic: it hands operations to a [`Connector`].
//! [`StoreConnector`] targets the in-workspace `snb-store`;
//! [`SleepConnector`] is the paper's §4.2 "dummy database connector that,
//! rather than executing transactions against a database, simply sleeps for
//! a configured duration" — the instrument behind the driver-scalability
//! experiment (Table 5).

use snb_core::update::UpdateOp;
use snb_core::{MessageId, PersonId, SnbResult};
use snb_obs::HistogramSnapshot;
use snb_queries::params::{ComplexQuery, ShortQuery};
use snb_queries::{complex, short, Engine};
use snb_store::Store;
use std::sync::Arc;
use std::time::Duration;

/// One operation of the interactive workload.
#[derive(Debug, Clone)]
pub enum Operation {
    /// A transactional update (U1–U8).
    Update(UpdateOp),
    /// A complex read (Q1–Q14).
    Complex(ComplexQuery),
    /// A short read (S1–S7).
    Short(ShortQuery),
}

/// Classification used by the metrics recorder: `(class, 1-based number)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Update Ui.
    Update(usize),
    /// Complex read Qi.
    Complex(usize),
    /// Short read Si.
    Short(usize),
}

impl Operation {
    /// Kind for metrics.
    pub fn kind(&self) -> OpKind {
        match self {
            Operation::Update(u) => OpKind::Update(u.query_number()),
            Operation::Complex(q) => OpKind::Complex(q.number()),
            Operation::Short(s) => OpKind::Short(s.number()),
        }
    }
}

/// What an execution returned: a row count plus optional anchors the
/// short-read random walk can continue from (§4: "results of the
/// [complex] queries become input for simple read-only queries").
#[derive(Debug, Clone, Copy, Default)]
pub struct OpOutcome {
    /// Result rows (or 1 for a successful update).
    pub rows: usize,
    /// A person surfaced by the result.
    pub seed_person: Option<PersonId>,
    /// A message surfaced by the result.
    pub seed_message: Option<MessageId>,
}

/// An execution target.
pub trait Connector: Send + Sync {
    /// Execute one operation to completion.
    fn execute(&self, op: &Operation) -> SnbResult<OpOutcome>;

    /// Runtime counters of the system under test, as `(name, value)` pairs
    /// for the full-disclosure report. Default: none.
    fn counters(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Latency distributions of the system under test — write-pipeline
    /// stage histograms, WAL fsync, stripe waits — as full
    /// [`HistogramSnapshot`]s, not scalar summaries, so a remote run's
    /// full disclosure equals an in-process run's. Default: none.
    fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        Vec::new()
    }
}

/// Connector running against the in-workspace store.
///
/// Partition threads call [`Connector::execute`] concurrently on one
/// shared instance. Since the store's latch-free read / striped-write
/// path (DESIGN.md "Concurrency model"), those calls genuinely run in
/// parallel: updates touching different entity stripes commit
/// concurrently and queries never block behind a writer, so partition
/// count translates to real SUT-side parallelism instead of queueing on
/// a global store latch.
pub struct StoreConnector {
    store: Arc<Store>,
    engine: Engine,
}

impl StoreConnector {
    /// Wrap a store; complex reads run on the given engine.
    pub fn new(store: Arc<Store>, engine: Engine) -> StoreConnector {
        StoreConnector { store, engine }
    }

    /// The wrapped store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }
}

impl Connector for StoreConnector {
    fn counters(&self) -> Vec<(String, u64)> {
        // Bring the store.mem.* gauges up to date so the report carries
        // measured footprints, not whatever the last refresh saw.
        self.store.refresh_mem_gauges();
        self.store
            .counters()
            .snapshot()
            .into_iter()
            .map(|(name, value)| (name.to_string(), value))
            .collect()
    }

    fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        self.store.counters().histogram_snapshots()
    }

    fn execute(&self, op: &Operation) -> SnbResult<OpOutcome> {
        match op {
            Operation::Update(u) => {
                self.store.apply(u)?;
                Ok(OpOutcome { rows: 1, ..Default::default() })
            }
            Operation::Complex(q) => {
                let snap = self.store.pinned();
                let rows = complex::run_complex(&snap, self.engine, q);
                // Seed the random walk with the query's anchor person and
                // one of their recent messages.
                let person = anchor_person(q);
                let seed_message = person.and_then(|p| {
                    snap.recent_messages_of(p, snb_core::SimTime(i64::MAX), 1)
                        .first()
                        .map(|&(m, _)| MessageId(m))
                });
                Ok(OpOutcome { rows, seed_person: person, seed_message })
            }
            Operation::Short(s) => {
                let snap = self.store.pinned();
                let rows = short::run_short(&snap, s);
                let (seed_person, seed_message) = match *s {
                    ShortQuery::S2(p) => {
                        let m = snap
                            .recent_messages_of(p, snb_core::SimTime(i64::MAX), 1)
                            .first()
                            .map(|&(m, _)| MessageId(m));
                        (Some(p), m)
                    }
                    ShortQuery::S3(p) => {
                        let f = snap.friends(p).first().map(|&(f, _)| PersonId(f));
                        (f, None)
                    }
                    ShortQuery::S5(m) => (snap.message_meta(m).map(|meta| meta.author), Some(m)),
                    ShortQuery::S7(m) => {
                        let r = snap.replies_of(m).first().map(|&(r, _)| MessageId(r));
                        (None, r.or(Some(m)))
                    }
                    ShortQuery::S1(p) => (Some(p), None),
                    ShortQuery::S4(m) | ShortQuery::S6(m) => (None, Some(m)),
                };
                Ok(OpOutcome { rows, seed_person, seed_message })
            }
        }
    }
}

/// The anchor person of a complex query's parameters.
pub fn anchor_person(q: &ComplexQuery) -> Option<PersonId> {
    Some(match q {
        ComplexQuery::Q1(p) => p.person,
        ComplexQuery::Q2(p) => p.person,
        ComplexQuery::Q3(p) => p.person,
        ComplexQuery::Q4(p) => p.person,
        ComplexQuery::Q5(p) => p.person,
        ComplexQuery::Q6(p) => p.person,
        ComplexQuery::Q7(p) => p.person,
        ComplexQuery::Q8(p) => p.person,
        ComplexQuery::Q9(p) => p.person,
        ComplexQuery::Q10(p) => p.person,
        ComplexQuery::Q11(p) => p.person,
        ComplexQuery::Q12(p) => p.person,
        ComplexQuery::Q13(p) => p.person_x,
        ComplexQuery::Q14(p) => p.person_x,
    })
}

/// The paper's dummy connector: sleep for a fixed duration per operation.
pub struct SleepConnector {
    duration: Duration,
}

impl SleepConnector {
    /// Sleep `duration` per operation (the paper uses 1 ms and 100 µs).
    pub fn new(duration: Duration) -> SleepConnector {
        SleepConnector { duration }
    }
}

impl Connector for SleepConnector {
    fn execute(&self, _op: &Operation) -> SnbResult<OpOutcome> {
        // A true blocking sleep, even for the 100 µs mode: the experiment
        // measures driver synchronization overhead, and blocked "queries"
        // from different partitions must overlap in wall time (they model a
        // remote SUT, not local CPU work). Spinning would serialize the
        // whole run on machines with few cores.
        std::thread::sleep(self.duration);
        Ok(OpOutcome { rows: 1, ..Default::default() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn sleep_connector_sleeps_approximately() {
        let c = SleepConnector::new(Duration::from_micros(200));
        let op = Operation::Short(ShortQuery::S1(PersonId(0)));
        let t0 = Instant::now();
        for _ in 0..50 {
            c.execute(&op).unwrap();
        }
        let per_op = t0.elapsed() / 50;
        assert!(per_op >= Duration::from_micros(200), "per-op {per_op:?}");
        assert!(per_op < Duration::from_millis(5), "per-op {per_op:?}");
    }

    #[test]
    fn op_kinds_classify() {
        let q = Operation::Complex(ComplexQuery::Q7(snb_queries::params::Q7Params {
            person: PersonId(1),
        }));
        assert_eq!(q.kind(), OpKind::Complex(7));
        let s = Operation::Short(ShortQuery::S4(MessageId(2)));
        assert_eq!(s.kind(), OpKind::Short(4));
    }

    #[test]
    fn store_connector_runs_all_classes() {
        let ds =
            snb_datagen::generate(snb_datagen::GeneratorConfig::with_persons(150).activity(0.3))
                .unwrap();
        let store = Arc::new(Store::new());
        store.bulk_load(&ds);
        let conn = StoreConnector::new(Arc::clone(&store), Engine::Intended);
        // Update.
        let stream = ds.update_stream();
        let first = &stream[0];
        conn.execute(&Operation::Update(first.op.clone())).unwrap();
        // Complex with outcome seeds.
        let out = conn
            .execute(&Operation::Complex(ComplexQuery::Q2(snb_queries::params::Q2Params {
                person: PersonId(0),
                max_date: ds.config.update_split,
            })))
            .unwrap();
        assert_eq!(out.seed_person, Some(PersonId(0)));
        // Short read.
        let out = conn.execute(&Operation::Short(ShortQuery::S1(PersonId(0)))).unwrap();
        assert_eq!(out.rows, 1);
    }
}
