//! # snb-driver
//!
//! The SNB-Interactive workload driver (§4.2): due-time-scheduled operation
//! streams with dependency tracking (Local/Global Dependency Services,
//! Fig. 7), Parallel and Windowed execution modes, per-forum sequential
//! partitioning, the Table 4 query mix with logarithmic frequency scaling,
//! the short-read random walk, and latency/throughput metrics with the
//! steady-state (stable p99) check — "the difficult task of generating a
//! highly parallel workload [...] on a dataset that by its complex
//! connected component structure is impossible to partition".

pub mod connector;
pub mod dependency;
pub mod metrics;
pub mod mix;
pub mod report;
pub mod scheduler;

pub use connector::{Connector, OpKind, Operation, SleepConnector, StoreConnector};
pub use metrics::{percentile_sorted, EpochVerdict, KindRecorder, KindStats, Metrics};
pub use mix::{build_mix, updates_only, WorkItem, TABLE4_FREQUENCIES};
pub use report::{composition, full_disclosure, full_disclosure_json, Composition, STEADY_FACTOR};
pub use scheduler::{run, DriverConfig, ExecutionMode, PartitionStats, RunReport};
