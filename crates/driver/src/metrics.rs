//! Latency and throughput metrics.
//!
//! The benchmark metric is the sustained acceleration factor (simulation
//! time / real time), with the requirement that "latencies of the complex
//! read-only queries are stable as measured by a maximum latency on the
//! 99th percentile" (§4, Rules and Metrics). The recorder keeps one
//! lock-free [`LatencyHistogram`] per operation kind (bounded relative
//! error, no per-sample allocation) plus, for the complex reads, an
//! [`EpochSeries`] of wall-clock windows so the steady-state verdict is
//! judged on *time* order — not on the order in which worker threads happen
//! to publish their samples. Each kind also carries a shared
//! [`QueryProfile`] so operator counters (rows scanned, index probes,
//! neighbors expanded, version walks) aggregate per query kind.

use crate::connector::OpKind;
use parking_lot::Mutex;
use snb_obs::{EpochSeries, LatencyHistogram, ProfileSnapshot, QueryProfile};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default wall-clock epoch length for the steady-state series: 500 ms.
pub const DEFAULT_EPOCH_MICROS: u64 = 500_000;
/// Default number of epoch slots (covers 32 s; later samples clamp into the
/// last slot, which only makes the steady-state check stricter).
pub const DEFAULT_EPOCH_SLOTS: usize = 64;

/// Aggregated statistics for one operation kind.
#[derive(Debug, Clone, PartialEq)]
pub struct KindStats {
    /// Number of executions.
    pub count: usize,
    /// Mean latency (exact: from the summed total, not the histogram).
    pub mean: Duration,
    /// Median latency (histogram estimate, relative error ≤ 1/16).
    pub p50: Duration,
    /// 95th percentile (histogram estimate).
    pub p95: Duration,
    /// 99th percentile (histogram estimate).
    pub p99: Duration,
    /// Maximum (exact).
    pub max: Duration,
    /// Total time spent in this kind (exact).
    pub total: Duration,
}

/// Per-epoch steady-state verdict for one complex-read kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochVerdict {
    /// Epoch index (wall-clock window number since run start).
    pub epoch: usize,
    /// Samples recorded in this epoch.
    pub count: u64,
    /// p99 latency of this epoch, in microseconds.
    pub p99_micros: u64,
    /// Whether this epoch's p99 stayed within `factor ×` the baseline
    /// (the first non-empty epoch). The baseline epoch itself is `true`.
    pub ok: bool,
}

/// Per-kind recorder: latency histogram + wall-clock epochs + operator
/// profile. All recording paths are lock-free.
#[derive(Debug)]
pub struct KindRecorder {
    hist: LatencyHistogram,
    /// Present for complex reads only — that is the class the steady-state
    /// rule is defined over.
    epochs: Option<EpochSeries>,
    total_micros: AtomicU64,
    profile: Arc<QueryProfile>,
}

impl KindRecorder {
    fn new(kind: OpKind, epoch_micros: u64, epoch_slots: usize) -> KindRecorder {
        KindRecorder {
            hist: LatencyHistogram::new(),
            epochs: matches!(kind, OpKind::Complex(_))
                .then(|| EpochSeries::new(epoch_micros, epoch_slots)),
            total_micros: AtomicU64::new(0),
            profile: Arc::new(QueryProfile::new()),
        }
    }

    /// Record one execution: `elapsed_micros` is wall time since run start
    /// (selects the epoch), `latency_micros` the operation latency.
    #[inline]
    pub fn record(&self, elapsed_micros: u64, latency_micros: u64) {
        self.hist.record(latency_micros);
        self.total_micros.fetch_add(latency_micros, Ordering::Relaxed);
        if let Some(epochs) = &self.epochs {
            epochs.record(elapsed_micros, latency_micros);
        }
    }

    /// The operator profile shared by every execution of this kind; install
    /// it with [`QueryProfile::enter`] around the query call.
    pub fn profile(&self) -> &Arc<QueryProfile> {
        &self.profile
    }

    /// The latency histogram.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// The wall-clock epoch series (complex reads only).
    pub fn epochs(&self) -> Option<&EpochSeries> {
        self.epochs.as_ref()
    }
}

/// Thread-safe latency recorder. The registry lock is touched only when a
/// kind is first seen (or by reporting); the hot path is atomic increments
/// on the per-kind recorder.
#[derive(Debug)]
pub struct Metrics {
    start: Instant,
    epoch_micros: u64,
    epoch_slots: usize,
    recorders: Mutex<HashMap<OpKind, Arc<KindRecorder>>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh recorder with the default epoch geometry.
    pub fn new() -> Metrics {
        Metrics::with_epochs(DEFAULT_EPOCH_MICROS, DEFAULT_EPOCH_SLOTS)
    }

    /// Fresh recorder with explicit epoch geometry (mostly for tests).
    pub fn with_epochs(epoch_micros: u64, epoch_slots: usize) -> Metrics {
        Metrics {
            start: Instant::now(),
            epoch_micros,
            epoch_slots,
            recorders: Mutex::new(HashMap::new()),
        }
    }

    /// The shared recorder for a kind, creating it on first use. Workers
    /// cache the returned `Arc` so steady-state recording never touches the
    /// registry lock.
    pub fn recorder(&self, kind: OpKind) -> Arc<KindRecorder> {
        let mut g = self.recorders.lock();
        Arc::clone(g.entry(kind).or_insert_with(|| {
            Arc::new(KindRecorder::new(kind, self.epoch_micros, self.epoch_slots))
        }))
    }

    /// Record one execution at the current wall-clock offset.
    pub fn record(&self, kind: OpKind, latency: Duration) {
        let elapsed = self.start.elapsed().as_micros() as u64;
        self.recorder(kind).record(elapsed, latency.as_micros() as u64);
    }

    /// Record one execution at an explicit wall-clock offset (deterministic
    /// replay for tests and offline ingestion).
    pub fn record_at(&self, kind: OpKind, elapsed_micros: u64, latency_micros: u64) {
        self.recorder(kind).record(elapsed_micros, latency_micros);
    }

    /// Total recorded operations.
    pub fn total_ops(&self) -> usize {
        self.recorders.lock().values().map(|r| r.hist.count() as usize).sum()
    }

    /// Statistics for one kind, if any samples exist.
    pub fn stats(&self, kind: OpKind) -> Option<KindStats> {
        let rec = self.recorders.lock().get(&kind).cloned()?;
        let count = rec.hist.count();
        if count == 0 {
            return None;
        }
        let q = |p: f64| Duration::from_micros(rec.hist.value_at_quantile(p));
        let total = rec.total_micros.load(Ordering::Relaxed);
        Some(KindStats {
            count: count as usize,
            mean: Duration::from_micros(total / count),
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            max: Duration::from_micros(rec.hist.max()),
            total: Duration::from_micros(total),
        })
    }

    /// Aggregated operator counters for one kind, if any were recorded.
    pub fn profile(&self, kind: OpKind) -> Option<ProfileSnapshot> {
        let rec = self.recorders.lock().get(&kind).cloned()?;
        Some(rec.profile.snapshot())
    }

    /// All kinds with samples, sorted for stable reporting.
    pub fn kinds(&self) -> Vec<OpKind> {
        let g = self.recorders.lock();
        let mut kinds: Vec<OpKind> =
            g.iter().filter(|(_, r)| r.hist.count() > 0).map(|(k, _)| *k).collect();
        kinds.sort_by_key(|k| match *k {
            OpKind::Complex(n) => (0, n),
            OpKind::Short(n) => (1, n),
            OpKind::Update(n) => (2, n),
        });
        kinds
    }

    /// Per-epoch steady-state verdicts for every complex-read kind with at
    /// least two non-empty wall-clock epochs. The baseline is the first
    /// non-empty epoch's p99; a later epoch fails if its p99 exceeds
    /// `factor ×` the baseline.
    pub fn epoch_verdicts(&self, factor: f64) -> Vec<(OpKind, Vec<EpochVerdict>)> {
        let recorders: Vec<(OpKind, Arc<KindRecorder>)> = {
            let g = self.recorders.lock();
            let mut v: Vec<(OpKind, Arc<KindRecorder>)> =
                g.iter().map(|(k, r)| (*k, Arc::clone(r))).collect();
            v.sort_by_key(|(k, _)| match *k {
                OpKind::Complex(n) => n,
                _ => usize::MAX,
            });
            v
        };
        let mut out = Vec::new();
        for (kind, rec) in recorders {
            let Some(epochs) = rec.epochs() else { continue };
            let windows = epochs.non_empty();
            if windows.len() < 2 || epochs.count() < 8 {
                continue; // not enough time spread to judge
            }
            let baseline = windows[0].1.value_at_quantile(0.99).max(1);
            let verdicts: Vec<EpochVerdict> = windows
                .iter()
                .enumerate()
                .map(|(i, (epoch, hist))| {
                    let p99 = hist.value_at_quantile(0.99);
                    EpochVerdict {
                        epoch: *epoch,
                        count: hist.count(),
                        p99_micros: p99,
                        ok: i == 0 || p99 as f64 <= factor * baseline as f64,
                    }
                })
                .collect();
            out.push((kind, verdicts));
        }
        out
    }

    /// Latency-stability check over the complex reads: for each kind, the
    /// p99 of every later wall-clock epoch must stay within `factor ×` the
    /// p99 of the first non-empty epoch (steady state, §4). Judged on time
    /// windows, so the order in which worker threads interleave their
    /// recordings cannot change the verdict.
    pub fn complex_reads_steady(&self, factor: f64) -> bool {
        self.epoch_verdicts(factor).iter().all(|(_, verdicts)| verdicts.iter().all(|v| v.ok))
    }
}

/// Nearest-rank percentile over **already sorted** samples — no clone, no
/// re-sort. Callers sort once and query many percentiles; sortedness is
/// checked in debug builds.
pub fn percentile_sorted(sorted: &[u64], p: f64) -> u64 {
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_compute_percentiles_within_histogram_error() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record(OpKind::Complex(2), Duration::from_micros(i));
        }
        let s = m.stats(OpKind::Complex(2)).unwrap();
        assert_eq!(s.count, 100);
        // Mean, max and total are exact; percentiles carry the histogram's
        // bounded relative error (≤ 1/16 of the value).
        assert_eq!(s.mean, Duration::from_micros(50));
        assert_eq!(s.max, Duration::from_micros(100));
        assert_eq!(s.total, Duration::from_micros(5050));
        let close = |got: Duration, exact: u64| {
            let got = got.as_micros() as u64;
            assert!(
                got >= exact && got <= exact + exact / 16 + 1,
                "estimate {got} vs exact {exact}"
            );
        };
        close(s.p50, 50);
        close(s.p95, 95);
        close(s.p99, 99);
    }

    #[test]
    fn missing_kind_has_no_stats() {
        let m = Metrics::new();
        assert!(m.stats(OpKind::Short(1)).is_none());
    }

    #[test]
    fn percentile_sorted_is_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&sorted, 0.50), 50);
        assert_eq!(percentile_sorted(&sorted, 0.99), 99);
        assert_eq!(percentile_sorted(&sorted, 1.0), 100);
        assert_eq!(percentile_sorted(&sorted, 0.0), 1);
        assert_eq!(percentile_sorted(&[], 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    #[cfg(debug_assertions)]
    fn percentile_sorted_rejects_unsorted_input_in_debug() {
        percentile_sorted(&[3, 1, 2], 0.5);
    }

    #[test]
    fn steady_state_detects_degradation_across_epochs() {
        let m = Metrics::with_epochs(1_000_000, 8);
        // Epoch 0: fast. Epoch 1: 10× slower — a genuine degradation.
        for _ in 0..50 {
            m.record_at(OpKind::Complex(9), 0, 100);
        }
        assert!(m.complex_reads_steady(2.0), "single epoch cannot fail");
        for _ in 0..50 {
            m.record_at(OpKind::Complex(9), 1_000_000, 1_000);
        }
        assert!(!m.complex_reads_steady(2.0));
        let verdicts = m.epoch_verdicts(2.0);
        assert_eq!(verdicts.len(), 1);
        let (kind, epochs) = &verdicts[0];
        assert_eq!(*kind, OpKind::Complex(9));
        assert_eq!(epochs.len(), 2);
        assert!(epochs[0].ok && !epochs[1].ok);
    }

    #[test]
    fn steady_state_is_immune_to_merge_order() {
        // Regression: the old recorder concatenated per-worker sample
        // batches and split the vector in half, so a fast worker publishing
        // before a slow one looked like degradation even when both ran at a
        // constant rate for the whole run. Judged on wall-clock epochs the
        // same recordings are steady.
        let m = Metrics::with_epochs(1_000_000, 8);
        // Worker A (fast ops, whole run) publishes first...
        for epoch in [0u64, 1] {
            for _ in 0..25 {
                m.record_at(OpKind::Complex(3), epoch * 1_000_000, 100);
            }
        }
        // ...then worker B (slow ops, whole run).
        for epoch in [0u64, 1] {
            for _ in 0..25 {
                m.record_at(OpKind::Complex(3), epoch * 1_000_000, 1_000);
            }
        }
        // Old verdict: first half p99=100, second half p99=1000 → "degraded".
        // Both epochs contain the same latency mix → actually steady.
        assert!(m.complex_reads_steady(2.0));
        for (_, verdicts) in m.epoch_verdicts(2.0) {
            assert!(verdicts.iter().all(|v| v.ok));
        }
    }

    #[test]
    fn kinds_report_in_stable_order() {
        let m = Metrics::new();
        m.record(OpKind::Update(1), Duration::from_micros(1));
        m.record(OpKind::Short(3), Duration::from_micros(1));
        m.record(OpKind::Complex(14), Duration::from_micros(1));
        m.record(OpKind::Complex(2), Duration::from_micros(1));
        assert_eq!(
            m.kinds(),
            vec![OpKind::Complex(2), OpKind::Complex(14), OpKind::Short(3), OpKind::Update(1)]
        );
    }

    #[test]
    fn per_kind_profiles_aggregate_operator_ticks() {
        let m = Metrics::new();
        let rec = m.recorder(OpKind::Complex(5));
        {
            let _guard = QueryProfile::enter(Arc::clone(rec.profile()));
            snb_obs::tick_rows_scanned(7);
            snb_obs::tick_index_probes(3);
        }
        let p = m.profile(OpKind::Complex(5)).unwrap();
        assert_eq!(p.rows_scanned, 7);
        assert_eq!(p.index_probes, 3);
        assert!(m.profile(OpKind::Complex(6)).is_none());
    }

    #[test]
    fn recorder_is_shared_and_cacheable() {
        let m = Metrics::new();
        let a = m.recorder(OpKind::Short(2));
        let b = m.recorder(OpKind::Short(2));
        assert!(Arc::ptr_eq(&a, &b));
        a.record(0, 10);
        b.record(0, 20);
        assert_eq!(m.stats(OpKind::Short(2)).unwrap().count, 2);
        assert_eq!(m.total_ops(), 2);
    }
}
