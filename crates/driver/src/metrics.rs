//! Latency and throughput metrics.
//!
//! The benchmark metric is the sustained acceleration factor (simulation
//! time / real time), with the requirement that "latencies of the complex
//! read-only queries are stable as measured by a maximum latency on the
//! 99th percentile" (§4, Rules and Metrics). The recorder keeps full
//! per-kind latency samples (microseconds), enough for exact percentiles at
//! benchmark scale.

use crate::connector::OpKind;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::Duration;

/// Aggregated statistics for one operation kind.
#[derive(Debug, Clone, PartialEq)]
pub struct KindStats {
    /// Number of executions.
    pub count: usize,
    /// Mean latency.
    pub mean: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum.
    pub max: Duration,
}

/// Thread-safe latency recorder.
#[derive(Debug, Default)]
pub struct Metrics {
    samples: Mutex<HashMap<OpKind, Vec<u64>>>,
}

impl Metrics {
    /// Fresh recorder.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one execution.
    pub fn record(&self, kind: OpKind, latency: Duration) {
        self.samples.lock().entry(kind).or_default().push(latency.as_micros() as u64);
    }

    /// Merge a thread-local batch (used by workers to avoid per-op locking).
    pub fn merge(&self, local: HashMap<OpKind, Vec<u64>>) {
        let mut g = self.samples.lock();
        for (k, mut v) in local {
            g.entry(k).or_default().append(&mut v);
        }
    }

    /// Total recorded operations.
    pub fn total_ops(&self) -> usize {
        self.samples.lock().values().map(|v| v.len()).sum()
    }

    /// Statistics for one kind, if any samples exist.
    pub fn stats(&self, kind: OpKind) -> Option<KindStats> {
        let g = self.samples.lock();
        let samples = g.get(&kind)?;
        Some(compute(samples))
    }

    /// All kinds with samples, sorted for stable reporting.
    pub fn kinds(&self) -> Vec<OpKind> {
        let g = self.samples.lock();
        let mut kinds: Vec<OpKind> = g.keys().copied().collect();
        kinds.sort_by_key(|k| match *k {
            OpKind::Complex(n) => (0, n),
            OpKind::Short(n) => (1, n),
            OpKind::Update(n) => (2, n),
        });
        kinds
    }

    /// Latency-stability check over the complex reads: the p99 of the
    /// second half of samples must not exceed `factor ×` the p99 of the
    /// first half (steady state, §4).
    pub fn complex_reads_steady(&self, factor: f64) -> bool {
        let g = self.samples.lock();
        for (kind, samples) in g.iter() {
            if !matches!(kind, OpKind::Complex(_)) || samples.len() < 8 {
                continue;
            }
            let mid = samples.len() / 2;
            let p99_first = percentile(&samples[..mid], 0.99);
            let p99_second = percentile(&samples[mid..], 0.99);
            if p99_second as f64 > factor * p99_first.max(1) as f64 {
                return false;
            }
        }
        true
    }
}

fn compute(samples: &[u64]) -> KindStats {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let count = sorted.len();
    let sum: u64 = sorted.iter().sum();
    let pct = |p: f64| Duration::from_micros(percentile(&sorted, p));
    KindStats {
        count,
        mean: Duration::from_micros(if count == 0 { 0 } else { sum / count as u64 }),
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        max: Duration::from_micros(sorted.last().copied().unwrap_or(0)),
    }
}

/// Nearest-rank percentile over (possibly unsorted) samples.
fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_compute_percentiles() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record(OpKind::Complex(2), Duration::from_micros(i));
        }
        let s = m.stats(OpKind::Complex(2)).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Duration::from_micros(50));
        assert_eq!(s.p95, Duration::from_micros(95));
        assert_eq!(s.p99, Duration::from_micros(99));
        assert_eq!(s.max, Duration::from_micros(100));
        assert_eq!(s.mean, Duration::from_micros(50));
    }

    #[test]
    fn missing_kind_has_no_stats() {
        let m = Metrics::new();
        assert!(m.stats(OpKind::Short(1)).is_none());
    }

    #[test]
    fn merge_combines_thread_local_batches() {
        let m = Metrics::new();
        let mut local = HashMap::new();
        local.insert(OpKind::Update(6), vec![10, 20, 30]);
        m.merge(local);
        m.record(OpKind::Update(6), Duration::from_micros(40));
        assert_eq!(m.stats(OpKind::Update(6)).unwrap().count, 4);
        assert_eq!(m.total_ops(), 4);
    }

    #[test]
    fn steady_state_detects_degradation() {
        let m = Metrics::new();
        // Stable stream.
        for _ in 0..50 {
            m.record(OpKind::Complex(9), Duration::from_micros(100));
        }
        assert!(m.complex_reads_steady(2.0));
        // Degrading stream: second half 10x slower.
        for _ in 0..50 {
            m.record(OpKind::Complex(9), Duration::from_micros(1_000));
        }
        assert!(!m.complex_reads_steady(2.0));
    }

    #[test]
    fn kinds_report_in_stable_order() {
        let m = Metrics::new();
        m.record(OpKind::Update(1), Duration::from_micros(1));
        m.record(OpKind::Short(3), Duration::from_micros(1));
        m.record(OpKind::Complex(14), Duration::from_micros(1));
        m.record(OpKind::Complex(2), Duration::from_micros(1));
        assert_eq!(
            m.kinds(),
            vec![OpKind::Complex(2), OpKind::Complex(14), OpKind::Short(3), OpKind::Update(1)]
        );
    }
}
