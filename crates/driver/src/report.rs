//! Full-disclosure reports.
//!
//! §1: "Each workload produces a single metric for performance at the given
//! scale ... The full disclosure further breaks down the composition of the
//! metric into its constituent parts, e.g. single query execution times."
//! This module renders a [`crate::scheduler::RunReport`] into that
//! disclosure: the headline acceleration factor plus the per-query latency
//! table, the workload composition against the §4 target CPU split
//! (10 % updates / 50 % complex / 40 % short), and the steady-state verdict.

use crate::connector::OpKind;
use crate::scheduler::RunReport;
use std::fmt::Write as _;
use std::time::Duration;

/// Workload-composition summary by operation class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Composition {
    /// Fraction of total execution time spent in updates.
    pub update_share: f64,
    /// Fraction spent in complex reads.
    pub complex_share: f64,
    /// Fraction spent in short reads.
    pub short_share: f64,
}

/// Compute the time-share composition of a run.
pub fn composition(report: &RunReport) -> Composition {
    let mut update = 0.0;
    let mut complex = 0.0;
    let mut short = 0.0;
    for kind in report.metrics.kinds() {
        let s = report.metrics.stats(kind).expect("kind has stats");
        let total = s.mean.as_secs_f64() * s.count as f64;
        match kind {
            OpKind::Update(_) => update += total,
            OpKind::Complex(_) => complex += total,
            OpKind::Short(_) => short += total,
        }
    }
    let sum = (update + complex + short).max(f64::MIN_POSITIVE);
    Composition {
        update_share: update / sum,
        complex_share: complex / sum,
        short_share: short / sum,
    }
}

/// Render the full-disclosure report as plain text.
pub fn full_disclosure(report: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== SNB-Interactive full disclosure ===");
    let _ = writeln!(out, "operations executed:   {}", report.total_ops);
    let _ = writeln!(out, "wall time:             {:?}", report.wall);
    let _ = writeln!(out, "throughput:            {:.0} ops/s", report.ops_per_second);
    let _ = writeln!(
        out,
        "acceleration factor:   {:.2} (simulation time / real time)",
        report.achieved_acceleration
    );
    let _ = writeln!(
        out,
        "steady-state p99:      {}",
        if report.steady { "stable" } else { "DEGRADED" }
    );

    let c = composition(report);
    let _ = writeln!(out, "\ntime composition (target 10% / 50% / 40%):");
    let _ = writeln!(out, "  updates:       {:5.1}%", 100.0 * c.update_share);
    let _ = writeln!(out, "  complex reads: {:5.1}%", 100.0 * c.complex_share);
    let _ = writeln!(out, "  short reads:   {:5.1}%", 100.0 * c.short_share);

    let _ = writeln!(out, "\nper-query breakdown:");
    let _ = writeln!(
        out,
        "  {:<6} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "query", "count", "mean", "p50", "p99", "max"
    );
    for kind in report.metrics.kinds() {
        let s = report.metrics.stats(kind).expect("kind has stats");
        let label = match kind {
            OpKind::Complex(n) => format!("Q{n}"),
            OpKind::Short(n) => format!("S{n}"),
            OpKind::Update(n) => format!("U{n}"),
        };
        let f = |d: Duration| format!("{:.1?}", d);
        let _ = writeln!(
            out,
            "  {:<6} {:>8} {:>12} {:>12} {:>12} {:>12}",
            label,
            s.count,
            f(s.mean),
            f(s.p50),
            f(s.p99),
            f(s.max)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connector::StoreConnector;
    use crate::scheduler::{run, DriverConfig};
    use crate::mix;
    use snb_queries::Engine;
    use std::sync::Arc;

    fn sample_report() -> RunReport {
        let ds = snb_datagen::generate(
            snb_datagen::GeneratorConfig::with_persons(300).activity(0.3),
        )
        .unwrap();
        let bindings = snb_params::curated_bindings(&ds, 6);
        let items = mix::build_mix(&ds, &bindings);
        let store = Arc::new(snb_store::Store::new());
        store.bulk_load(&ds);
        let conn = StoreConnector::new(store, Engine::Intended);
        run(&items, &conn, &DriverConfig::default()).unwrap()
    }

    #[test]
    fn composition_shares_sum_to_one() {
        let report = sample_report();
        let c = composition(&report);
        assert!((c.update_share + c.complex_share + c.short_share - 1.0).abs() < 1e-9);
        assert!(c.update_share > 0.0);
        assert!(c.complex_share > 0.0);
        assert!(c.short_share > 0.0);
    }

    #[test]
    fn disclosure_contains_all_sections() {
        let report = sample_report();
        let text = full_disclosure(&report);
        assert!(text.contains("full disclosure"));
        assert!(text.contains("acceleration factor"));
        assert!(text.contains("time composition"));
        assert!(text.contains("per-query breakdown"));
        // At least one of each class appears in the table.
        assert!(text.contains("Q8"), "complex reads missing:\n{text}");
        assert!(text.contains("U6"), "updates missing:\n{text}");
        assert!(text.contains("S1") || text.contains("S2"), "short reads missing");
    }
}
